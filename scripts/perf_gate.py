#!/usr/bin/env python
"""Opt-in perf gate: smoke-run every system, persist artifacts, diff.

Invoked from ``scripts/check.sh`` when ``REPRO_PERF_GATE`` is set (any
value but ``0``). For each system (rocksdb / prismdb / mutant) it runs a
small seeded YCSB-A workload with timeline sampling on — plus a 4-shard
``fleet`` smoke through the router/pool/merge path — then:

1. writes the full run artifact to
   ``benchmarks/results/smoke_<system>.json``;
2. appends one trajectory point (throughput, read p99, write amp per
   system) to the top-level ``BENCH_SMOKE.json``;
3. if a committed baseline ``benchmarks/results/baseline_<system>.json``
   exists, compares against it with ``--tolerance`` (default 15%) and
   exits 1 on any regression. A missing baseline is created from the
   current run (first adoption) and the gate passes.

The simulation is deterministic, so identical code produces identical
artifacts; drift within tolerance is an intentional perf-relevant code
change that should be accompanied by refreshing the baselines
(``--rebaseline``).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.compare import compare_results, comparison_table, regressions  # noqa: E402
from repro.bench.harness import RunResult, SystemConfig, run_experiment  # noqa: E402
from repro.bench.reporting import format_experiment  # noqa: E402
from repro.workloads.ycsb import YCSBConfig  # noqa: E402

RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
SMOKE_FILE = os.path.join(REPO_ROOT, "BENCH_SMOKE.json")
SYSTEMS = ("rocksdb", "prismdb", "mutant")


def smoke_run(system: str, *, records: int, ops: int, seed: int) -> RunResult:
    config = SystemConfig(system=system, layout_code="NNNTQ", seed=seed)
    workload = YCSBConfig.read_update(
        50, record_count=records, operation_count=ops, seed=seed
    )
    return run_experiment(
        config, workload, label=f"smoke/{system}", sample_interval_ms=5.0
    )


def fleet_smoke_run(*, seed: int, jobs: int) -> RunResult:
    """The 4-shard fleet smoke: router + pool + merge, gated like a system.

    Results are bit-identical for any ``jobs`` value, so the gate's
    baseline is valid regardless of how many workers ran it.
    """
    from repro.fleet.runner import FleetConfig, default_tenants, run_fleet

    config = FleetConfig(
        shards=4,
        tenants=default_tenants(2, keys_per_tenant=1_500),
        total_operations=6_000,
        seed=seed,
        # Smoke shards simulate only a few ms; sample sub-ms so the
        # merged timeline has rows and the device pool sees real bytes.
        sample_interval_ms=0.5,
    )
    return run_fleet(config, jobs=jobs)


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"


def _load_history() -> dict:
    history: dict = {"schema": 1, "points": []}
    if os.path.exists(SMOKE_FILE):
        try:
            with open(SMOKE_FILE, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict) and isinstance(loaded.get("points"), list):
                history = loaded
        except (OSError, json.JSONDecodeError):
            pass  # corrupt history: start over rather than fail the gate
    return history


def _write_history(history: dict) -> None:
    with open(SMOKE_FILE, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _point_key(point: dict) -> tuple[str, str]:
    """A point's identity for duplicate detection.

    Two points are duplicates when they have the same commit and
    identical *simulated* system metrics. Wall-clock seconds and micro
    timings are real-time measurements that jitter between otherwise
    identical runs, so they are excluded — re-running the gate on an
    unchanged tree should not grow the trajectory.
    """
    systems = {
        name: {
            key: value
            for key, value in metrics.items()
            if key != "wall_clock_sec"
        }
        for name, metrics in point.get("systems", {}).items()
    }
    return point.get("commit", ""), json.dumps(systems, sort_keys=True)


def prune_duplicate_points(points: list[dict]) -> tuple[list[dict], int]:
    """Collapse consecutive duplicate points, keeping each first occurrence."""
    kept: list[dict] = []
    for point in points:
        if kept and _point_key(kept[-1]) == _point_key(point):
            continue
        kept.append(point)
    return kept, len(points) - len(kept)


def append_trajectory_point(
    results: dict[str, RunResult],
    wall_clock: dict[str, float],
    micros: dict[str, float] | None = None,
) -> None:
    """Append one per-PR trajectory point to BENCH_SMOKE.json.

    Skips the append (leaving the file untouched) when the new point
    duplicates the last one — same commit, same simulated metrics — so
    repeated gate runs on an unchanged tree add one point, not many.
    """
    history = _load_history()
    point = {
        "commit": git_commit(),
        "unix_time": int(time.time()),
        "systems": {
            system: {
                "throughput_kops": result.throughput_kops,
                "read_p99_usec": result.read_latency.p99,
                "update_p99_usec": result.update_latency.p99,
                "write_amplification": result.write_amplification,
                # Real seconds the smoke run took, *not* simulated time:
                # the one metric here that tracks simulator speed rather
                # than simulated behaviour.
                "wall_clock_sec": round(wall_clock[system], 4),
            }
            for system, result in results.items()
        },
    }
    if micros:
        # Best-of micro timings (µs per unit); real-time like wall_clock.
        point["micros"] = {
            name: round(best_usec, 4) for name, best_usec in micros.items()
        }
    points = history["points"]
    if points and _point_key(points[-1]) == _point_key(point):
        print(
            "[perf-gate] trajectory point matches the last one "
            f"(commit {point['commit']}, identical simulated metrics); "
            "not appending a duplicate"
        )
        return
    points.append(point)
    _write_history(history)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=15.0,
                        help="allowed bad-direction drift in %% (default: 15)")
    parser.add_argument("--records", type=int, default=3_000)
    parser.add_argument("--ops", type=int, default=5_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rebaseline", action="store_true",
                        help="overwrite the committed baselines with this run")
    parser.add_argument("--fleet-jobs", type=int, default=1,
                        help="worker processes for the fleet smoke (results "
                             "are jobs-invariant; default: 1)")
    parser.add_argument("--prune-duplicates", action="store_true",
                        help="maintenance mode: collapse consecutive "
                             "duplicate points already in BENCH_SMOKE.json "
                             "and exit (no smoke runs)")
    args = parser.parse_args(argv)

    if args.prune_duplicates:
        history = _load_history()
        history["points"], removed = prune_duplicate_points(history["points"])
        _write_history(history)
        print(
            f"[perf-gate] pruned {removed} duplicate point(s); "
            f"{len(history['points'])} remain in {SMOKE_FILE}"
        )
        return 0

    os.makedirs(RESULTS_DIR, exist_ok=True)
    results: dict[str, RunResult] = {}
    wall_clock: dict[str, float] = {}
    failed = False

    def gate(name: str, result: RunResult) -> None:
        nonlocal failed
        results[name] = result
        smoke_path = os.path.join(RESULTS_DIR, f"smoke_{name}.json")
        result.save(smoke_path)
        baseline_path = os.path.join(RESULTS_DIR, f"baseline_{name}.json")
        if args.rebaseline or not os.path.exists(baseline_path):
            shutil.copyfile(smoke_path, baseline_path)
            print(f"[perf-gate] {name}: baseline written to {baseline_path}")
            return
        baseline = RunResult.load(baseline_path)
        diffs = compare_results(baseline, result, tolerance_pct=args.tolerance)
        bad = regressions(diffs)
        if bad:
            failed = True
            headers, rows = comparison_table(diffs, only_drift=True)
            print(
                format_experiment(
                    f"[perf-gate] {name}: REGRESSION vs {baseline_path}",
                    headers,
                    rows,
                    notes=f"{len(bad)} metric(s) beyond {args.tolerance:g}% tolerance",
                )
            )
        else:
            print(
                f"[perf-gate] {name}: ok "
                f"({result.throughput_kops:.1f} kops, "
                f"read p99 {result.read_latency.p99:.1f} us, "
                f"WA {result.write_amplification:.2f})"
            )

    for system in SYSTEMS:
        started = time.perf_counter()
        result = smoke_run(
            system, records=args.records, ops=args.ops, seed=args.seed
        )
        wall_clock[system] = time.perf_counter() - started
        gate(system, result)

    # The fleet smoke rides the same gate: its merged artifact compares
    # like any system's, and its wall clock lands in the trajectory so
    # the fan-out path's simulator speed is tracked per PR.
    started = time.perf_counter()
    fleet_result = fleet_smoke_run(seed=args.seed, jobs=args.fleet_jobs)
    wall_clock["fleet"] = time.perf_counter() - started
    gate("fleet", fleet_result)

    # Encoded-domain hot-path micros (quick scale): tracked per PR so
    # the trajectory records simulator-speed levers, not just the e2e
    # smoke wall clock. Best-of timings in µs per unit.
    from repro.bench.micro import run_micro

    micros: dict[str, float] = {}
    for name in (
        "compaction.encoded_merge",
        "codec.encode",
        "codec.decode",
        "runner.read_fastlane",
        "e2e.smoke",
    ):
        for micro in run_micro(quick=True, name_filter=name):
            micros[micro.name] = micro.best_ns / 1e3
    print(
        "[perf-gate] micros (us, best): "
        + ", ".join(f"{name} {usec:.2f}" for name, usec in micros.items())
    )

    append_trajectory_point(results, wall_clock, micros)
    print(f"[perf-gate] trajectory point recorded in {SMOKE_FILE}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
