#!/usr/bin/env python
"""Opt-in perf gate: smoke-run every system, persist artifacts, diff.

Invoked from ``scripts/check.sh`` when ``REPRO_PERF_GATE`` is set (any
value but ``0``). For each system (rocksdb / prismdb / mutant) it runs a
small seeded YCSB-A workload with timeline sampling on, then:

1. writes the full run artifact to
   ``benchmarks/results/smoke_<system>.json``;
2. appends one trajectory point (throughput, read p99, write amp per
   system) to the top-level ``BENCH_SMOKE.json``;
3. if a committed baseline ``benchmarks/results/baseline_<system>.json``
   exists, compares against it with ``--tolerance`` (default 15%) and
   exits 1 on any regression. A missing baseline is created from the
   current run (first adoption) and the gate passes.

The simulation is deterministic, so identical code produces identical
artifacts; drift within tolerance is an intentional perf-relevant code
change that should be accompanied by refreshing the baselines
(``--rebaseline``).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.compare import compare_results, comparison_table, regressions  # noqa: E402
from repro.bench.harness import RunResult, SystemConfig, run_experiment  # noqa: E402
from repro.bench.reporting import format_experiment  # noqa: E402
from repro.workloads.ycsb import YCSBConfig  # noqa: E402

RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
SMOKE_FILE = os.path.join(REPO_ROOT, "BENCH_SMOKE.json")
SYSTEMS = ("rocksdb", "prismdb", "mutant")


def smoke_run(system: str, *, records: int, ops: int, seed: int) -> RunResult:
    config = SystemConfig(system=system, layout_code="NNNTQ", seed=seed)
    workload = YCSBConfig.read_update(
        50, record_count=records, operation_count=ops, seed=seed
    )
    return run_experiment(
        config, workload, label=f"smoke/{system}", sample_interval_ms=5.0
    )


def git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"


def append_trajectory_point(
    results: dict[str, RunResult], wall_clock: dict[str, float]
) -> None:
    """Append one per-PR trajectory point to BENCH_SMOKE.json."""
    history: dict = {"schema": 1, "points": []}
    if os.path.exists(SMOKE_FILE):
        try:
            with open(SMOKE_FILE, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict) and isinstance(loaded.get("points"), list):
                history = loaded
        except (OSError, json.JSONDecodeError):
            pass  # corrupt history: start over rather than fail the gate
    point = {
        "commit": git_commit(),
        "unix_time": int(time.time()),
        "systems": {
            system: {
                "throughput_kops": result.throughput_kops,
                "read_p99_usec": result.read_latency.p99,
                "update_p99_usec": result.update_latency.p99,
                "write_amplification": result.write_amplification,
                # Real seconds the smoke run took, *not* simulated time:
                # the one metric here that tracks simulator speed rather
                # than simulated behaviour.
                "wall_clock_sec": round(wall_clock[system], 4),
            }
            for system, result in results.items()
        },
    }
    history["points"].append(point)
    with open(SMOKE_FILE, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=15.0,
                        help="allowed bad-direction drift in %% (default: 15)")
    parser.add_argument("--records", type=int, default=3_000)
    parser.add_argument("--ops", type=int, default=5_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rebaseline", action="store_true",
                        help="overwrite the committed baselines with this run")
    args = parser.parse_args(argv)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    results: dict[str, RunResult] = {}
    wall_clock: dict[str, float] = {}
    failed = False
    for system in SYSTEMS:
        started = time.perf_counter()
        result = smoke_run(
            system, records=args.records, ops=args.ops, seed=args.seed
        )
        wall_clock[system] = time.perf_counter() - started
        results[system] = result
        smoke_path = os.path.join(RESULTS_DIR, f"smoke_{system}.json")
        result.save(smoke_path)
        baseline_path = os.path.join(RESULTS_DIR, f"baseline_{system}.json")
        if args.rebaseline or not os.path.exists(baseline_path):
            shutil.copyfile(smoke_path, baseline_path)
            print(f"[perf-gate] {system}: baseline written to {baseline_path}")
            continue
        baseline = RunResult.load(baseline_path)
        diffs = compare_results(baseline, result, tolerance_pct=args.tolerance)
        bad = regressions(diffs)
        if bad:
            failed = True
            headers, rows = comparison_table(diffs, only_drift=True)
            print(
                format_experiment(
                    f"[perf-gate] {system}: REGRESSION vs {baseline_path}",
                    headers,
                    rows,
                    notes=f"{len(bad)} metric(s) beyond {args.tolerance:g}% tolerance",
                )
            )
        else:
            print(
                f"[perf-gate] {system}: ok "
                f"({result.throughput_kops:.1f} kops, "
                f"read p99 {result.read_latency.p99:.1f} us, "
                f"WA {result.write_amplification:.2f})"
            )
    append_trajectory_point(results, wall_clock)
    print(f"[perf-gate] trajectory point appended to {SMOKE_FILE}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
