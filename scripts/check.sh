#!/usr/bin/env bash
# CI-style check: compile, lint (when ruff is available), unit tests.
#
# The bench marker keeps the paper-artifact simulations out of this
# pass; run `pytest benchmarks` separately for those.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== compileall =="
python -m compileall -q src tests

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests
    else
        python -m ruff check src tests
    fi
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== docs link check =="
python scripts/check_links.py

echo "== unit tests (-m 'not bench') =="
python -m pytest -m "not bench" "$@"

# Non-gating: wall-clock microbenchmarks of the simulator's hot-path
# primitives. Numbers vary with machine load, so failures or slow
# results never fail the check — the output is for eyeballing
# wall-clock regressions (see docs/PERFORMANCE.md).
echo "== micro-smoke (non-gating) =="
if ! python -m repro.bench micro --quick; then
    echo "micro-smoke failed (non-gating); continuing"
fi

# Non-gating: a 2-point compaction design-space sweep (leveling vs
# tiering at one mix, tiny workload) exercising the strategy layer and
# sweep artifact plumbing end to end. Simulated numbers at this scale
# are not meaningful; the gating coverage lives in tests/bench/ and
# tests/lsm/ (see docs/COMPACTION.md).
echo "== sweep-smoke (non-gating) =="
if ! python -m repro.bench sweep --shapes leveling tiering --mixes 95 \
        --records 600 --ops 500; then
    echo "sweep-smoke failed (non-gating); continuing"
fi

# Non-gating: latency-attribution smoke. Two tiny seeded runs saved
# with --attribution, rendered and diffed by `repro.bench explain`.
# Asserts the plumbing end to end (artifact schema v2, attribution
# block, table rendering); the numbers themselves are covered by
# deterministic tests in tests/bench/test_explain.py.
echo "== explain-smoke (non-gating) =="
explain_smoke() {
    local dir
    dir=$(mktemp -d)
    python -m repro.bench report --records 600 --ops 800 --seed 7 \
        --attribution --save "$dir/a.json" >/dev/null &&
    python -m repro.bench report --records 600 --ops 800 --seed 21 \
        --attribution --save "$dir/b.json" >/dev/null &&
    python -m repro.bench explain "$dir/a.json" \
        | grep "component/tier" >/dev/null &&
    python -m repro.bench explain "$dir/a.json" "$dir/b.json" \
        | grep "of the delta is explained" >/dev/null
    local status=$?
    rm -rf "$dir"
    return $status
}
if ! explain_smoke; then
    echo "explain-smoke failed (non-gating); continuing"
fi

# Non-gating: sharded-fleet smoke. A 2-shard fleet through the
# consistent-hash router, device-pool overlay and merge path, fanned
# out over 2 worker processes — exercising the multiprocessing path
# itself. Determinism (jobs=1 == jobs=N, committed digests) is gated by
# tests/fleet/; this smoke only proves the CLI runs end to end.
echo "== fleet-smoke (non-gating) =="
if ! python -m repro.bench fleet --shards 2 --tenants 2 \
        --keys-per-tenant 1000 --ops 3000 --jobs 2 \
        --sample-interval-ms 0.5; then
    echo "fleet-smoke failed (non-gating); continuing"
fi

# Non-gating: end-to-end wall-clock delta. Times the e2e smoke micro
# (quick scale) and prints the change against the last trajectory point
# in BENCH_SMOKE.json that recorded one. Machine-load-sensitive, so the
# result never fails the check — the recorded trajectory is appended by
# scripts/perf_gate.py (REPRO_PERF_GATE=1), not here.
echo "== e2e wall-clock delta (non-gating) =="
if ! python - <<'PY'
import json
import sys

sys.path.insert(0, "src")
from repro.bench.micro import run_micro

(result,) = run_micro(quick=True, name_filter="e2e.smoke")
now = result.best_ns / 1e3
print(f"e2e.smoke now: {now:.2f} us/op (quick scale, best-of)")
try:
    with open("BENCH_SMOKE.json", encoding="utf-8") as fh:
        points = json.load(fh)["points"]
    last = next(
        point["micros"]["e2e.smoke"]
        for point in reversed(points)
        if "e2e.smoke" in point.get("micros", {})
    )
except (OSError, ValueError, KeyError, StopIteration):
    print("no recorded e2e.smoke micro in BENCH_SMOKE.json yet; no delta")
else:
    delta = now - last
    print(
        f"last recorded: {last:.2f} us/op -> delta {delta:+.2f} us/op "
        f"({delta / last * 100:+.1f}%)"
    )
PY
then
    echo "e2e delta failed (non-gating); continuing"
fi

# Opt-in perf gate: smoke-runs every system, appends a trajectory point
# to BENCH_SMOKE.json, and fails on regressions beyond tolerance vs the
# committed baselines. Enable with REPRO_PERF_GATE=1; tune the allowed
# drift with REPRO_PERF_TOLERANCE (percent, default 15).
if [[ "${REPRO_PERF_GATE:-0}" != "0" ]]; then
    echo "== perf gate (REPRO_PERF_GATE=${REPRO_PERF_GATE}) =="
    python scripts/perf_gate.py --tolerance "${REPRO_PERF_TOLERANCE:-15}"
fi
