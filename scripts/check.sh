#!/usr/bin/env bash
# CI-style check: compile, lint (when ruff is available), unit tests.
#
# The bench marker keeps the paper-artifact simulations out of this
# pass; run `pytest benchmarks` separately for those.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

echo "== compileall =="
python -m compileall -q src tests

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests
    else
        python -m ruff check src tests
    fi
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== unit tests (-m 'not bench') =="
python -m pytest -m "not bench" "$@"
