#!/usr/bin/env python3
"""Check relative markdown links in README.md and docs/.

Scans inline links (``[text](target)``) in the repo's top-level README
and every markdown file under docs/, and fails if a *relative* target
does not exist on disk. External links (http/https/mailto) and pure
in-page anchors (``#section``) are skipped; a ``path#anchor`` target is
checked for the path only.

Usage: python scripts/check_links.py [root]
Exits 0 when all links resolve, 1 otherwise (listing each broken link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links, excluding images. Nested parens are not used
#: in this repo's docs, so a simple no-paren target is sufficient.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def files_to_check(root: Path) -> list[Path]:
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def broken_links(path: Path, root: Path) -> list[tuple[int, str]]:
    broken = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if root.resolve() not in resolved.parents and resolved != root.resolve():
                broken.append((lineno, f"{target} (escapes the repo)"))
            elif not resolved.exists():
                broken.append((lineno, target))
    return broken


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for path in files_to_check(root):
        checked += 1
        for lineno, target in broken_links(path, root):
            print(f"{path.relative_to(root)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"check_links: {failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"check_links: OK ({checked} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
