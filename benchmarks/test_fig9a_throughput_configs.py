"""Fig. 9a — throughput of PrismDB vs RocksDB vs Mutant per storage config.

Paper shape: PrismDB wins everywhere; on the heterogeneous configuration
it beats both baselines decisively, and PrismDB-het outperforms
homogeneous TLC (the standard deployment) while costing ~2.4x less.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import fig9a_throughput


def test_fig9a(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig9a_throughput, runner)
    report(
        "fig9a",
        "Figure 9a: throughput by system and storage configuration (kops/s)",
        headers,
        rows,
        notes="Paper shape: PrismDB > RocksDB in every config; PrismDB-het > RocksDB-TLC; Mutant <= RocksDB on het.",
    )
    table = {row[0]: row[1:] for row in rows}
    rocks = {name: float(cells[0]) for name, cells in table.items()}
    prism = {name: float(cells[2]) for name, cells in table.items()}
    mutant_het = float(table["Het"][1])

    # PrismDB improves on RocksDB on the heterogeneous configuration.
    check_shape(prism["Het"] > rocks["Het"] * 1.05, "")
    # Hot-cold separation also helps on homogeneous setups (§6.3).
    check_shape(prism["QLC"] > rocks["QLC"], "")
    check_shape(prism["TLC"] > rocks["TLC"], "")
    # Mutant does not beat PrismDB (migrations + file granularity).
    check_shape(prism["Het"] > mutant_het, "")
    # PrismDB-het outperforms the standard homogeneous TLC deployment.
    check_shape(prism["Het"] > rocks["TLC"], "")
