"""Extension — Mutant's migration-resistance optimization.

The PrismDB evaluation disabled Mutant's migration resistance to keep
storage sizes fixed (§6). This extension turns it on and shows the
trade-off the Mutant paper describes: fewer migrations (less background
I/O and fewer lock stalls) at the cost of staler placement.
"""

from conftest import check_shape, run_once

from repro.baselines.mutant import MutantDB, MutantOptions
from repro.bench.experiments import shared_runner
from repro.bench.harness import SystemConfig, WorkloadRunner
from repro.bench.reporting import fmt
from repro.workloads.ycsb import YCSBWorkload


def resistance_rows(runner):
    from dataclasses import replace

    from repro.bench.harness import build_system
    from repro.common.clock import SimClock
    from repro.lsm.layout import build_layout
    from repro.lsm.options import options_for_db_size

    headers = ["resistance", "kops", "avg read (us)", "migrations", "resisted"]
    rows = []
    base = runner.workload_config()
    aging = replace(base, read_proportion=0.5, update_proportion=0.5,
                    warmup_operations=runner.scale.aging_operations)
    settle = replace(base, warmup_operations=runner.scale.settle_operations)
    for resistance in (0.0, 0.5, 2.0):
        workload = YCSBWorkload(base)
        db_bytes = workload.total_data_bytes()
        options = options_for_db_size(
            db_bytes, block_cache_bytes=int(db_bytes * runner.scale.cache_fraction)
        )
        clock = SimClock()
        layout = build_layout("NNNTQ", options, clock)
        db = MutantDB(
            layout, options,
            MutantOptions(migration_resistance=resistance),
            clock=clock,
        )
        harness = WorkloadRunner(db, clients=runner.scale.clients)
        harness.load(workload)
        harness.warmup(YCSBWorkload(aging))
        harness.warmup(YCSBWorkload(settle))
        elapsed = harness.run(workload)
        result = harness.result(f"mutant-r{resistance}", SystemConfig(system="mutant"), elapsed)
        rows.append([
            resistance,
            fmt(result.throughput_kops),
            fmt(result.read_latency.mean),
            result.migrations,
            db.mutant_stats.migrations_resisted,
        ])
    return headers, rows


def test_ext_migration_resistance(benchmark, report, runner):
    headers, rows = run_once(benchmark, resistance_rows, runner)
    report(
        "ext_migration_resistance",
        "Extension: Mutant with migration resistance enabled",
        headers,
        rows,
        notes="Higher resistance -> fewer migrations (the Mutant paper's space-vs-I/O trade).",
    )
    migrations = {row[0]: int(row[3]) for row in rows}
    resisted = {row[0]: int(row[4]) for row in rows}
    check_shape(migrations[2.0] <= migrations[0.0], "resistance must cut migrations")
    check_shape(resisted[2.0] > 0, "the resisted counter must fire")
    assert resisted[0.0] == 0  # disabled means no resistance events
