"""Fig. 2a — RocksDB throughput on homogeneous vs heterogeneous storage.

Paper shape: NVM > TLC > QLC, and the naive heterogeneous configuration
(LSM-het) performs only marginally better than pure QLC — it pays for
fast storage without exploiting it.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import fig2a_rocksdb_storage


def test_fig2a(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig2a_rocksdb_storage, runner)
    report(
        "fig2a",
        "Figure 2a: RocksDB throughput by storage configuration (kops/s)",
        headers,
        rows,
        notes="Paper shape: NVM > TLC > Het ~ QLC (heterogeneity wasted without read-awareness).",
    )
    kops = {row[0]: float(row[1]) for row in rows}
    check_shape(kops["NVM"] > kops["TLC"] > kops["QLC"], "")
    # LSM-het lands near QLC, far from NVM: it closes less than half of
    # the QLC -> NVM gap.
    check_shape(kops["Het"] < kops["QLC"] + 0.5 * (kops["NVM"] - kops["QLC"]), "")
