"""Fig. 9b — throughput vs read/update ratio on heterogeneous storage.

Paper shape: PrismDB leads at every mix; its edge is *smallest* at 100%
reads because pinning happens during compactions and a read-only
workload generates none.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import MIX_READ_PCTS, fig9b_throughput_mixes


def test_fig9b(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig9b_throughput_mixes, runner)
    report(
        "fig9b",
        "Figure 9b: throughput vs read percentage, heterogeneous config (kops/s)",
        headers,
        rows,
        notes="Paper shape: PrismDB wins at every mix; smallest gain at 100% reads (no compactions).",
    )
    by_mix = {int(row[0]): (float(row[1]), float(row[2]), float(row[3])) for row in rows}
    gains = {}
    for read_pct in MIX_READ_PCTS:
        rocks, _, prism = by_mix[read_pct]
        gains[read_pct] = prism / rocks
    # PrismDB never loses to RocksDB at any mix.
    check_shape(all(gain > 0.98 for gain in gains.values()), gains)
    # It clearly wins once writes generate compactions.
    check_shape(gains[95] > 1.05, "")
    # Write-bearing mixes benefit at least as much as read-only.
    check_shape(max(gains[50], gains[80], gains[95]) >= gains[100])
