"""Fig. 6 — CLOCK value distribution of the tracker over time.

Paper shape: the distribution fluctuates while the tracker fills, then
converges to a stable mix with substantial mass at the extreme values
(never-re-read keys at low CLOCK, the hot set saturated at CLOCK 3).
"""

from conftest import run_once

from repro.bench.experiments import fig6_clock_distribution


def test_fig6(benchmark, report):
    headers, rows = run_once(benchmark, fig6_clock_distribution)
    report(
        "fig6",
        "Figure 6: tracker CLOCK-value distribution vs reads processed (zipf 0.99)",
        headers,
        rows,
        notes="Paper shape: converges after the tracker fills; hot set saturates at CLOCK 3.",
    )
    final = rows[-1]
    fractions = [float(cell.rstrip("%")) for cell in final[1:5]]
    assert abs(sum(fractions) - 100.0) < 1.0
    # Once converged: a solid block of CLOCK-3 keys (the stable hot set)...
    assert fractions[3] > 10.0
    # ...and a large population at low CLOCK values awaiting eviction.
    assert fractions[0] + fractions[1] > 20.0
    assert final[5] == "yes"  # tracker full, pinning enabled

    # Convergence: the last two snapshots are closer to each other than
    # the first two are.
    def vec(row):
        return [float(cell.rstrip("%")) for cell in row[1:5]]

    early_delta = sum(abs(a - b) for a, b in zip(vec(rows[0]), vec(rows[1])))
    late_delta = sum(abs(a - b) for a, b in zip(vec(rows[-2]), vec(rows[-1])))
    assert late_delta <= early_delta
