"""Fig. 11 — performance across request distributions.

Paper shape: PrismDB outperforms RocksDB on every distribution except
extremely skewed Zipfian (parameter >= 1.4), where the whole working set
is DRAM-cached and PrismDB's per-read tracker update becomes pure
overhead.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import fig11_distributions


def test_fig11(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig11_distributions, runner)
    report(
        "fig11",
        "Figure 11: throughput and p99 read latency by request distribution, Het",
        headers,
        rows,
        notes="Paper shape: PrismDB wins everywhere except zipf >= 1.4 (fully cached; tracker overhead).",
    )
    table = {row[0]: (float(row[1]), float(row[2])) for row in rows}
    # Moderate skew: PrismDB wins.
    rocks, prism = table["z0.99"]
    check_shape(prism > rocks, "")
    # Extreme skew: the gap closes or inverts (tracker overhead regime).
    gain_moderate = table["z0.99"][1] / table["z0.99"][0]
    gain_extreme = table["z1.4"][1] / table["z1.4"][0]
    check_shape(gain_extreme < gain_moderate, "")
    # "latest" behaves like zipf 0.99 (paper's description).
    rocks_latest, prism_latest = table["latest"]
    check_shape(prism_latest > rocks_latest * 0.95, "")
