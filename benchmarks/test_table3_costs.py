"""Table 3 — storage cost of the four named configurations."""

from conftest import run_once

from repro.analysis import table3_costs
from repro.bench.experiments import table3_storage_costs


def test_table3(benchmark, report):
    headers, rows = run_once(benchmark, table3_storage_costs)
    report(
        "table3",
        "Table 3: storage cost, 223 GB database, 3-year lifetime",
        headers,
        rows,
        notes="Paper: QQQQQ=$22, NNNTQ=$37, TTTTT=$89, NNNNN=$289.",
    )
    costs = table3_costs()
    paper = {"QQQQQ": 22.0, "NNNTQ": 37.0, "TTTTT": 89.0, "NNNNN": 289.0}
    for code, expected in paper.items():
        assert abs(costs[code] - expected) / expected < 0.10, code
    # The headline claim: the heterogeneous default is ~2.4x cheaper than
    # the standard all-TLC deployment.
    assert costs["TTTTT"] / costs["NNNTQ"] > 2.0
