"""Fig. 10 — read and update latencies (avg/p50/p95/p99 and per-mix).

Paper shape: PrismDB's improvements concentrate away from the median —
the median is cached for everyone, while queries that would hit slow
tiers under RocksDB hit fast tiers under PrismDB.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import fig10ab_latencies, fig10cd_latency_mixes


def test_fig10ab(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig10ab_latencies, runner)
    report(
        "fig10ab",
        "Figure 10a/b: read and update latency percentiles, 95/5 Het (us)",
        headers,
        rows,
        notes="Paper shape: PrismDB improves avg and tail read latency; median ~unchanged (cached for all).",
    )
    by_system = {row[0]: [float(v) for v in row[1:]] for row in rows}
    rocks, prism = by_system["rocksdb"], by_system["prismdb"]
    read_avg, read_p50, read_p95, read_p99 = 0, 1, 2, 3
    # Average and median read latency improve.
    check_shape(prism[read_avg] < rocks[read_avg], "")
    check_shape(prism[read_p50] <= rocks[read_p50], "")
    # Tail: no worse than RocksDB (paper: much better).
    check_shape(prism[read_p99] <= rocks[read_p99] * 1.15, "")


def test_fig10cd(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig10cd_latency_mixes, runner)
    report(
        "fig10cd",
        "Figure 10c/d: average read/update latency vs read percentage, Het (us)",
        headers,
        rows,
        notes="Paper shape: PrismDB's read latency benefits from the presence of writes.",
    )
    for row in rows:
        read_pct = int(row[0])
        rocks_read, prism_read = float(row[1]), float(row[3])
        if read_pct < 100:
            check_shape(prism_read <= rocks_read * 1.10, row)
