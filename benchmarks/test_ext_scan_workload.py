"""Extension — YCSB-E style scan-heavy workload.

Not part of the paper's evaluation (which uses read/update mixes), but
exercises the substrate's merging-iterator scan path under the same
heterogeneous layout.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import ext_scan_workload


def test_ext_scan_workload(benchmark, report, runner):
    headers, rows = run_once(benchmark, ext_scan_workload, runner)
    report(
        "ext_scan_workload",
        "Extension: scan-heavy workload (95% scans of <=20 keys, Het)",
        headers,
        rows,
        notes="Scans merge all levels; pinning matters less than for point reads.",
    )
    kops = {row[0]: float(row[1]) for row in rows}
    # Both systems complete the workload; PrismDB is not pathologically
    # worse despite scans touching pinned and unpinned files alike.
    check_shape(kops["prismdb"] > kops["rocksdb"] * 0.7, kops)
    assert all(value > 0 for value in kops.values())
