"""Fig. 4 — cost vs read latency for all 3^5 tier assignments.

Paper shape: homogeneous configurations sit at the extremes (NNNNN fast
and expensive, QQQQQ slow and cheap); the Pareto frontier is traced by
configurations whose upper levels use equal-or-faster technology than
their lower levels, and NNNTQ (the paper's default) is on it.
"""

from conftest import run_once

from repro.analysis import enumerate_configs, pareto_frontier
from repro.bench.experiments import fig4_cost_latency


def test_fig4(benchmark, report):
    headers, rows = run_once(benchmark, fig4_cost_latency)
    frontier_rows = [row for row in rows if row[3] == "*"]
    report(
        "fig4",
        "Figure 4: cost vs average read latency, all 243 configurations "
        f"({len(frontier_rows)} on the Pareto frontier)",
        headers,
        rows,
        notes="Paper shape: NNNNN fastest/most expensive, QQQQQ cheapest/slowest, NNNTQ on the frontier.",
    )
    evaluations = {e.code: e for e in enumerate_configs()}
    frontier = {e.code for e in pareto_frontier(list(evaluations.values()))}
    assert {"NNNNN", "QQQQQ", "NNNTQ"} <= frontier
    nnnnn, qqqqq, nnntq = (evaluations[c] for c in ("NNNNN", "QQQQQ", "NNNTQ"))
    assert nnnnn.avg_read_latency_usec < nnntq.avg_read_latency_usec < qqqqq.avg_read_latency_usec
    assert qqqqq.cost_dollars < nnntq.cost_dollars < nnnnn.cost_dollars
    # ~15x latency spread between the homogeneous extremes (Table 1).
    assert qqqqq.avg_read_latency_usec / nnnnn.avg_read_latency_usec > 10.0
