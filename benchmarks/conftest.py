"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one paper table/figure, prints it, and writes
it under ``benchmarks/results/``. Heavy simulation runs are memoized on a
process-wide runner, so artifacts that share a configuration (Fig. 9a,
Fig. 10, Table 4, Fig. 12 all reuse the 95/5 heterogeneous run) only
simulate once per session.

Set ``REPRO_BENCH_SCALE=quick`` for a fast smoke pass or ``=full`` for
the larger configuration.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.reporting import format_experiment

RESULTS_DIR = Path(__file__).parent / "results"

#: Quick scale is a smoke profile: artifacts are regenerated but the
#: paper-shape assertions are skipped (steady-state shapes need the
#: default workload sizes).
QUICK_SCALE = os.environ.get("REPRO_BENCH_SCALE", "default") == "quick"


def pytest_collection_modifyitems(items):
    """Tag every benchmark so ``-m "not bench"`` skips this directory."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def check_shape(condition: bool, message: str = "") -> None:
    """Assert a paper-shape property unless running the quick profile."""
    if QUICK_SCALE:
        return
    assert condition, message


@pytest.fixture(scope="session")
def report():
    """Print a regenerated artifact and persist it to results/."""

    def _report(name: str, title: str, headers, rows, notes: str = "") -> str:
        text = format_experiment(title, headers, rows, notes=notes)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        return text

    return _report


def run_once(benchmark, func, *args, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def runner():
    from repro.bench.experiments import shared_runner

    return shared_runner()
