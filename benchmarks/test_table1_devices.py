"""Table 1 — lifetime, cost and latency of the storage technologies."""

from conftest import run_once

from repro.bench.experiments import table1_devices
from repro.storage import NVM_SPEC, QLC_SPEC, TLC_SPEC, fio_random_read_latency


def test_table1(benchmark, report):
    headers, rows = run_once(benchmark, table1_devices)
    report(
        "table1",
        "Table 1: storage technology characteristics (model parameters)",
        headers,
        rows,
        notes="Paper: reads 26/195/391 us; writes 121/216/456 us; cost $1.3/$0.4/$0.1.",
    )
    # The modeled fio numbers must match the paper's measurements.
    assert abs(fio_random_read_latency(NVM_SPEC) - 26.0) < 1.0
    assert abs(fio_random_read_latency(TLC_SPEC) - 195.0) < 2.0
    assert abs(fio_random_read_latency(QLC_SPEC) - 391.0) < 4.0
    assert NVM_SPEC.pe_cycles > TLC_SPEC.pe_cycles > QLC_SPEC.pe_cycles
    assert NVM_SPEC.cost_per_gb > TLC_SPEC.cost_per_gb > QLC_SPEC.cost_per_gb
