"""Extension — endurance: how long do the devices last under each system?

The paper's first contribution is evaluating LSM trees on heterogeneous
storage "taking cost, performance, as well as endurance into account"
(§1). This extension measures it directly: per-tier P/E wear during the
headline workload and the projected device lifetime at the observed write
rate. PrismDB's update absorption writes fewer bytes to the QLC bottom
tier, extending the least-endurant device's life.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import shared_runner
from repro.bench.reporting import fmt


def endurance_rows(runner):
    headers = ["system", "QLC write MB", "QLC wear (P/E)", "QLC life (years)",
               "TLC write MB", "NVM write MB"]
    rows = []
    for system in ("rocksdb", "mutant", "prismdb"):
        result = runner.run(system, "NNNTQ")
        def tier_named(prefix):
            for name in result.device_write_bytes:
                if name.startswith(prefix):
                    return name
            raise KeyError(prefix)
        qlc, tlc, nvm = tier_named("qlc"), tier_named("tlc"), tier_named("nvm")
        life = result.device_lifetime_years[qlc]
        rows.append([
            system,
            fmt(result.device_write_bytes[qlc] / 2**20),
            f"{result.device_wear_cycles[qlc]:.3f}",
            "inf" if life == float("inf") else fmt(life, 2),
            fmt(result.device_write_bytes[tlc] / 2**20),
            fmt(result.device_write_bytes[nvm] / 2**20),
        ])
    return headers, rows


def test_ext_endurance(benchmark, report, runner):
    headers, rows = run_once(benchmark, endurance_rows, runner)
    report(
        "ext_endurance",
        "Extension: per-tier wear and projected QLC lifetime (95/5, Het)",
        headers,
        rows,
        notes="PrismDB writes fewer bytes to the 200-cycle QLC tier, extending its life.",
    )
    by_system = {row[0]: row for row in rows}
    rocks_qlc = float(by_system["rocksdb"][1])
    prism_qlc = float(by_system["prismdb"][1])
    check_shape(prism_qlc < rocks_qlc, "PrismDB must write less to QLC")
    # Mutant adds migration writes on top of RocksDB's compaction writes.
    mutant_qlc = float(by_system["mutant"][1])
    check_shape(mutant_qlc >= rocks_qlc, "Mutant's migrations add QLC writes")
