"""Fig. 14 — effect of the pinning threshold on throughput.

Paper shape: a hump. Too low a threshold pins nothing and converges to
RocksDB; too high a threshold gums up compaction (many objects pinned,
more I/O) and throughput falls again.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import THRESHOLDS, fig14_pinning_threshold


def test_fig14(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig14_pinning_threshold, runner)
    report(
        "fig14",
        "Figure 14: PrismDB throughput vs pinning threshold, Het",
        headers,
        rows,
        notes="Paper shape: throughput peaks at a moderate threshold; both extremes are worse.",
    )
    kops = [float(row[1]) for row in rows]
    io_mb = [float(row[2]) for row in rows]
    by_threshold = dict(zip(THRESHOLDS, kops))
    peak = max(kops)
    # The peak is not at threshold 0 (pinning must help)...
    check_shape(by_threshold[0.0] < peak, "")
    # ...and pushing the threshold to 50% costs extra compaction I/O
    # relative to the moderate setting.
    io_by_threshold = dict(zip(THRESHOLDS, io_mb))
    check_shape(io_by_threshold[0.50] > io_by_threshold[0.10] * 0.95, "")
    # The moderate thresholds hold (or take) the lead.
    check_shape(max(by_threshold[0.10], by_threshold[0.25]) >= peak * 0.97)
