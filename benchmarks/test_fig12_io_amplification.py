"""Fig. 12 — compaction I/O and write amplification.

Paper shape: PrismDB significantly reduces compaction I/O. At our
compressed scale the robust form of that result is *where* the I/O goes:
PrismDB reads fewer device bytes overall and writes far fewer bytes to
the slow, low-endurance QLC bottom tier (update absorption keeps hot
versions dying high in the tree), while Mutant adds pure-overhead
migration I/O on top of RocksDB's compactions. Total compaction byte
counts sit within a few percent of RocksDB's and can swing either way
run to run (see EXPERIMENTS.md).
"""

from conftest import check_shape, run_once

from repro.bench.experiments import fig12_io_amplification


def test_fig12(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig12_io_amplification, runner)
    report(
        "fig12",
        "Figure 12: I/O usage and write amplification, 95/5 Het",
        headers,
        rows,
        notes="Paper shape: PrismDB shifts I/O off the slow tier; Mutant adds migration I/O on top.",
    )
    table = {row[0]: row[1:] for row in rows}
    rocks_qlc_mb = float(table["rocksdb"][2])
    prism_qlc_mb = float(table["prismdb"][2])
    mutant_migration_mb = float(table["mutant"][3])
    rocks_read_mb = float(table["rocksdb"][5])
    prism_read_mb = float(table["prismdb"][5])
    # PrismDB writes much less to the QLC bottom tier (update absorption).
    check_shape(prism_qlc_mb < rocks_qlc_mb, (prism_qlc_mb, rocks_qlc_mb))
    # ...and reads fewer device bytes overall (hot data sits higher).
    check_shape(prism_read_mb < rocks_read_mb, (prism_read_mb, rocks_read_mb))
    # Mutant's migrations are real extra I/O RocksDB doesn't pay.
    check_shape(mutant_migration_mb > 0.0, "")
    # Total compaction writes stay in RocksDB's ballpark (within ~10%).
    rocks_comp = float(table["rocksdb"][1])
    prism_comp = float(table["prismdb"][1])
    check_shape(prism_comp < rocks_comp * 1.10, (prism_comp, rocks_comp))
