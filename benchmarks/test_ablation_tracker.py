"""Ablation — tracker CLOCK resolution.

The paper uses 2 CLOCK bits (values 0-3): one bit captures only recency
and cannot separate "read once" from "read repeatedly"; more bits add
resolution at metadata cost. This bench sweeps the bit width.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import ablation_tracker_params


def test_ablation_tracker(benchmark, report, runner):
    headers, rows = run_once(benchmark, ablation_tracker_params, runner)
    report(
        "ablation_tracker",
        "Ablation: tracker CLOCK bit width (95/5, Het)",
        headers,
        rows,
        notes="Paper uses 2 bits; 1 bit degrades hot-set identification.",
    )
    kops = {row[0]: float(row[1]) for row in rows}
    pins = {row[0]: int(row[3]) for row in rows}
    # All variants still function and pin something.
    check_shape(all(value > 0 for value in kops.values()))
    check_shape(pins["2 clock bits (paper)"] > 0)
    # The paper's 2-bit setting is competitive with the wider variant.
    check_shape(kops["2 clock bits (paper)"] >= kops["3 clock bits"] * 0.9)
