"""Table 4 — DRAM (block cache) hit-rate improvement over RocksDB.

Paper: PrismDB lifts the overall hit rate to ~79% from ~50-60% across
all storage configurations, with data-block hit rates improving 2-2.7x,
because hot-cold separation packs popular objects into the same blocks.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import table4_hit_rates


def test_table4(benchmark, report, runner):
    headers, rows = run_once(benchmark, table4_hit_rates, runner)
    report(
        "table4",
        "Table 4: block-cache hit rate by system and configuration",
        headers,
        rows,
        notes="Paper shape: PrismDB improves hit rate in every configuration; data blocks improve most.",
    )
    for row in rows:
        name = row[0]
        rocks = float(row[1].rstrip("%"))
        prism = float(row[3].rstrip("%"))
        improvement = float(row[4].rstrip("x"))
        data_improvement = float(row[5].rstrip("x"))
        check_shape(prism >= rocks, name)
        check_shape(improvement >= 1.0, name)
        # Data-block hit rates improve at least as much as the overall
        # rate (index/filter blocks are near-always resident for both).
        check_shape(data_improvement >= improvement * 0.9, name)
