"""Table 2 — point-read distribution across levels, block cache disabled.

Paper: Memtable 25%, L0 3%, L1 2%, L2 5%, L3 16%, L4 49% — i.e. roughly
two thirds of point reads are served from the two slowest levels, which
is why mapping levels to tiers without read-awareness buys so little.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import table2_read_levels


def test_table2(benchmark, report, runner):
    headers, rows = run_once(benchmark, table2_read_levels, runner)
    report(
        "table2",
        "Table 2: point reads by level, cache disabled (RocksDB, Het)",
        headers,
        rows,
        notes="Paper: 25% / 3% / 2% / 5% / 16% / 49% — deep levels serve ~65%.",
    )
    values = {name: float(cell.rstrip("%")) for name, cell in zip(headers, rows[0])}
    # Deep levels together serve more reads than any other source.
    check_shape(values["L3"] + values["L4"] > 35.0, "")
    # The memtable captures the very hottest keys.
    check_shape(values["Memtable"] > 10.0, "")
    # Mid levels are small contributors, as in the paper.
    check_shape(values["L1"] < values["L4"], "")
    check_shape(values["L2"] < values["L3"] + values["L4"], "")
