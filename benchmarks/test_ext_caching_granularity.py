"""Extension — §3.3's caching-granularity mismatch, measured.

The paper argues block-granular caching wastes DRAM because 4 KB blocks
mix one hot object with dozens of cold neighbours. Two remedies exist:
cache at object granularity (RocksDB's row cache), or make blocks
hot-dense (PrismDB's hot-cold separation). This bench compares the
three options under the same total DRAM budget.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import ext_caching_granularity


def test_ext_caching_granularity(benchmark, report, runner):
    headers, rows = run_once(benchmark, ext_caching_granularity, runner)
    report(
        "ext_caching_granularity",
        "Extension: block vs object caching granularity (95/5, Het, equal DRAM)",
        headers,
        rows,
        notes="Row cache and hot-cold separation both attack the §3.3 mismatch.",
    )
    kops = {row[0]: float(row[1]) for row in rows}
    block_only = kops["rocksdb, block cache only"]
    with_row = kops["rocksdb, half row cache"]
    prism = kops["prismdb, block cache only"]
    # Spending part of the budget at object granularity helps RocksDB on
    # a skewed workload.
    check_shape(with_row > block_only, "row cache should beat block-only RocksDB")
    # PrismDB's separation competes without any row cache.
    check_shape(prism > block_only, "hot-cold separation should beat block-only RocksDB")
