"""Ablation — which PrismDB mechanism buys what.

DESIGN.md calls out three separable mechanisms: retention pinning,
up-compaction, and popularity-scored SST selection. This bench disables
each in turn on the headline workload.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import ablation_components


def test_ablation_components(benchmark, report, runner):
    headers, rows = run_once(benchmark, ablation_components, runner)
    report(
        "ablation_components",
        "Ablation: PrismDB mechanisms individually disabled (95/5, Het)",
        headers,
        rows,
        notes="Full PrismDB should lead; each ablation gives back part of the gain.",
    )
    kops = {row[0]: float(row[1]) for row in rows}
    full = kops["prismdb (full)"]
    rocks = kops["rocksdb (no read-awareness)"]
    check_shape(full > rocks, "read-awareness must beat the baseline")
    # Every ablated variant stays within the rocksdb..full envelope
    # (generous tolerance: mechanisms interact).
    for label, value in kops.items():
        if label.startswith("prismdb"):
            check_shape(value > rocks * 0.9, label)
    # Disabling up-compaction removes all pulls.
    pulls = {row[0]: int(row[5]) for row in rows}
    assert pulls["prismdb, no up-compaction"] == 0
    check_shape(pulls["prismdb (full)"] > 0, "full variant should pull keys up")
