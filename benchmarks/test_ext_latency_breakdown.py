"""Extension — read latency decomposed by serving source.

Makes the placement mechanism visible: the read-latency distribution is
a mixture over (memtable, L0..L4) sources, each priced by its tier.
PrismDB shifts probability mass from the L3/L4 rows into the NVM rows.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import ext_latency_breakdown


def test_ext_latency_breakdown(benchmark, report, runner):
    headers, rows = run_once(benchmark, ext_latency_breakdown, runner)
    report(
        "ext_latency_breakdown",
        "Extension: read latency by serving source (95/5, Het)",
        headers,
        rows,
        notes="PrismDB moves read mass from L3/L4 rows to memtable/L0-L2 rows.",
    )
    shares = {row[0]: (float(row[1].rstrip("%")), float(row[3].rstrip("%"))) for row in rows}
    rocks_deep = shares["L3"][0] + shares["L4"][0]
    prism_deep = shares["L3"][1] + shares["L4"][1]
    check_shape(prism_deep < rocks_deep, "PrismDB must serve fewer reads from deep tiers")
    rocks_nvm = sum(shares[s][0] for s in ("L0", "L1", "L2"))
    prism_nvm = sum(shares[s][1] for s in ("L0", "L1", "L2"))
    check_shape(prism_nvm > rocks_nvm, "PrismDB must serve more reads from NVM levels")
