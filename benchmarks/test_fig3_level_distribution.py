"""Fig. 3 — distribution of writes and reads across LSM levels.

Paper shape: writes spread across all levels with the deep levels
receiving the most compaction bytes; reads concentrate in the memtable
plus the two bottom levels.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import fig3_level_distribution


def test_fig3(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig3_level_distribution, runner)
    report(
        "fig3",
        "Figure 3: write bytes and point reads across levels (RocksDB, Het, YCSB 95/5)",
        headers,
        rows,
        notes="Paper shape: deep levels dominate both compaction bytes and storage reads.",
    )
    write_pct = {row[0]: float(row[1].rstrip("%")) for row in rows if row[1] != "-"}
    read_pct = {row[0]: float(row[2].rstrip("%")) for row in rows}
    # The two bottom levels receive the majority of compaction bytes...
    check_shape(write_pct["L3"] + write_pct["L4"] > 40.0, "")
    # ...and serve more storage reads than the mid levels.
    check_shape(read_pct["L3"] + read_pct["L4"] > read_pct["L1"] + read_pct["L2"], "")
    # The memtable serves a meaningful share (the hottest keys).
    check_shape(read_pct["memtable"] > 10.0, "")
