"""Fig. 13 — throughput with DRAM caching disabled.

Paper shape: even with no DRAM cache and even on homogeneous TLC,
PrismDB beats RocksDB, because keeping popular objects in upper levels
reduces read amplification independently of caching.
"""

from conftest import check_shape, run_once

from repro.bench.experiments import fig13_no_cache


def test_fig13(benchmark, report, runner):
    headers, rows = run_once(benchmark, fig13_no_cache, runner)
    report(
        "fig13",
        "Figure 13: throughput with DRAM caching disabled (kops/s)",
        headers,
        rows,
        notes="Paper shape: PrismDB > RocksDB even without any DRAM cache.",
    )
    by_config = {row[0]: (float(row[1]), float(row[2])) for row in rows}
    rocks_het, prism_het = by_config["Het"]
    check_shape(prism_het > rocks_het, "Het must favour PrismDB without caching")
    # On homogeneous TLC our model shows parity rather than the paper's
    # win: PrismDB's read-amplification saving there comes from avoided
    # filter/index I/O, which our table-cache model (resident filters)
    # removes for both systems. Documented in EXPERIMENTS.md.
    rocks_tlc, prism_tlc = by_config["TLC"]
    check_shape(prism_tlc > rocks_tlc * 0.95, "TLC should be near parity or better")
