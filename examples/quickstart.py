#!/usr/bin/env python3
"""Quickstart: a PrismDB over NVM/TLC/QLC in a dozen lines.

Creates the paper's default heterogeneous configuration (NNNTQ: levels
L0-L2 on NVM, L3 on TLC, L4 on QLC), writes and reads a few keys, and
prints what the simulated storage did.

Run:  python examples/quickstart.py
"""

from repro import PrismDB, PrismOptions, options_for_db_size
from repro.common import format_usec

N_KEYS = 20_000
VALUE = b"x" * 100


def main() -> None:
    options = options_for_db_size(N_KEYS * 130)
    db = PrismDB.create("NNNTQ", options, PrismOptions.for_keyspace(N_KEYS))

    print(f"layout: {db.layout.describe()}")
    print(f"storage cost: ${db.layout.total_cost_dollars():.4f}\n")

    # Load some data; writes go WAL -> memtable -> flush -> compaction.
    # Advancing the clock by each op's latency models a single client
    # issuing requests back to back (and lets background I/O drain).
    for i in range(N_KEYS):
        result = db.put(f"user{i:012d}".encode(), VALUE)
        db.clock.advance(result.latency_usec)
    db.flush()
    db.clock.advance(1_000_000)  # let compaction backlogs drain

    # Point reads return the value plus the simulated latency and the
    # LSM level that served them.
    for key in (b"user000000000000", b"user000000019999", b"user000000007777"):
        result = db.get(key)
        print(
            f"get {key.decode()}: found={result.found} "
            f"served_by={result.served_by} latency={format_usec(result.latency_usec)}"
        )

    # Updates and deletes are versioned; readers always see the newest.
    db.put(b"user000000000000", b"updated")
    print(f"\nafter update: {db.get(b'user000000000000').value!r}")
    db.delete(b"user000000000000")
    print(f"after delete: found={db.get(b'user000000000000').found}")

    # Range scans merge the memtable and every level.
    scan = db.scan(b"user000000000100", 3)
    print(f"\nscan from user...100: {[k.decode() for k, _ in scan.items]}")

    # Where did the data end up?
    print("\nlevel summary:")
    for row in db.level_summary():
        print(
            f"  L{row['level']}: {row['files']:4d} files, "
            f"{row['bytes']:>10,} B on {row['tier']}"
        )

    print(f"\ncompactions: {db.executor.stats.compactions}")
    print(f"records pinned by read-aware compaction: {db.executor.stats.records_pinned}")
    print(f"tracker occupancy: {len(db.tracker)}/{db.tracker.capacity}")


if __name__ == "__main__":
    main()
