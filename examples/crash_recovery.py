#!/usr/bin/env python3
"""Scenario: durability — crash, recover, restart.

Shows the engine's durability machinery: the WAL protecting unflushed
writes through a power loss, and the MANIFEST version-edit log enabling
a full process restart that rebuilds the level structure from storage.

Run:  python examples/crash_recovery.py
"""

from repro import LsmDB, options_for_db_size

N_KEYS = 8_000


def main() -> None:
    options = options_for_db_size(N_KEYS * 130)
    db = LsmDB.create("NNNTQ", options)

    print("Loading", N_KEYS, "records...")
    for i in range(N_KEYS):
        result = db.put(f"user{i:09d}".encode(), b"v" * 100)
        db.clock.advance(result.latency_usec)
    db.flush()

    # Some fresh writes that have NOT been flushed: they live only in
    # the memtable and the WAL.
    db.put(b"hot-key-1", b"unflushed-1")
    db.put(b"hot-key-2", b"unflushed-2")
    print("memtable holds", len(db._memtable), "unflushed records")

    print("\n-- simulated power loss --")
    replayed = db.simulate_crash_and_recover()
    print(f"WAL replay restored {replayed} records")
    print("hot-key-1:", db.get(b"hot-key-1").value)
    print("hot-key-2:", db.get(b"hot-key-2").value)

    print("\n-- full process restart (reopen) --")
    files_before = db.manifest.file_count()
    db2 = db.reopen()
    print(f"manifest log rebuilt {db2.manifest.file_count()} files "
          f"(was {files_before})")
    print("caches start cold:", len(db2.cache), "cached blocks")
    print("hot-key-1 after restart:", db2.get(b"hot-key-1").value)
    spot = db2.get(b"user000004321")
    print(f"spot check user...4321: {spot.value!r} served from {spot.served_by}")

    db2.check_invariants()
    print("\nconsistency invariants verified after recovery")

    print("\nfinal state:")
    print(db2.describe())


if __name__ == "__main__":
    main()
