#!/usr/bin/env python3
"""Scenario: capacity planning with the Fig. 4 cost model.

An operator sizing a 223 GB key-value tier wants to know which mix of
Optane / TLC / QLC meets a latency budget at the lowest cost, with every
device provisioned to survive 3 years of the workload's write rate.
This drives the paper's analytic model over all 243 tier assignments and
prints the Pareto frontier plus a recommendation for a given budget.

Run:  python examples/capacity_planning.py [latency_budget_usec]
"""

import sys

from repro.analysis import (
    default_level_profiles,
    enumerate_configs,
    pareto_frontier,
    table3_costs,
)
from repro.common import MIB


def main() -> None:
    latency_budget = float(sys.argv[1]) if len(sys.argv) > 1 else 310.0

    profiles = default_level_profiles(total_write_rate_bps=1 * MIB)
    evaluations = enumerate_configs(profiles)
    frontier = pareto_frontier(evaluations)

    print("Pareto frontier (latency vs cost) for a 223 GB database, 3-year lifetime:\n")
    print(f"{'config':8s} {'avg read (us)':>14s} {'cost':>8s} {'cents/GB':>9s}")
    for evaluation in frontier:
        marker = " <- paper default" if evaluation.code == "NNNTQ" else ""
        print(
            f"{evaluation.code:8s} {evaluation.avg_read_latency_usec:14.1f} "
            f"${evaluation.cost_dollars:7.0f} {evaluation.cost_cents_per_gb:9.1f}{marker}"
        )

    # Cheapest efficient configuration that meets the budget.
    feasible = [e for e in frontier if e.avg_read_latency_usec <= latency_budget]
    print(f"\nLatency budget: {latency_budget:.0f} us")
    if feasible:
        best = min(feasible, key=lambda e: e.cost_dollars)
        print(
            f"Recommendation: {best.code} — {best.avg_read_latency_usec:.0f} us average "
            f"read at ${best.cost_dollars:.0f}"
        )
        for tech, provisioned in sorted(best.provisioned_bytes_by_tech.items()):
            print(f"  {tech}: provision {provisioned / 2**30:.1f} GiB")
    else:
        print("No configuration meets that budget; fastest is NNNNN.")

    print("\nTable 3 reference points:")
    for code, cost in table3_costs().items():
        print(f"  {code}: ${cost:.0f}")


if __name__ == "__main__":
    main()
