#!/usr/bin/env python3
"""Scenario: watching pinned compaction separate hot from cold.

A deep-dive into the paper's mechanism. We build a PrismDB, age it with
a skewed workload, then inspect:

* where the hottest keys physically live (levels/tiers) vs where they
  live under vanilla RocksDB on identical hardware and traffic;
* per-file popularity scores at each level (the SST-selection signal);
* the tracker's CLOCK distribution and the mapper's pin probabilities.

Run:  python examples/tiering_deep_dive.py
"""

from collections import Counter

from repro.bench import SystemConfig, WorkloadRunner, build_system
from repro.common.rng import fnv1a_64
from repro.workloads import YCSBConfig, YCSBWorkload

N_KEYS = 40_000


def age(system: str):
    config = SystemConfig(system=system, layout_code="NNNTQ", cache_fraction=0.05)
    base = YCSBConfig(record_count=N_KEYS, operation_count=1, warmup_operations=120_000)
    workload = YCSBWorkload(base)
    db = build_system(config, workload)
    runner = WorkloadRunner(db)
    runner.load(workload)
    runner.warmup(workload)
    return db, workload


def hot_key_indexes(top: int):
    """The scrambled-zipfian ranks map to these key indexes."""
    return [fnv1a_64(rank.to_bytes(8, "little")) % N_KEYS for rank in range(top)]


def placement(db, workload, indexes):
    where = Counter()
    for index in indexes:
        where[db.get(workload.key(index)).served_by] += 1
    return where


def main() -> None:
    print("Aging RocksDB and PrismDB with 120k ops of zipf-0.99 95/5 traffic...\n")
    rocks, workload = age("rocksdb")
    prism, _ = age("prismdb")

    hot = hot_key_indexes(500)
    print("Placement of the 500 hottest keys (rank 0-499):")
    for name, db in (("RocksDB", rocks), ("PrismDB", prism)):
        spots = placement(db, workload, hot)
        pretty = ", ".join(f"{k}:{v}" for k, v in spots.most_common())
        print(f"  {name:8s} {pretty}")

    print("\nPer-level popularity scores of PrismDB's files (top 3 per level):")
    for level in range(prism.manifest.num_levels):
        files = prism.manifest.files(level)
        scores = sorted((f.popularity_score for f in files), reverse=True)[:3]
        tier = prism.layout.tier_for_level(level).spec.name
        print(f"  L{level} ({tier}): {len(files):4d} files, top scores {[round(s) for s in scores]}")

    print("\nTracker CLOCK distribution (fractions):")
    fractions = prism.mapper.fractions()
    for clock, fraction in enumerate(fractions):
        bar = "#" * int(fraction * 50)
        print(f"  clock {clock}: {fraction * 100:5.1f}% {bar}")

    threshold = prism.prism_options.pinning_threshold
    print(f"\nPin probability per CLOCK value at threshold {threshold:.0%}:")
    for clock in range(3, -1, -1):
        probability = prism.mapper.pin_probability(clock, threshold)
        print(f"  clock {clock}: {probability:.2f}")

    stats = prism.executor.stats
    print(
        f"\npinned {stats.records_pinned} records, pulled up "
        f"{stats.records_pulled_up} from lower tiers; "
        f"{stats.compactions} compactions "
        f"(RocksDB did {rocks.executor.stats.compactions})"
    )


if __name__ == "__main__":
    main()
