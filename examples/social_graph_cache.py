#!/usr/bin/env python3
"""Scenario: a social-graph object store on heterogeneous flash.

The paper's motivation (§1) is datacenter key-value serving — small
objects, highly skewed reads, a trickle of updates — where buying all-NVM
is wasteful and all-QLC is slow. This example models a social-graph edge
store: 50k objects, zipfian reads (users look at popular profiles), 10%
updates, and compares the three systems on the same NNNTQ hardware.

Run:  python examples/social_graph_cache.py
"""

from repro.bench import SystemConfig, WorkloadRunner, build_system
from repro.workloads import YCSBConfig, YCSBWorkload


def run_system(system: str, workload_config: YCSBConfig) -> None:
    config = SystemConfig(system=system, layout_code="NNNTQ", cache_fraction=0.05)
    workload = YCSBWorkload(workload_config)
    db = build_system(config, workload)
    runner = WorkloadRunner(db, clients=config.clients)

    runner.load(workload)
    runner.warmup(workload)
    elapsed = runner.run(workload)
    result = runner.result(system, config, elapsed)

    read = result.read_latency
    print(
        f"{system:>8s}: {result.throughput_kops:7.1f} kops/s | "
        f"read avg {read.mean:6.1f} us, p50 {read.p50:5.1f}, p99 {read.p99:7.1f} | "
        f"cache hit {result.cache_hit_rate * 100:4.1f}% | "
        f"compaction {result.compaction_write_bytes / 2**20:6.1f} MB"
    )
    total = sum(result.reads_by_source.values()) or 1
    placement = ", ".join(
        f"{source}={count / total * 100:.0f}%"
        for source, count in sorted(result.reads_by_source.items())
    )
    print(f"          reads served by: {placement}")


def main() -> None:
    workload_config = YCSBConfig(
        record_count=50_000,
        operation_count=80_000,
        warmup_operations=80_000,
        read_proportion=0.90,
        update_proportion=0.10,
        distribution="zipfian",
        zipf_theta=0.99,
        value_bytes=120,  # a small edge record
    )
    print("Social-graph store: 50k objects, 90/10 read/update, zipf 0.99, NNNTQ hardware\n")
    for system in ("rocksdb", "mutant", "prismdb"):
        run_system(system, workload_config)
    print(
        "\nPrismDB serves more reads from NVM levels and DRAM because pinned"
        "\ncompactions keep popular profiles high in the tree."
    )


if __name__ == "__main__":
    main()
