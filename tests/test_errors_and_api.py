"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigError",
            "StorageError",
            "CapacityError",
            "FileLockedError",
            "EnduranceExceededError",
            "CorruptionError",
            "DBClosedError",
            "CompactionError",
        ):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError), name

    def test_storage_sub_hierarchy(self):
        assert issubclass(errors.CapacityError, errors.StorageError)
        assert issubclass(errors.FileLockedError, errors.StorageError)
        assert issubclass(errors.EnduranceExceededError, errors.StorageError)

    def test_catchall_works(self):
        with pytest.raises(errors.ReproError):
            raise errors.CapacityError("full")


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_headline_symbols_importable(self):
        for name in (
            "PrismDB",
            "PrismOptions",
            "RocksDBLike",
            "MutantDB",
            "LsmDB",
            "DBOptions",
            "options_for_db_size",
            "nnntq_layout",
            "homogeneous_layout",
            "YCSBConfig",
            "YCSBWorkload",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__

    def test_quickstart_from_docstring_works(self):
        from repro import PrismDB, PrismOptions, options_for_db_size

        options = options_for_db_size(20_000 * 130)
        db = PrismDB.create("NNNTQ", options, PrismOptions.for_keyspace(20_000))
        db.put(b"key", b"value")
        assert db.get(b"key").value == b"value"

    def test_subpackages_have_docstrings(self):
        import repro.analysis
        import repro.baselines
        import repro.bench
        import repro.common
        import repro.core
        import repro.lsm
        import repro.storage
        import repro.workloads

        for module in (
            repro,
            repro.analysis,
            repro.baselines,
            repro.bench,
            repro.common,
            repro.core,
            repro.lsm,
            repro.storage,
            repro.workloads,
        ):
            assert module.__doc__, module.__name__

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
