"""Tests for the Mutant baseline."""

import pytest

from repro.common import KIB, seconds
from repro.baselines.mutant import MutantDB, MutantOptions
from repro.baselines.rocksdb import RocksDBLike
from repro.errors import ConfigError
from repro.lsm import DBOptions
from repro.lsm.compaction import CompactDownRouter, LargestFilePicker


def tiny_options(**kwargs):
    defaults = dict(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=16 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


def make_db(**mutant_kwargs):
    return MutantDB.create("NNNTQ", tiny_options(), MutantOptions(**mutant_kwargs))


def populate(db, n=1500):
    for i in range(n):
        db.put(f"key{i:06d}".encode(), b"v" * 40)
    db.flush()


class TestMutantOptions:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MutantOptions(cooling_alpha=0.0)
        with pytest.raises(ConfigError):
            MutantOptions(cooling_alpha=1.0)
        with pytest.raises(ConfigError):
            MutantOptions(epoch_usec=0)

    def test_paper_defaults(self):
        options = MutantOptions()
        assert options.cooling_alpha == 0.999
        assert options.epoch_usec == seconds(1)


class TestRocksDBBaseline:
    def test_uses_classic_policies(self):
        db = RocksDBLike.create("QQQQQ", tiny_options())
        assert isinstance(db.picker, LargestFilePicker)
        assert isinstance(db.router, CompactDownRouter)
        assert db.name == "rocksdb"

    def test_basic_operation(self):
        db = RocksDBLike.create("NNNTQ", tiny_options())
        db.put(b"k", b"v")
        assert db.get(b"k").value == b"v"


class TestTemperatures:
    def test_temperature_accumulates_accesses(self):
        db = make_db()
        populate(db)
        key = b"key000500"
        for _ in range(20):
            db.get(key)
        db.run_optimizer_epoch()
        served = db.get(key)
        assert served.found
        # Some file holding the key got hotter than an untouched one.
        assert max(db._temperatures.values()) > 0

    def test_cooling_decays_temperature(self):
        db = make_db()
        populate(db)
        for _ in range(20):
            db.get(b"key000500")
        db.run_optimizer_epoch()
        hottest_before = max(db._temperatures.values())
        for _ in range(5):
            db.run_optimizer_epoch()  # no accesses in between
        assert max(db._temperatures.values()) < hottest_before

    def test_deleted_files_forgotten(self):
        db = make_db()
        populate(db)
        db.run_optimizer_epoch()
        live = {table.file_id for _, table in db.manifest.all_files()}
        assert set(db._temperatures) <= live


class TestMigration:
    def test_hot_files_move_to_fast_tier(self):
        db = make_db()
        populate(db, 3000)
        # Hammer a narrow key range so its files heat up.
        for _ in range(400):
            db.get(b"key000100")
            db.get(b"key000101")
        db.run_optimizer_epoch()
        hot_table = None
        for _, table in db.manifest.all_files():
            records, _ = table.read_all_records()
            if any(r.user_key == b"key000100" for r in records):
                hot_table = table
        assert hot_table is not None
        assert hot_table.tier.spec.name == "NVM"
        assert db.mutant_stats.migrations > 0

    def test_epoch_triggered_by_clock(self):
        db = make_db(epoch_usec=1000.0)
        populate(db)
        db.clock.advance(5000.0)
        db.get(b"key000001")  # piggybacked epoch check
        assert db.mutant_stats.epochs >= 1

    def test_no_epoch_before_interval(self):
        db = make_db(epoch_usec=seconds(100))
        populate(db)
        db.get(b"key000001")
        assert db.mutant_stats.epochs == 0

    def test_migration_limit_respected(self):
        db = make_db(max_migrations_per_epoch=1)
        populate(db, 3000)
        for i in range(300):
            db.get(f"key{i % 10:06d}".encode())
        migrations = db.run_optimizer_epoch()
        assert migrations <= 1

    def test_placement_respects_nominal_budget(self):
        db = make_db()
        populate(db, 3000)
        for i in range(500):
            db.get(f"key{i % 200:06d}".encode())
        db.run_optimizer_epoch()
        nvm = db.layout.tier_for_level(0)
        assert nvm.used_bytes <= nvm.capacity_bytes  # within headroom

    def test_data_intact_after_migrations(self):
        db = make_db()
        populate(db, 2000)
        for i in range(300):
            db.get(f"key{i % 50:06d}".encode())
        db.run_optimizer_epoch()
        db.run_optimizer_epoch()
        for i in range(0, 2000, 97):
            assert db.get(f"key{i:06d}".encode()).found
        db.check_invariants()
