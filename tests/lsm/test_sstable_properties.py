"""Property-based tests of the SSTable build/read pipeline."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import KIB, MIB, SimClock
from repro.lsm.block_cache import BlockCache
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTableBuilder
from repro.storage import QLC_SPEC, StorageBackend, StorageTier


def build(records, block_bytes=512):
    clock = SimClock()
    backend = StorageBackend(clock)
    tier = StorageTier("qlc", QLC_SPEC, 64 * MIB, clock)
    builder = SSTableBuilder(backend, tier, block_bytes=block_bytes, target_file_bytes=1 << 30)
    for record in records:
        builder.add(record)
    table, _ = builder.finish()
    return table, BlockCache(64 * KIB)


unique_keys = st.lists(
    st.binary(min_size=1, max_size=24), min_size=1, max_size=120, unique=True
)


class TestSSTableProperties:
    @given(unique_keys, st.binary(max_size=64))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_written_key_is_readable(self, keys, value):
        records = [
            Record(key, seqno + 1, ValueKind.PUT, value)
            for seqno, key in enumerate(sorted(keys))
        ]
        table, cache = build(records)
        for record in records:
            hit, _, filtered = table.get(record.user_key, cache)
            assert hit == record
            assert not filtered

    @given(unique_keys)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_full_scan_returns_exact_input(self, keys):
        records = [
            Record(key, seqno + 1, ValueKind.PUT, b"v")
            for seqno, key in enumerate(sorted(keys))
        ]
        table, _ = build(records)
        read_back, _ = table.read_all_records()
        assert read_back == records

    @given(unique_keys, st.binary(min_size=1, max_size=24))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_iter_from_matches_sorted_filter(self, keys, probe):
        records = [
            Record(key, seqno + 1, ValueKind.PUT, b"v")
            for seqno, key in enumerate(sorted(keys))
        ]
        table, cache = build(records)
        got = [record.user_key for record, _ in table.iter_from(probe, cache)]
        expected = [key for key in sorted(keys) if key >= probe]
        assert got == expected

    @given(unique_keys)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_metadata_boundaries(self, keys):
        ordered = sorted(keys)
        records = [
            Record(key, seqno + 1, ValueKind.PUT, b"v")
            for seqno, key in enumerate(ordered)
        ]
        table, _ = build(records)
        assert table.smallest_key == ordered[0]
        assert table.largest_key == ordered[-1]
        assert table.entry_count == len(ordered)

    @given(st.integers(min_value=128, max_value=4096))
    @settings(max_examples=15, deadline=None)
    def test_block_size_does_not_change_results(self, block_bytes):
        keys = [f"key{i:05d}".encode() for i in range(60)]
        records = [Record(key, i + 1, ValueKind.PUT, b"v" * 20) for i, key in enumerate(keys)]
        table, cache = build(records, block_bytes=block_bytes)
        for record in records[::7]:
            hit, _, _ = table.get(record.user_key, cache)
            assert hit == record

    def test_latency_reflects_tier_device(self):
        records = [Record(f"k{i:04d}".encode(), i + 1, ValueKind.PUT, b"v" * 40) for i in range(100)]
        table, cache = build(records)
        _, cold_latency, _ = table.get(b"k0050", cache)
        # First data access pays at least one QLC random read.
        assert cold_latency >= QLC_SPEC.read_latency_usec
