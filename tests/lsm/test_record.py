"""Tests for record encoding and internal-key ordering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.record import MAX_SEQNO, Record, ValueKind

keys = st.binary(min_size=1, max_size=64)
values = st.binary(max_size=256)
seqnos = st.integers(min_value=0, max_value=MAX_SEQNO)


class TestRecord:
    def test_round_trip(self):
        record = Record(b"key", 7, ValueKind.PUT, b"value")
        decoded, end = Record.decode_from(record.encode(), 0)
        assert decoded == record
        assert end == record.encoded_size()

    def test_tombstone_flag(self):
        assert Record(b"k", 1, ValueKind.DELETE).is_tombstone
        assert not Record(b"k", 1, ValueKind.PUT, b"v").is_tombstone

    def test_rejects_bad_seqno(self):
        with pytest.raises(ValueError):
            Record(b"k", -1, ValueKind.PUT)
        with pytest.raises(ValueError):
            Record(b"k", MAX_SEQNO + 1, ValueKind.PUT)

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            Record(b"k" * 70_000, 1, ValueKind.PUT)

    def test_decode_truncated_header_fails(self):
        with pytest.raises(CorruptionError):
            Record.decode_from(b"\x01\x02", 0)

    def test_decode_truncated_body_fails(self):
        encoded = Record(b"key", 1, ValueKind.PUT, b"value").encode()
        with pytest.raises(CorruptionError):
            Record.decode_from(encoded[:-2], 0)

    def test_decode_bad_kind_fails(self):
        encoded = bytearray(Record(b"key", 1, ValueKind.PUT, b"v").encode())
        encoded[6] = 99  # the kind byte in the header
        with pytest.raises(CorruptionError):
            Record.decode_from(bytes(encoded), 0)

    def test_multiple_records_decode_sequentially(self):
        a = Record(b"a", 1, ValueKind.PUT, b"1")
        b = Record(b"b", 2, ValueKind.DELETE)
        buf = a.encode() + b.encode()
        first, offset = Record.decode_from(buf, 0)
        second, end = Record.decode_from(buf, offset)
        assert first == a
        assert second == b
        assert end == len(buf)

    @given(keys, seqnos, values)
    def test_round_trip_property(self, key, seqno, value):
        record = Record(key, seqno, ValueKind.PUT, value)
        decoded, _ = Record.decode_from(record.encode(), 0)
        assert decoded == record


class TestInternalOrdering:
    def test_keys_sort_ascending(self):
        a = Record(b"a", 1, ValueKind.PUT)
        b = Record(b"b", 1, ValueKind.PUT)
        assert a.internal_sort_key() < b.internal_sort_key()

    def test_same_key_newer_seqno_sorts_first(self):
        older = Record(b"k", 5, ValueKind.PUT)
        newer = Record(b"k", 9, ValueKind.PUT)
        assert newer.internal_sort_key() < older.internal_sort_key()

    @given(keys, seqnos, seqnos)
    def test_newest_first_property(self, key, s1, s2):
        r1 = Record(key, s1, ValueKind.PUT)
        r2 = Record(key, s2, ValueKind.PUT)
        if s1 > s2:
            assert r1.internal_sort_key() < r2.internal_sort_key()
        elif s1 < s2:
            assert r2.internal_sort_key() < r1.internal_sort_key()
        else:
            assert r1.internal_sort_key() == r2.internal_sort_key()
