"""Cross-layout tests: trees with different depths and tier mixes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import KIB, SimClock
from repro.lsm import DBOptions, LsmDB, build_layout
from repro.core import PrismDB, PrismOptions


def options_for_levels(num_levels, **kwargs):
    # Size L1 so the bottom level's target comfortably holds the test
    # data set regardless of tree depth.
    multiplier = kwargs.get("level_size_multiplier", 4)
    bottom_target = 96 * KIB
    level1 = max(2 * KIB, bottom_target // multiplier ** (num_levels - 2))
    defaults = dict(
        num_levels=num_levels,
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=level1,
        level_size_multiplier=multiplier,
        block_bytes=512,
        block_cache_bytes=8 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


def populate_and_verify(db, n=1200):
    for i in range(n):
        db.put(f"key{i:05d}".encode(), b"v" * 30)
    db.flush()
    db.check_invariants()
    for i in range(0, n, 97):
        assert db.get(f"key{i:05d}".encode()).found
    return db


class TestTreeDepths:
    @pytest.mark.parametrize("num_levels,code", [(2, "NQ"), (3, "NTQ"), (4, "NNTQ"), (7, "NNNTTQQ")])
    def test_lsm_works_at_any_depth(self, num_levels, code):
        options = options_for_levels(num_levels)
        clock = SimClock()
        layout = build_layout(code, options, clock)
        db = LsmDB(layout, options, clock=clock)
        populate_and_verify(db)

    def test_two_level_tree_compacts_to_bottom(self):
        options = options_for_levels(2)
        clock = SimClock()
        db = LsmDB(build_layout("NQ", options, clock), options, clock=clock)
        populate_and_verify(db)
        assert db.manifest.level_bytes(1) > 0

    def test_prismdb_on_three_level_tree(self):
        options = options_for_levels(3)
        clock = SimClock()
        layout = build_layout("NTQ", options, clock)
        db = PrismDB(
            layout,
            options,
            PrismOptions(tracker_capacity=32, require_full_tracker=False, pinning_threshold=0.5),
            clock=clock,
        )
        populate_and_verify(db)
        # Read some keys hot, then churn to trigger pinned compactions.
        import random

        rng = random.Random(4)
        for _ in range(2500):
            if rng.random() < 0.3:
                db.put(f"key{rng.randrange(1200):05d}".encode(), b"w" * 30)
            else:
                db.get(f"key{rng.randrange(40):05d}".encode())
        db.check_invariants()


class TestTierMixes:
    @pytest.mark.parametrize("code", ["QQQQQ", "TTTTT", "NNNNN", "NTTQQ", "NNTTQ", "NQQQQ"])
    def test_any_tier_assignment_works(self, code):
        options = options_for_levels(5)
        clock = SimClock()
        db = LsmDB(build_layout(code, options, clock), options, clock=clock)
        populate_and_verify(db, 800)

    def test_inverted_layout_is_allowed_but_slow(self):
        # QNNNN puts the slowest device on top: legal (Fig. 4 enumerates
        # it), just off the Pareto frontier.
        options = options_for_levels(5)
        clock = SimClock()
        slow_top = LsmDB(build_layout("QNNNN", options, clock), options, clock=clock)
        populate_and_verify(slow_top, 800)

    def test_faster_bottom_reads_faster(self):
        options = options_for_levels(3)

        def avg_read(code):
            clock = SimClock()
            db = LsmDB(build_layout(code, options, clock), options, clock=clock)
            for i in range(800):
                db.put(f"key{i:05d}".encode(), b"v" * 30)
            db.flush()
            total = 0.0
            for i in range(0, 800, 7):
                total += db.get(f"key{i:05d}".encode()).latency_usec
            return total

        assert avg_read("NNN") < avg_read("QQQ")


class TestOptionsProperties:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_level_targets_monotone(self, num_levels, multiplier):
        options = DBOptions(
            num_levels=num_levels,
            level_size_multiplier=multiplier,
            level1_target_bytes=64 * KIB,
        )
        targets = [options.level_target_bytes(level) for level in range(1, num_levels)]
        assert targets == sorted(targets)
        for a, b in zip(targets, targets[1:]):
            assert b == a * multiplier
