"""Tests for data block building, decoding and search."""

import pytest

from repro.errors import CorruptionError
from repro.lsm.block import DataBlock, DataBlockBuilder, decode_block, search_block
from repro.lsm.record import Record, ValueKind


def put(key, seqno, value=b"v"):
    return Record(key, seqno, ValueKind.PUT, value)


class TestDataBlockBuilder:
    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            DataBlockBuilder(0)

    def test_round_trip(self):
        builder = DataBlockBuilder(4096)
        records = [put(b"a", 3), put(b"b", 2), put(b"c", 1)]
        for record in records:
            builder.add(record)
        assert decode_block(builder.finish()) == records

    def test_rejects_out_of_order_keys(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"b", 1))
        with pytest.raises(ValueError):
            builder.add(put(b"a", 2))

    def test_rejects_duplicate_internal_key(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 1))
        with pytest.raises(ValueError):
            builder.add(put(b"a", 1))

    def test_same_key_descending_seqno_allowed(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 5))
        builder.add(put(b"a", 3))  # older version after newer: valid internal order
        records = decode_block(builder.finish())
        assert [r.seqno for r in records] == [5, 3]

    def test_is_full_threshold(self):
        builder = DataBlockBuilder(64)
        builder.add(put(b"key1", 1, b"x" * 64))
        assert builder.is_full()

    def test_finish_resets(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 1))
        builder.finish()
        assert len(builder) == 0
        assert builder.first_key is None

    def test_first_last_key(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 2))
        builder.add(put(b"b", 1))
        assert builder.first_key == b"a"
        assert builder.last_key == b"b"


class TestDecodeBlock:
    def test_truncated_fails(self):
        with pytest.raises(CorruptionError):
            decode_block(b"\x01")

    def test_trailing_garbage_fails(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 1))
        payload = builder.finish() + b"junk"
        with pytest.raises(CorruptionError):
            decode_block(payload)

    def test_empty_block(self):
        builder = DataBlockBuilder(4096)
        assert decode_block(builder.finish()) == []


class TestSearchBlock:
    def _records(self):
        return [put(b"b", 9), put(b"b", 4), put(b"d", 2), put(b"f", 7)]

    def test_finds_existing_key(self):
        assert search_block(self._records(), b"d").seqno == 2

    def test_returns_newest_version(self):
        assert search_block(self._records(), b"b").seqno == 9

    def test_absent_key_between(self):
        assert search_block(self._records(), b"c") is None

    def test_absent_key_before_and_after(self):
        assert search_block(self._records(), b"a") is None
        assert search_block(self._records(), b"z") is None

    def test_empty_block_returns_none(self):
        assert search_block([], b"a") is None


class TestDataBlock:
    """The lazy decoded-side handle over the restart-trailer format."""

    def _build(self, n=8):
        builder = DataBlockBuilder(1 << 20)
        records = [put(f"key{i:03d}".encode(), i + 1, b"v" * 20) for i in range(n)]
        for record in records:
            builder.add(record)
        return records, builder.finish()

    def test_estimated_bytes_matches_encoding_exactly(self):
        for count in (0, 1, 7):
            builder = DataBlockBuilder(1 << 20)
            for i in range(count):
                builder.add(put(f"k{i}".encode(), i + 1))
            estimate = builder.estimated_bytes
            assert estimate == len(builder.finish())

    def test_trailer_parse_exposes_offsets(self):
        records, buf = self._build(4)
        block = DataBlock(buf)
        assert len(block) == 4
        assert block.offsets[0] == 0
        sizes = [record.encoded_size() for record in records]
        assert list(block.offsets) == [sum(sizes[:i]) for i in range(4)]

    def test_search_matches_full_decode_search(self):
        records, buf = self._build(8)
        for record in records:
            assert DataBlock(buf).search(record.user_key) == search_block(
                decode_block(buf), record.user_key
            )
        assert DataBlock(buf).search(b"key999") is None
        assert DataBlock(buf).search(b"aaa") is None

    def test_search_decodes_only_the_candidate(self):
        # Corrupt the *last* record's kind byte: a point search for an
        # earlier key must still succeed (it never decodes the corrupt
        # record; key peeks don't touch the kind byte), while a search
        # that lands on it — and any full decode — must raise.
        records, buf = self._build(8)
        block = DataBlock(buf)
        corrupt = bytearray(buf)
        corrupt[block.offsets[-1] + 6] = 0x7F  # kind byte offset in header
        corrupt = bytes(corrupt)
        assert DataBlock(corrupt).search(b"key000") == records[0]
        with pytest.raises(CorruptionError):
            DataBlock(corrupt).search(records[-1].user_key)
        with pytest.raises(CorruptionError):
            decode_block(corrupt)

    def test_records_are_memoized(self):
        _, buf = self._build(4)
        block = DataBlock(buf)
        assert block.records() is block.records()

    def test_search_uses_materialized_records_when_present(self):
        records, buf = self._build(8)
        block = DataBlock(buf)
        block.records()
        for record in records:
            assert block.search(record.user_key) == record

    def test_bad_restart_offsets_detected(self):
        _, buf = self._build(4)
        # Truncate mid-trailer: count still claims 4 records.
        with pytest.raises(CorruptionError):
            DataBlock(buf[:10] + buf[-2:])

    def test_search_newest_version_wins(self):
        builder = DataBlockBuilder(1 << 20)
        builder.add(put(b"dup", 9, b"new"))
        builder.add(put(b"dup", 3, b"old"))
        block = DataBlock(builder.finish())
        assert block.search(b"dup").value == b"new"
