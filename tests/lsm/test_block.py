"""Tests for data block building, decoding and search."""

import pytest

from repro.errors import CorruptionError
from repro.lsm.block import DataBlockBuilder, decode_block, search_block
from repro.lsm.record import Record, ValueKind


def put(key, seqno, value=b"v"):
    return Record(key, seqno, ValueKind.PUT, value)


class TestDataBlockBuilder:
    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            DataBlockBuilder(0)

    def test_round_trip(self):
        builder = DataBlockBuilder(4096)
        records = [put(b"a", 3), put(b"b", 2), put(b"c", 1)]
        for record in records:
            builder.add(record)
        assert decode_block(builder.finish()) == records

    def test_rejects_out_of_order_keys(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"b", 1))
        with pytest.raises(ValueError):
            builder.add(put(b"a", 2))

    def test_rejects_duplicate_internal_key(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 1))
        with pytest.raises(ValueError):
            builder.add(put(b"a", 1))

    def test_same_key_descending_seqno_allowed(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 5))
        builder.add(put(b"a", 3))  # older version after newer: valid internal order
        records = decode_block(builder.finish())
        assert [r.seqno for r in records] == [5, 3]

    def test_is_full_threshold(self):
        builder = DataBlockBuilder(64)
        builder.add(put(b"key1", 1, b"x" * 64))
        assert builder.is_full()

    def test_finish_resets(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 1))
        builder.finish()
        assert len(builder) == 0
        assert builder.first_key is None

    def test_first_last_key(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 2))
        builder.add(put(b"b", 1))
        assert builder.first_key == b"a"
        assert builder.last_key == b"b"


class TestDecodeBlock:
    def test_truncated_fails(self):
        with pytest.raises(CorruptionError):
            decode_block(b"\x01")

    def test_trailing_garbage_fails(self):
        builder = DataBlockBuilder(4096)
        builder.add(put(b"a", 1))
        payload = builder.finish() + b"junk"
        with pytest.raises(CorruptionError):
            decode_block(payload)

    def test_empty_block(self):
        builder = DataBlockBuilder(4096)
        assert decode_block(builder.finish()) == []


class TestSearchBlock:
    def _records(self):
        return [put(b"b", 9), put(b"b", 4), put(b"d", 2), put(b"f", 7)]

    def test_finds_existing_key(self):
        assert search_block(self._records(), b"d").seqno == 2

    def test_returns_newest_version(self):
        assert search_block(self._records(), b"b").seqno == 9

    def test_absent_key_between(self):
        assert search_block(self._records(), b"c") is None

    def test_absent_key_before_and_after(self):
        assert search_block(self._records(), b"a") is None
        assert search_block(self._records(), b"z") is None

    def test_empty_block_returns_none(self):
        assert search_block([], b"a") is None
