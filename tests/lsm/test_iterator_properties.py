"""Property tests for the merging iterators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.iterators import merge_records, newest_versions, visible_records
from repro.lsm.record import Record, ValueKind


@st.composite
def sorted_sources(draw):
    """A handful of sources, each in internal-key order, unique seqnos."""
    n_records = draw(st.integers(min_value=0, max_value=60))
    keys = draw(
        st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=12)
    )
    records = []
    for seqno in range(1, n_records + 1):
        key = draw(st.sampled_from(keys))
        kind = draw(st.sampled_from([ValueKind.PUT, ValueKind.PUT, ValueKind.DELETE]))
        records.append(Record(key, seqno, kind, bytes([seqno % 256])))
    n_sources = draw(st.integers(min_value=1, max_value=5))
    sources = [[] for _ in range(n_sources)]
    for record in records:
        sources[draw(st.integers(0, n_sources - 1))].append(record)
    return [sorted(source, key=lambda r: r.internal_sort_key()) for source in sources]


class TestMergeProperties:
    @given(sorted_sources())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_sorted_and_lossless(self, sources):
        merged = list(merge_records(sources))
        assert len(merged) == sum(len(s) for s in sources)
        keys = [r.internal_sort_key() for r in merged]
        assert keys == sorted(keys)

    @given(sorted_sources())
    @settings(max_examples=60, deadline=None)
    def test_newest_versions_picks_global_max_seqno(self, sources):
        deduped = list(newest_versions(merge_records(sources)))
        expected = {}
        for source in sources:
            for record in source:
                prev = expected.get(record.user_key)
                if prev is None or record.seqno > prev.seqno:
                    expected[record.user_key] = record
        assert {r.user_key: r for r in deduped} == expected
        # One record per key, in key order.
        keys = [r.user_key for r in deduped]
        assert keys == sorted(set(keys))

    @given(sorted_sources())
    @settings(max_examples=60, deadline=None)
    def test_visible_records_equal_model_dict(self, sources):
        visible = {r.user_key: r.value for r in visible_records(merge_records(sources))}
        model = {}
        all_records = sorted(
            (r for source in sources for r in source), key=lambda r: r.seqno
        )
        for record in all_records:  # apply in commit order
            if record.is_tombstone:
                model.pop(record.user_key, None)
            else:
                model[record.user_key] = record.value
        # visible_records shows the newest PUT unless shadowed by a newer
        # DELETE — i.e., exactly the committed state.
        assert visible == model
