"""Tests for SSTable build and read paths."""

import pytest

from repro.common import KIB, MIB, SimClock
from repro.lsm.block_cache import BlockCache, BlockType
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import (
    UNTRACKED_CLOCK_VALUE,
    IndexEntry,
    SSTableBuilder,
    decode_index,
    encode_index,
)
from repro.storage import NVM_SPEC, StorageBackend, StorageTier


def put(key, seqno, value=b"v" * 50):
    return Record(key, seqno, ValueKind.PUT, value)


def make_env():
    clock = SimClock()
    backend = StorageBackend(clock)
    tier = StorageTier("nvm", NVM_SPEC, 64 * MIB, clock)
    cache = BlockCache(256 * KIB)
    return backend, tier, cache


def build_table(backend, tier, records, **kwargs):
    defaults = dict(block_bytes=512, target_file_bytes=16 * KIB)
    defaults.update(kwargs)
    builder = SSTableBuilder(backend, tier, **defaults)
    for record in records:
        builder.add(record)
    table, _ = builder.finish()
    return table


class TestIndexCodec:
    def test_round_trip(self):
        entries = [IndexEntry(b"abc", 0, 100), IndexEntry(b"xyz", 100, 250)]
        assert decode_index(encode_index(entries)) == entries

    def test_empty_index(self):
        assert decode_index(encode_index([])) == []


class TestSSTableBuild:
    def test_metadata(self):
        backend, tier, _ = make_env()
        records = [put(f"k{i:04d}".encode(), i + 1) for i in range(100)]
        table = build_table(backend, tier, records)
        assert table.smallest_key == b"k0000"
        assert table.largest_key == b"k0099"
        assert table.entry_count == 100
        assert table.tombstone_count == 0
        assert table.size_bytes == table.file.size

    def test_empty_finish_rejected(self):
        backend, tier, _ = make_env()
        builder = SSTableBuilder(backend, tier, block_bytes=512, target_file_bytes=4096)
        with pytest.raises(ValueError):
            builder.finish()

    def test_tombstones_counted(self):
        backend, tier, _ = make_env()
        records = [put(b"a", 2), Record(b"b", 1, ValueKind.DELETE)]
        table = build_table(backend, tier, records)
        assert table.tombstone_count == 1

    def test_should_finish_at_target(self):
        backend, tier, _ = make_env()
        builder = SSTableBuilder(backend, tier, block_bytes=512, target_file_bytes=1024)
        i = 0
        while not builder.should_finish():
            builder.add(put(f"k{i:06d}".encode(), i + 1))
            i += 1
        assert builder.estimated_bytes >= 1024

    def test_popularity_score_from_clock_values(self):
        backend, tier, _ = make_env()
        clock_values = {b"hot": 3, b"warm": 2}

        def clock_fn(key):
            return clock_values.get(key, UNTRACKED_CLOCK_VALUE)

        records = [put(b"cold", 1), put(b"hot", 2), put(b"warm", 3)]
        table = build_table(backend, tier, records, clock_value_fn=clock_fn, score_exponent=3)
        # (-1)^3 + 3^3 + 2^3 = -1 + 27 + 8 = 34
        assert table.popularity_score == pytest.approx(34.0)

    def test_score_zero_without_tracker(self):
        backend, tier, _ = make_env()
        table = build_table(backend, tier, [put(b"a", 1)])
        assert table.popularity_score == 0.0


class TestSSTableRead:
    def setup_method(self):
        self.backend, self.tier, self.cache = make_env()
        self.records = [put(f"k{i:04d}".encode(), i + 1, b"x" * 60) for i in range(200)]
        self.table = build_table(self.backend, self.tier, self.records)

    def test_get_every_key(self):
        for record in self.records:
            hit, latency, filtered = self.table.get(record.user_key, self.cache)
            assert hit == record
            assert latency > 0
            assert not filtered

    def test_get_absent_key_is_usually_filtered(self):
        filtered_count = 0
        for i in range(100):
            hit, _, filtered = self.table.get(f"absent{i}".encode(), self.cache)
            assert hit is None
            filtered_count += filtered
        assert filtered_count > 90  # bloom catches nearly all

    def test_cached_get_is_cheaper(self):
        key = self.records[50].user_key
        _, cold, _ = self.table.get(key, self.cache)
        _, warm, _ = self.table.get(key, self.cache)
        assert warm < cold

    def test_cache_counts_filter_index_data(self):
        # A freshly built table has its filter and index resident in
        # table memory (like RocksDB's table cache), so those accesses
        # count as hits; the data block is a genuine miss.
        self.table.get(self.records[0].user_key, self.cache)
        assert self.cache.stats.hits.get(BlockType.FILTER) == 1
        assert self.cache.stats.hits.get(BlockType.INDEX) == 1
        assert self.cache.stats.misses.get(BlockType.DATA) == 1

    def test_filter_loaded_from_device_once_when_not_resident(self):
        # Simulate a reopened table: drop the resident copies.
        self.table._bloom = None
        self.table._index = None
        self.table._index_keys = None
        self.table.get(self.records[0].user_key, self.cache)
        assert self.cache.stats.misses.get(BlockType.FILTER) == 1
        assert self.cache.stats.misses.get(BlockType.INDEX) == 1
        # Second access is served from table memory.
        self.table.get(self.records[1].user_key, self.cache)
        assert self.cache.stats.misses.get(BlockType.FILTER) == 1
        assert self.cache.stats.hits.get(BlockType.FILTER) == 1

    def test_overlaps(self):
        assert self.table.overlaps(b"k0050", b"k0060")
        assert self.table.overlaps(b"a", b"z")
        assert not self.table.overlaps(b"l", b"z")
        assert not self.table.overlaps(b"a", b"b")

    def test_iter_from(self):
        items = []
        for record, _ in self.table.iter_from(b"k0190", self.cache):
            items.append(record.user_key)
        assert items == [f"k{i:04d}".encode() for i in range(190, 200)]

    def test_iter_from_start(self):
        count = sum(1 for _ in self.table.iter_from(b"", self.cache))
        assert count == 200

    def test_read_all_records(self):
        records, latency = self.table.read_all_records()
        assert records == self.records
        assert latency >= 0

    def test_multiple_versions_newest_wins(self):
        backend, tier, cache = make_env()
        records = [put(b"k", 9, b"new"), put(b"k", 3, b"old")]
        table = build_table(backend, tier, records)
        hit, _, _ = table.get(b"k", cache)
        assert hit.value == b"new"
        assert hit.seqno == 9
