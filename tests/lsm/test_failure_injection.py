"""Failure injection: corruption, capacity exhaustion, and lock stalls.

These tests flip bits in on-"disk" structures and drive the engine into
resource-exhaustion corners, asserting that failures surface as typed
errors instead of silent wrong answers.
"""

import pytest

from repro.common import KIB, MIB, SimClock
from repro.errors import CapacityError, CorruptionError
from repro.lsm.block import decode_block
from repro.lsm.block_cache import BlockCache
from repro.lsm.bloom import BloomFilter
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTable, SSTableBuilder, decode_index
from repro.storage import NVM_SPEC, StorageBackend, StorageTier


def build_table(n=50):
    clock = SimClock()
    backend = StorageBackend(clock)
    tier = StorageTier("nvm", NVM_SPEC, 64 * MIB, clock)
    builder = SSTableBuilder(backend, tier, block_bytes=512, target_file_bytes=1 << 30)
    for i in range(n):
        builder.add(Record(f"key{i:04d}".encode(), i + 1, ValueKind.PUT, b"v" * 30))
    table, _ = builder.finish()
    return backend, table


def corrupt(data: bytes, offset: int, new_byte: int) -> bytes:
    mutated = bytearray(data)
    mutated[offset] = new_byte
    return bytes(mutated)


class TestSSTableCorruption:
    def test_bad_footer_magic_detected_on_open(self):
        backend, table = build_table()
        file = table.file
        file.data = corrupt(file.data, len(file.data) - 1, 0x00)
        with pytest.raises(CorruptionError):
            SSTable.open(backend, file)

    def test_truncated_file_detected_on_open(self):
        backend, table = build_table()
        file = table.file
        file.data = file.data[:4]
        with pytest.raises(CorruptionError):
            SSTable.open(backend, file)

    def test_footer_claiming_impossible_sizes_detected(self):
        backend, table = build_table()
        file = table.file
        # Inflate the smallest-key length in the footer tail beyond the file.
        tail_offset = len(file.data) - 8  # smallest_len field of the tail
        file.data = corrupt(file.data, tail_offset, 0xFF)
        file.data = corrupt(file.data, tail_offset + 1, 0xFF)
        with pytest.raises(CorruptionError):
            SSTable.open(backend, file)

    def test_corrupt_data_block_detected_on_decode(self):
        backend, table = build_table()
        # Destroy the kind byte of the first record in the first block
        # (header layout: key_len u16, value_len u32, kind u8, seqno u64).
        payload = bytearray(table.file.data)
        payload[6] = 0x7F
        table.file.data = bytes(payload)
        cache = BlockCache(64 * KIB)
        with pytest.raises(CorruptionError):
            table.get(b"key0000", cache)

    def test_reopened_table_reads_clean_data(self):
        backend, table = build_table()
        reopened = SSTable.open(backend, table.file)
        cache = BlockCache(64 * KIB)
        hit, _, _ = reopened.get(b"key0007", cache)
        assert hit is not None
        assert hit.value == b"v" * 30


class TestCodecCorruption:
    def test_bloom_truncation(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add(b"x")
        with pytest.raises(CorruptionError):
            BloomFilter.decode(bloom.encode()[:2])

    def test_index_truncation(self):
        from repro.lsm.sstable import IndexEntry, encode_index

        payload = encode_index([IndexEntry(b"abc", 0, 10)])
        with pytest.raises(CorruptionError):
            decode_index(payload[:-2])

    def test_block_record_kind_corruption(self):
        from repro.lsm.block import DataBlockBuilder

        builder = DataBlockBuilder(4096)
        builder.add(Record(b"k", 1, ValueKind.PUT, b"v"))
        payload = bytearray(builder.finish())
        payload[6] = 0x7F  # the kind byte of the first record
        with pytest.raises(CorruptionError):
            decode_block(bytes(payload))


class TestResourceExhaustion:
    def test_tier_capacity_error_is_typed(self):
        clock = SimClock()
        backend = StorageBackend(clock)
        tiny = StorageTier("tiny", NVM_SPEC, 1024, clock, slack_factor=1.0)
        with pytest.raises(CapacityError):
            backend.create_file(tiny, b"x" * 4096)

    def test_db_survives_value_larger_than_block(self):
        from repro.lsm import DBOptions, LsmDB

        options = DBOptions(
            memtable_bytes=8 * KIB,
            target_file_bytes=8 * KIB,
            level1_target_bytes=16 * KIB,
            level_size_multiplier=4,
            block_bytes=512,
        )
        db = LsmDB.create("NNNTQ", options)
        big_value = b"x" * 2048  # 4x the block size
        db.put(b"big", big_value)
        db.flush()
        assert db.get(b"big").value == big_value

    def test_many_tiny_keys_roll_files_correctly(self):
        from repro.lsm import DBOptions, LsmDB

        options = DBOptions(
            memtable_bytes=1 * KIB,
            target_file_bytes=1 * KIB,
            level1_target_bytes=2 * KIB,
            level_size_multiplier=4,
            block_bytes=256,
        )
        db = LsmDB.create("NNNTQ", options)
        for i in range(2000):
            db.put(f"{i:06d}".encode(), b"x")
        db.flush()
        db.check_invariants()
        for i in range(0, 2000, 173):
            assert db.get(f"{i:06d}".encode()).found


class TestMigrationLockStalls:
    def test_reads_stall_during_migration_and_recover_after(self):
        clock = SimClock()
        backend = StorageBackend(clock)
        nvm = StorageTier("nvm", NVM_SPEC, 64 * MIB, clock)
        from repro.storage import QLC_SPEC

        qlc = StorageTier("qlc", QLC_SPEC, 64 * MIB, clock)
        file, _ = backend.create_file(nvm, b"z" * MIB)
        lock = backend.migrate_file(file, qlc)
        _, stalled = backend.read(file, 0, 4096)
        assert stalled > lock  # waits out the lock
        assert backend.stats.lock_stalls == 1
        clock.advance(lock * 10)
        _, later = backend.read(file, 0, 4096)
        assert later < stalled
