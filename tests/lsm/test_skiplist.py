"""Tests for the skiplist."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lsm.skiplist import SkipList


class TestSkipList:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert sl.get(b"x") is None
        assert sl.first_key() is None
        assert sl.last_key() is None
        assert list(sl.items()) == []

    def test_insert_and_get(self):
        sl = SkipList()
        sl.insert(b"b", 2)
        sl.insert(b"a", 1)
        sl.insert(b"c", 3)
        assert sl.get(b"a") == 1
        assert sl.get(b"b") == 2
        assert sl.get(b"c") == 3
        assert len(sl) == 3

    def test_overwrite_does_not_grow(self):
        sl = SkipList()
        sl.insert(b"k", 1)
        sl.insert(b"k", 2)
        assert len(sl) == 1
        assert sl.get(b"k") == 2

    def test_contains(self):
        sl = SkipList()
        sl.insert(b"k", None)  # value None is still present
        assert b"k" in sl
        assert b"other" not in sl

    def test_items_sorted(self):
        sl = SkipList()
        for key in [b"d", b"a", b"c", b"b"]:
            sl.insert(key, key)
        assert [k for k, _ in sl.items()] == [b"a", b"b", b"c", b"d"]

    def test_first_and_last(self):
        sl = SkipList()
        for key in [b"m", b"a", b"z"]:
            sl.insert(key, 0)
        assert sl.first_key() == b"a"
        assert sl.last_key() == b"z"

    def test_seek_ceiling_exact(self):
        sl = SkipList()
        for key in [b"a", b"c", b"e"]:
            sl.insert(key, 0)
        assert [k for k, _ in sl.seek_ceiling(b"c")] == [b"c", b"e"]

    def test_seek_ceiling_between_keys(self):
        sl = SkipList()
        for key in [b"a", b"c", b"e"]:
            sl.insert(key, 0)
        assert [k for k, _ in sl.seek_ceiling(b"b")] == [b"c", b"e"]

    def test_seek_ceiling_past_end(self):
        sl = SkipList()
        sl.insert(b"a", 0)
        assert list(sl.seek_ceiling(b"z")) == []

    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=8), st.integers()), max_size=200))
    def test_behaves_like_sorted_dict(self, pairs):
        sl = SkipList(seed=1)
        model: dict[bytes, int] = {}
        for key, value in pairs:
            sl.insert(key, value)
            model[key] = value
        assert len(sl) == len(model)
        assert [k for k, _ in sl.items()] == sorted(model)
        for key, value in model.items():
            assert sl.get(key) == value

    @given(st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=100), st.binary(min_size=1, max_size=6))
    def test_seek_ceiling_matches_model(self, inserted, probe):
        sl = SkipList(seed=2)
        for key in inserted:
            sl.insert(key, key)
        expected = sorted(k for k in set(inserted) if k >= probe)
        assert [k for k, _ in sl.seek_ceiling(probe)] == expected
