"""Tests for the compaction strategy layer (shape / trigger axes)."""

import pytest

from repro.common import KIB, SimClock
from repro.errors import CompactionError, ConfigError
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import (
    CompactDownRouter,
    CompactionExecutor,
    LargestFilePicker,
    OldestFilePicker,
    RoundRobinPicker,
)
from repro.lsm.db import LsmDB
from repro.lsm.layout import build_layout
from repro.lsm.options import DBOptions
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.strategy import (
    FileCountTrigger,
    LazyLevelingStrategy,
    LevelingStrategy,
    SizeRatioTrigger,
    StalenessTrigger,
    TieringStrategy,
    make_picker,
    make_strategy,
    make_trigger,
)
from repro.lsm.compaction import MergeRouter
from repro.lsm.version import LevelManifest
from repro.storage import StorageBackend


class PinEverythingRouter(MergeRouter):
    """Test double: pins every record to the upper level."""

    supports_trivial_move = False

    def route_up(self, record, source_level):
        return True


def small_options(**kwargs):
    defaults = dict(
        memtable_bytes=4 * KIB,
        target_file_bytes=4 * KIB,
        level1_target_bytes=8 * KIB,
        level_size_multiplier=4,
        block_bytes=1 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


class StrategyFixture:
    """An executor wired to an arbitrary strategy, for direct planning."""

    def __init__(self, options=None, router=None, picker=None):
        self.options = options or small_options()
        self.clock = SimClock()
        self.backend = StorageBackend(self.clock)
        self.layout = build_layout("NNNNN", self.options, self.clock)
        strategy = make_strategy(self.options)
        self.manifest = LevelManifest(
            self.options.num_levels,
            run_stacked_levels=strategy.run_stacked_levels(self.options),
        )
        self.executor = CompactionExecutor(
            self.backend,
            self.manifest,
            self.layout,
            self.options,
            BlockCache(64 * KIB),
            picker or LargestFilePicker(),
            router or CompactDownRouter(),
            strategy=strategy,
        )
        self.seqno = 0

    def add_table(self, level, keys, *, kind=ValueKind.PUT, value=b"v" * 20):
        builder = SSTableBuilder(
            self.backend,
            self.layout.tier_for_level(level),
            block_bytes=self.options.block_bytes,
            target_file_bytes=1 << 30,
        )
        for key in sorted(keys):
            self.seqno += 1
            builder.add(
                Record(key, self.seqno, kind, value if kind == ValueKind.PUT else b"")
            )
        table, _ = builder.finish()
        self.manifest.add_file(level, table)
        return table


def fill_db(db, writes=4000, keys=800, deletes=True):
    import random

    rng = random.Random(7)
    expect = {}
    for i in range(writes):
        key = f"k{rng.randrange(keys):04d}".encode()
        value = f"v{i}".encode() * 4
        db.put(key, value)
        expect[key] = value
        if deletes and i % 11 == 0:
            dead = f"k{rng.randrange(keys):04d}".encode()
            db.delete(dead)
            expect[dead] = None
    db.flush()
    return expect


class TestFactories:
    def test_shape_names(self):
        assert isinstance(
            make_strategy(small_options(compaction_shape="leveling")), LevelingStrategy
        )
        assert isinstance(
            make_strategy(small_options(compaction_shape="tiering")), TieringStrategy
        )
        assert isinstance(
            make_strategy(small_options(compaction_shape="lazy-leveling")),
            LazyLevelingStrategy,
        )

    def test_trigger_names(self):
        assert isinstance(make_trigger("size-ratio"), SizeRatioTrigger)
        assert isinstance(make_trigger("file-count"), FileCountTrigger)
        assert isinstance(make_trigger("staleness"), StalenessTrigger)
        with pytest.raises(ConfigError):
            make_trigger("nope")

    def test_picker_names(self):
        assert make_picker("default") is None
        assert isinstance(make_picker("largest"), LargestFilePicker)
        assert isinstance(make_picker("oldest"), OldestFilePicker)
        assert isinstance(make_picker("round-robin"), RoundRobinPicker)
        from repro.core.placer import LowestScorePicker

        assert isinstance(make_picker("lowest-score"), LowestScorePicker)
        with pytest.raises(ConfigError):
            make_picker("nope")

    def test_options_validate_policy_names(self):
        with pytest.raises(ConfigError):
            small_options(compaction_shape="spiral")
        with pytest.raises(ConfigError):
            small_options(compaction_trigger="vibes")
        with pytest.raises(ConfigError):
            small_options(compaction_picker="dartboard")
        with pytest.raises(ConfigError):
            small_options(tiering_run_trigger=1)


class TestShapeInvariants:
    def test_tiering_stacks_all_levels_below_l0(self):
        options = small_options(compaction_shape="tiering")
        strategy = make_strategy(options)
        assert strategy.run_stacked_levels(options) == (1, 2, 3, 4)

    def test_lazy_leveling_keeps_bottom_leveled(self):
        options = small_options(compaction_shape="lazy-leveling")
        strategy = make_strategy(options)
        assert strategy.run_stacked_levels(options) == (1, 2, 3)

    def test_leveling_preserves_disjointness(self):
        db = LsmDB.create("NNNNN", small_options())
        fill_db(db)
        for level in range(1, db.options.num_levels):
            assert db.manifest.run_count(level) <= 1
        db.manifest.check_invariants()  # raises on any overlap

    def test_tiering_allows_overlapping_runs_within_level(self):
        db = LsmDB.create("NNNNN", small_options(compaction_shape="tiering"))
        fill_db(db)
        stacked = [
            level
            for level in range(1, db.options.num_levels)
            if db.manifest.run_count(level) > 1
        ]
        assert stacked, "expected at least one level holding multiple runs"
        overlaps = 0
        for level in stacked:
            runs = db.manifest.runs(level)
            for i, run_a in enumerate(runs):
                for run_b in runs[i + 1:]:
                    lo_a = min(t.smallest_key for t in run_a)
                    hi_a = max(t.largest_key for t in run_a)
                    lo_b = min(t.smallest_key for t in run_b)
                    hi_b = max(t.largest_key for t in run_b)
                    if lo_a <= hi_b and lo_b <= hi_a:
                        overlaps += 1
        assert overlaps > 0, "run stacks never overlapped — not tiering"
        # ...and yet the structural + version-order invariants hold.
        db.check_invariants()

    def test_overlapping_add_rejected_on_leveled_level(self):
        fx = StrategyFixture()
        fx.add_table(1, [b"a", b"m"])
        with pytest.raises(CompactionError):
            fx.add_table(1, [b"b", b"c"])

    def test_tiered_shapes_read_correctly(self):
        for shape in ("tiering", "lazy-leveling"):
            db = LsmDB.create("NNNNN", small_options(compaction_shape=shape))
            expect = fill_db(db)
            for key, value in expect.items():
                assert db.get(key).value == value, (shape, key)
            live = sorted(k for k, v in expect.items() if v is not None)
            scanned = [k for k, _ in db.scan(live[0], 40).items]
            assert scanned == live[:40], shape

    def test_lazy_leveling_bottom_is_single_sorted_run(self):
        db = LsmDB.create(
            "NNNNN", small_options(compaction_shape="lazy-leveling")
        )
        fill_db(db, writes=6000)
        bottom = db.options.num_levels - 1
        assert not db.manifest.is_run_stacked(bottom)
        assert db.manifest.run_count(bottom) <= 1
        db.check_invariants()


class TestTriggers:
    def test_file_count_trigger_fires_at_threshold(self):
        fx = StrategyFixture(
            small_options(compaction_trigger="file-count", file_count_trigger=3)
        )
        fx.add_table(1, [b"a"])
        fx.add_table(1, [b"b"])
        assert fx.executor.compaction_score(1) == pytest.approx(2 / 3)
        fx.add_table(1, [b"c"])
        assert fx.executor.compaction_score(1) == pytest.approx(1.0)
        assert fx.executor.pick_compaction_level() == 1

    def test_file_count_trigger_keeps_l0_threshold(self):
        fx = StrategyFixture(
            small_options(compaction_trigger="file-count", file_count_trigger=3)
        )
        for i in range(fx.options.l0_compaction_trigger):
            fx.add_table(0, [f"k{i}".encode()])
        assert fx.executor.compaction_score(0) == pytest.approx(1.0)

    def test_tiering_run_trigger_fires_at_threshold(self):
        fx = StrategyFixture(
            small_options(compaction_shape="tiering", tiering_run_trigger=2)
        )
        fx.add_table(1, [b"a", b"z"])
        assert fx.executor.compaction_score(1) == pytest.approx(0.5)
        fx.add_table(1, [b"b", b"y"])  # overlapping: becomes a second run
        assert fx.manifest.run_count(1) == 2
        assert fx.executor.compaction_score(1) == pytest.approx(1.0)

    def test_staleness_trigger_fires_on_old_files(self):
        fx = StrategyFixture(
            small_options(compaction_trigger="staleness", staleness_file_window=4)
        )
        old = fx.add_table(1, [b"a"])
        assert fx.executor.compaction_score(1) < 1.0
        for i in range(4):  # newer files elsewhere age the L1 file
            fx.add_table(2, [f"m{i}".encode()])
        assert fx.executor.compaction_score(1) >= 1.0
        trigger = fx.executor.strategy.trigger
        assert trigger.prefers_oldest(fx.executor, 1)
        # The planned job takes the stale (oldest) file, so the firing
        # converges even with a size-based picker configured.
        job = fx.executor.strategy.plan_job(fx.executor, 1)
        assert old in job.upper_inputs

    def test_size_ratio_is_default_and_unchanged(self):
        fx = StrategyFixture()
        assert isinstance(fx.executor.strategy, LevelingStrategy)
        assert isinstance(fx.executor.strategy.trigger, SizeRatioTrigger)
        assert fx.executor.compaction_score(4) == 0.0  # bottom never


class TestTieredExecution:
    def test_whole_level_merges_into_one_run_below(self):
        fx = StrategyFixture(
            small_options(compaction_shape="tiering", tiering_run_trigger=2)
        )
        fx.add_table(1, [b"a", b"z"])
        fx.add_table(1, [b"b", b"y"])
        fx.executor.run_job(1)
        assert fx.manifest.file_count(1) == 0
        assert fx.manifest.run_count(2) == 1
        keys = sorted(
            r.user_key
            for t in fx.manifest.files(2)
            for r in t.read_all_records()[0]
        )
        assert keys == [b"a", b"b", b"y", b"z"]

    def test_bottom_consolidation_merges_runs_and_drops_tombstones(self):
        fx = StrategyFixture(
            small_options(compaction_shape="tiering", tiering_run_trigger=2)
        )
        fx.add_table(4, [b"a", b"k"])
        fx.add_table(4, [b"k"], kind=ValueKind.DELETE)  # newer tombstone
        assert fx.manifest.run_count(4) == 2
        assert fx.executor.compaction_score(4) >= 1.0
        fx.executor.run_job(4)
        assert fx.manifest.run_count(4) == 1
        keys = [
            r.user_key
            for t in fx.manifest.files(4)
            for r in t.read_all_records()[0]
        ]
        assert keys == [b"a"]  # tombstone applied and dropped
        assert fx.executor.stats.tombstones_dropped == 1

    def test_pinned_router_composes_with_tiering(self):
        fx = StrategyFixture(
            small_options(compaction_shape="tiering", tiering_run_trigger=2),
            router=PinEverythingRouter(),
        )
        fx.add_table(1, [b"a", b"z"])
        fx.add_table(1, [b"b", b"y"])
        fx.executor.run_job(1)
        # Everything was retained at L1 as a fresh run; nothing sank.
        assert fx.executor.stats.records_pinned == 4
        assert fx.manifest.run_count(1) == 1
        assert fx.manifest.file_count(2) == 0

    def test_tiered_bottom_cannot_overflow(self):
        fx = StrategyFixture(small_options(compaction_shape="tiering"))
        with pytest.raises(CompactionError):
            fx.executor.strategy.plan_job(fx.executor, 5)  # out of range
        # lazy-leveling refuses its bottom outright, like leveling.
        lazy = StrategyFixture(small_options(compaction_shape="lazy-leveling"))
        with pytest.raises(CompactionError):
            lazy.executor.run_job(4)


class TestRoundRobinPicker:
    def test_cycles_through_files_in_id_order(self):
        fx = StrategyFixture(picker=RoundRobinPicker())
        tables = [
            fx.add_table(1, [b"a"]),
            fx.add_table(1, [b"m"]),
            fx.add_table(1, [b"x"]),
        ]
        picker = fx.executor.picker
        picks = [picker.pick_files(fx.manifest, 1)[0] for _ in range(4)]
        assert picks == [tables[0], tables[1], tables[2], tables[0]]

    def test_empty_level(self):
        assert RoundRobinPicker().pick_files(LevelManifest(5), 1) == []


class TestStrategyThroughDbOptions:
    def test_reopen_preserves_shape_and_data(self):
        db = LsmDB.create("NNNNN", small_options(compaction_shape="tiering"))
        expect = fill_db(db, writes=2500)
        reopened = db.reopen()
        assert reopened.manifest.is_run_stacked(1)
        reopened.check_invariants()
        for key, value in list(expect.items())[:200]:
            assert reopened.get(key).value == value

    def test_explicit_strategy_instance_wins(self):
        strategy = TieringStrategy(FileCountTrigger())
        db = LsmDB.create("NNNNN", small_options(), strategy=strategy)
        assert db.executor.strategy is strategy
        assert db.manifest.is_run_stacked(1)
