"""Encoded-domain vs record-domain compaction merge equivalence.

``DBOptions.encoded_compaction`` selects between two implementations of
the same merge: the record path (the executable specification) and the
byte-span path (the fast one). This file pins the contract the options
docstring promises: for every compaction shape and routing outcome the
two paths produce *byte-identical* output files, identical manifests,
and identical compaction stats.
"""

import random

from repro.common import KIB, SimClock
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import (
    CompactDownRouter,
    CompactionExecutor,
    LargestFilePicker,
    MergeRouter,
)
from repro.lsm.db import LsmDB
from repro.lsm.layout import build_layout
from repro.lsm.options import COMPACTION_SHAPES, DBOptions
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.storage import StorageBackend

import pytest


def small_options(**kwargs):
    defaults = dict(
        memtable_bytes=4 * KIB,
        target_file_bytes=4 * KIB,
        level1_target_bytes=8 * KIB,
        level_size_multiplier=4,
        block_bytes=1 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


class SplitKeyRouter(MergeRouter):
    """Deterministic pinning double that supports both routing interfaces.

    PUT records with keys below ``split`` stay in (or rise to) the upper
    level; everything else compacts down — enough to exercise the
    pinned, pulled-up, and rejected branches of both merge paths.
    """

    supports_trivial_move = False
    supports_encoded_routing = True

    def __init__(self, split: bytes) -> None:
        self.split = split

    def route_up(self, record, source_level):
        return self.route_up_key(
            record.user_key,
            0 if record.kind is ValueKind.DELETE else 1,
            record.encoded_size(),
            source_level,
        )

    def route_up_key(self, user_key, kind_code, encoded_size, source_level):
        return kind_code == 1 and user_key < self.split


class RecordOnlyRouter(MergeRouter):
    """A router without encoded routing: must force the record fallback."""

    supports_trivial_move = False

    def route_up(self, record, source_level):
        return record.user_key < b"k0040"


class MergeFixture:
    """test_compaction's fixture, parameterized on encoded_compaction."""

    def __init__(self, *, encoded, router=None, options=None):
        self.options = options or small_options()
        self.options.encoded_compaction = encoded
        self.clock = SimClock()
        self.backend = StorageBackend(self.clock)
        self.layout = build_layout("NNNNN", self.options, self.clock)
        self.manifest = LevelManifest(self.options.num_levels)
        self.router = router or CompactDownRouter()
        self.executor = CompactionExecutor(
            self.backend,
            self.manifest,
            self.layout,
            self.options,
            BlockCache(64 * KIB),
            LargestFilePicker(),
            self.router,
        )
        self.seqno = 0

    def add_table(self, level, keys, *, value=b"v" * 20, kind=ValueKind.PUT,
                  kind_by_key=None):
        builder = SSTableBuilder(
            self.backend,
            self.layout.tier_for_level(level),
            block_bytes=self.options.block_bytes,
            target_file_bytes=1 << 30,
        )
        for key in sorted(keys):
            self.seqno += 1
            record_kind = kind_by_key(key) if kind_by_key else kind
            builder.add(Record(
                key,
                self.seqno,
                record_kind,
                value if record_kind == ValueKind.PUT else b"",
            ))
        table, _ = builder.finish()
        self.manifest.add_file(level, table)
        return table

    def merge(self, upper_level, lo, hi):
        self.executor._merge(
            upper_level,
            list(self.manifest.files(upper_level)),
            self.manifest.overlapping_files(upper_level + 1, lo, hi),
            lo,
            hi,
        )


def fingerprint(manifest, backend, num_levels):
    """Byte-exact snapshot of every live table, per level."""
    return {
        level: [
            (table.file_id, table.smallest_key, table.largest_key,
             bytes(table.file.data))
            for table in manifest.files(level)
        ]
        for level in range(num_levels)
    }


def stats_tuple(executor):
    stats = executor.stats
    return (
        stats.compactions, stats.trivial_moves, stats.bytes_read,
        stats.bytes_written, stats.records_in, stats.records_out,
        stats.records_pinned, stats.records_pulled_up,
        stats.tombstones_dropped, stats.shadowed_dropped,
        sorted(stats.per_level_write_bytes.items()),
    )


def run_both(build, *, router_factory=None):
    """Run ``build(fx)`` under both merge paths; return the two states."""
    states = []
    for encoded in (False, True):
        router = router_factory() if router_factory else None
        fx = MergeFixture(encoded=encoded, router=router)
        build(fx)
        states.append((
            fingerprint(fx.manifest, fx.backend, fx.options.num_levels),
            stats_tuple(fx.executor),
        ))
    return states


def assert_equivalent(build, *, router_factory=None):
    record_state, encoded_state = run_both(build, router_factory=router_factory)
    assert encoded_state[0] == record_state[0]  # byte-identical tables
    assert encoded_state[1] == record_state[1]  # identical stats


class TestLeveledEquivalence:
    def test_plain_merge(self):
        def build(fx):
            fx.add_table(1, [f"k{i:04d}".encode() for i in range(0, 100, 2)])
            fx.add_table(2, [f"k{i:04d}".encode() for i in range(1, 100, 2)])
            fx.merge(1, b"k0000", b"k0099")

        assert_equivalent(build)

    def test_shadowed_versions(self):
        def build(fx):
            fx.add_table(2, [f"k{i:04d}".encode() for i in range(40)])
            fx.add_table(1, [f"k{i:04d}".encode() for i in range(0, 40, 2)],
                         value=b"new" * 8)
            fx.merge(1, b"k0000", b"k0039")

        assert_equivalent(build)

    def test_tombstones_kept_above_bottom(self):
        def build(fx):
            fx.add_table(2, [f"k{i:04d}".encode() for i in range(30)])
            fx.add_table(
                1,
                [f"k{i:04d}".encode() for i in range(0, 30, 3)],
                kind=ValueKind.DELETE,
            )
            fx.merge(1, b"k0000", b"k0029")

        assert_equivalent(build)

    def test_tombstones_dropped_at_bottom(self):
        def build(fx):
            bottom = fx.options.num_levels - 1
            fx.add_table(
                bottom - 1,
                [f"k{i:04d}".encode() for i in range(20)],
                kind_by_key=lambda key: (
                    ValueKind.DELETE if key[-1] % 2 else ValueKind.PUT
                ),
            )
            fx.merge(bottom - 1, b"k0000", b"k0019")

        assert_equivalent(build)

    def test_output_rotation(self):
        def build(fx):
            fx.add_table(
                1,
                [f"k{i:04d}".encode() for i in range(300)],
                value=b"v" * 30,
            )
            fx.merge(1, b"k0000", b"k0299")

        # target_file_bytes=4 KiB forces several output files; rotation
        # points must land on the same records in both paths.
        assert_equivalent(build)


class TestRoutedEquivalence:
    def test_pinned_records_retained(self):
        def build(fx):
            fx.add_table(1, [f"k{i:04d}".encode() for i in range(60)])
            fx.merge(1, b"k0000", b"k0059")

        assert_equivalent(
            build, router_factory=lambda: SplitKeyRouter(b"k0030")
        )

    def test_pulled_up_from_lower(self):
        def build(fx):
            fx.add_table(1, [b"k0000", b"k0059"])
            fx.add_table(2, [f"k{i:04d}".encode() for i in range(10, 50, 5)])
            fx.merge(1, b"k0000", b"k0059")

        assert_equivalent(
            build, router_factory=lambda: SplitKeyRouter(b"k0030")
        )

    def test_pinning_skips_tombstones(self):
        def build(fx):
            fx.add_table(
                1,
                [f"k{i:04d}".encode() for i in range(40)],
                kind_by_key=lambda key: (
                    ValueKind.DELETE if key[-1] % 3 == 0 else ValueKind.PUT
                ),
            )
            fx.merge(1, b"k0000", b"k0039")

        assert_equivalent(
            build, router_factory=lambda: SplitKeyRouter(b"k9999")
        )

    def test_record_only_router_falls_back(self):
        # A router without supports_encoded_routing must produce the
        # record path's results even with encoded_compaction=True.
        def build(fx):
            fx.add_table(1, [f"k{i:04d}".encode() for i in range(60)])
            fx.add_table(2, [f"k{i:04d}".encode() for i in range(30, 90)])
            fx.merge(1, b"k0000", b"k0059")

        assert_equivalent(build, router_factory=RecordOnlyRouter)


def _workload_state(shape, encoded):
    """Drive a full LsmDB (flushes + strategy-planned compactions)."""
    options = DBOptions(
        memtable_bytes=2 * KIB,
        target_file_bytes=4 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=1 * KIB,
        compaction_shape=shape,
        tiering_run_trigger=3,
        encoded_compaction=encoded,
    )
    db = LsmDB.create("NNNNN", options)
    rng = random.Random(1234)
    keys = [f"key{i:04d}".encode() for i in range(80)]
    for step in range(600):
        key = keys[rng.randrange(len(keys))]
        if rng.random() < 0.15:
            db.delete(key)
        else:
            db.put(key, f"v{step:05d}".encode() * 3)
    db.flush()
    executor = db.executor
    return (
        fingerprint(executor.manifest, None, options.num_levels),
        stats_tuple(executor),
    )


class TestShapeEquivalence:
    """The strategy-planned job stream, per compaction shape.

    Leveling exercises the leveled merge, tiering the tiered merge and
    its bottom-level run consolidation, lazy-leveling both — each under
    real flush-triggered scheduling rather than hand-built jobs.
    """

    @pytest.mark.parametrize("shape", COMPACTION_SHAPES)
    def test_workload_equivalence(self, shape):
        record_state = _workload_state(shape, encoded=False)
        encoded_state = _workload_state(shape, encoded=True)
        assert encoded_state[0] == record_state[0]
        assert encoded_state[1] == record_state[1]
        # The workload must actually have compacted for the comparison
        # to mean anything.
        assert encoded_state[1][0] > 0
