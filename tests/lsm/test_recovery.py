"""Crash-recovery tests: the WAL protects unflushed writes."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import KIB
from repro.core import PrismDB, PrismOptions
from repro.lsm import DBOptions, LsmDB


def tiny_options(**kwargs):
    defaults = dict(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=8 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


class TestCrashRecovery:
    def test_unflushed_writes_survive_crash(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        db.put(b"durable", b"on-disk")
        db.flush()
        db.put(b"volatile", b"in-memtable")
        replayed = db.simulate_crash_and_recover()
        assert replayed == 1
        assert db.get(b"durable").value == b"on-disk"
        assert db.get(b"volatile").value == b"in-memtable"

    def test_without_wal_unflushed_writes_are_lost(self):
        db = LsmDB.create("NNNTQ", tiny_options(wal_enabled=False))
        db.put(b"durable", b"on-disk")
        db.flush()
        db.put(b"volatile", b"in-memtable")
        assert db.simulate_crash_and_recover() == 0
        assert db.get(b"durable").value == b"on-disk"
        assert not db.get(b"volatile").found

    def test_deletes_survive_crash(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        db.put(b"k", b"v")
        db.flush()
        db.delete(b"k")
        db.simulate_crash_and_recover()
        assert not db.get(b"k").found

    def test_wal_truncated_after_flush(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        db.put(b"k", b"v")
        db.flush()
        # The flushed segment is gone: nothing to replay.
        assert db.simulate_crash_and_recover() == 0
        assert db.get(b"k").value == b"v"

    def test_cache_is_cold_after_crash(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        for i in range(200):
            db.put(f"key{i:04d}".encode(), b"v" * 30)
        db.flush()
        db.get(b"key0000")
        assert len(db.cache) > 0
        db.simulate_crash_and_recover()
        assert len(db.cache) == 0

    def test_writes_after_recovery_stay_newest(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        db.put(b"k", b"v1")
        db.simulate_crash_and_recover()
        db.put(b"k", b"v2")
        assert db.get(b"k").value == b"v2"
        db.flush()
        db.check_invariants()

    def test_repeated_crashes(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        for round_number in range(5):
            db.put(f"round{round_number}".encode(), b"x")
            db.simulate_crash_and_recover()
        for round_number in range(5):
            assert db.get(f"round{round_number}".encode()).found

    def test_prismdb_recovers_too(self):
        db = PrismDB.create(
            "NNNTQ", tiny_options(), PrismOptions(tracker_capacity=16, require_full_tracker=False)
        )
        db.put(b"k", b"v")
        db.get(b"k")
        db.simulate_crash_and_recover()
        assert db.get(b"k").value == b"v"

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "flush", "crash"]),
                st.sampled_from([f"key{i}".encode() for i in range(15)]),
                st.binary(min_size=1, max_size=25),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_recovery_preserves_model_with_wal(self, ops):
        db = LsmDB.create("NNNTQ", tiny_options())
        model: dict[bytes, bytes] = {}
        for op, key, value in ops:
            if op == "put":
                db.put(key, value)
                model[key] = value
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            elif op == "flush":
                db.flush()
            else:
                db.simulate_crash_and_recover()
        db.simulate_crash_and_recover()
        for key in model:
            assert db.get(key).value == model[key]
        assert dict(db.scan(b"", 100).items) == model
