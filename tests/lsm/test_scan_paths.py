"""Scan-path tests: lazy per-level chaining and cross-boundary scans."""

import random

import pytest

from repro.common import KIB
from repro.lsm import DBOptions, LsmDB


def make_db(**kwargs):
    defaults = dict(
        memtable_bytes=1 * KIB,
        target_file_bytes=1 * KIB,
        level1_target_bytes=2 * KIB,
        level_size_multiplier=4,
        block_bytes=256,
        block_cache_bytes=8 * KIB,
    )
    defaults.update(kwargs)
    return LsmDB.create("NNNTQ", DBOptions(**defaults))


class TestScanBoundaries:
    def _loaded_db(self, n=600):
        db = make_db()
        for i in range(n):
            db.put(f"key{i:05d}".encode(), f"value{i}".encode())
        db.flush()
        assert db.manifest.file_count() > 5  # spans many files
        return db

    def test_scan_crosses_file_boundaries(self):
        db = self._loaded_db()
        result = db.scan(b"key00050", 100)
        keys = [k for k, _ in result.items]
        assert keys == [f"key{i:05d}".encode() for i in range(50, 150)]

    def test_scan_whole_keyspace(self):
        db = self._loaded_db(300)
        result = db.scan(b"", 1000)
        assert len(result.items) == 300
        keys = [k for k, _ in result.items]
        assert keys == sorted(keys)

    def test_scan_from_middle_of_file(self):
        db = self._loaded_db()
        result = db.scan(b"key00123", 5)
        assert [k for k, _ in result.items] == [
            f"key{i:05d}".encode() for i in range(123, 128)
        ]

    def test_scan_past_end_is_empty(self):
        db = self._loaded_db(300)
        assert db.scan(b"zzz", 10).items == []

    def test_scan_latency_independent_of_distant_files(self):
        # A short scan near the end of the keyspace must not pay for
        # reading blocks of every preceding file (lazy chaining).
        db = self._loaded_db(1200)
        short = db.scan(b"key01190", 5)
        assert len(short.items) == 5
        # Cost bounded by a handful of block reads per level, not
        # hundreds across the whole tree.
        assert short.latency_usec < 20_000

    def test_scan_merges_updates_across_levels(self):
        db = self._loaded_db(200)
        # Overwrite a band of keys; new versions start in the memtable.
        for i in range(90, 110):
            db.put(f"key{i:05d}".encode(), b"NEW")
        result = db.scan(b"key00085", 30)
        values = dict(result.items)
        assert values[b"key00095"] == b"NEW"
        assert values[b"key00085"] == b"value85"

    def test_scan_excludes_deleted_band(self):
        db = self._loaded_db(200)
        for i in range(100, 120):
            db.delete(f"key{i:05d}".encode())
        db.flush()
        result = db.scan(b"key00095", 10)
        keys = [k for k, _ in result.items]
        assert f"key{100:05d}".encode() not in keys
        assert keys[0] == b"key00095"

    def test_random_scans_match_model(self):
        db = make_db()
        rng = random.Random(31)
        model = {}
        for _ in range(2500):
            key = f"key{rng.randrange(400):05d}".encode()
            value = rng.randbytes(15)
            db.put(key, value)
            model[key] = value
        for _ in range(60):
            start = f"key{rng.randrange(400):05d}".encode()
            count = rng.randrange(1, 30)
            got = db.scan(start, count).items
            expected = sorted((k, v) for k, v in model.items() if k >= start)[:count]
            assert got == expected
