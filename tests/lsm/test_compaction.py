"""Tests for compaction picking, routing and execution."""

import pytest

from repro.common import KIB, SimClock
from repro.errors import CompactionError
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import (
    CompactDownRouter,
    CompactionExecutor,
    LargestFilePicker,
    MergeRouter,
    OldestFilePicker,
)
from repro.lsm.layout import build_layout, homogeneous_layout
from repro.lsm.options import DBOptions
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.storage import StorageBackend


def small_options(**kwargs):
    defaults = dict(
        memtable_bytes=4 * KIB,
        target_file_bytes=4 * KIB,
        level1_target_bytes=8 * KIB,
        level_size_multiplier=4,
        block_bytes=1 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


class CompactionFixture:
    def __init__(self, layout_code="NNNNN", router=None, options=None):
        self.options = options or small_options()
        self.clock = SimClock()
        self.backend = StorageBackend(self.clock)
        self.layout = build_layout(layout_code, self.options, self.clock)
        self.manifest = LevelManifest(self.options.num_levels)
        self.cache = BlockCache(64 * KIB)
        self.router = router or CompactDownRouter()
        self.executor = CompactionExecutor(
            self.backend,
            self.manifest,
            self.layout,
            self.options,
            self.cache,
            LargestFilePicker(),
            self.router,
        )
        self.seqno = 0

    def add_table(self, level, keys, *, value=b"v" * 20, kind=ValueKind.PUT):
        builder = SSTableBuilder(
            self.backend,
            self.layout.tier_for_level(level),
            block_bytes=self.options.block_bytes,
            target_file_bytes=1 << 30,  # never rotate inside a fixture table
        )
        for key in sorted(keys):
            self.seqno += 1
            builder.add(Record(key, self.seqno, kind, value if kind == ValueKind.PUT else b""))
        table, _ = builder.finish()
        self.manifest.add_file(level, table)
        return table

    def all_records(self, level):
        result = []
        for table in self.manifest.files(level):
            records, _ = table.read_all_records()
            result.extend(records)
        return result


class TestPickers:
    def test_largest_file_picker(self):
        fx = CompactionFixture()
        small = fx.add_table(1, [b"a"])
        big = fx.add_table(1, [f"m{i}".encode() for i in range(50)])
        assert LargestFilePicker().pick_files(fx.manifest, 1) == [big]
        assert small in fx.manifest.files(1)

    def test_oldest_file_picker(self):
        fx = CompactionFixture()
        first = fx.add_table(1, [b"a"])
        fx.add_table(1, [b"m"])
        assert OldestFilePicker().pick_files(fx.manifest, 1) == [first]

    def test_empty_level_picks_nothing(self):
        fx = CompactionFixture()
        assert LargestFilePicker().pick_files(fx.manifest, 1) == []
        assert OldestFilePicker().pick_files(fx.manifest, 1) == []


class TestScores:
    def test_l0_score_from_file_count(self):
        fx = CompactionFixture()
        for i in range(fx.options.l0_compaction_trigger):
            fx.add_table(0, [f"k{i}".encode()])
        assert fx.executor.compaction_score(0) == pytest.approx(1.0)

    def test_level_score_from_bytes(self):
        fx = CompactionFixture()
        fx.add_table(1, [f"k{i:03d}".encode() for i in range(200)])
        assert fx.executor.compaction_score(1) > 1.0

    def test_bottom_level_never_scores(self):
        fx = CompactionFixture()
        fx.add_table(4, [f"k{i:03d}".encode() for i in range(500)])
        assert fx.executor.compaction_score(4) == 0.0

    def test_pick_compaction_level_none_when_healthy(self):
        fx = CompactionFixture()
        fx.add_table(1, [b"a"])
        assert fx.executor.pick_compaction_level() is None


class TestCompactionExecution:
    def test_l0_to_l1_merges_all_l0(self):
        fx = CompactionFixture()
        fx.add_table(0, [b"a", b"c"])
        fx.add_table(0, [b"b", b"d"])
        fx.executor.run_job(0)
        assert fx.manifest.file_count(0) == 0
        keys = sorted(r.user_key for r in fx.all_records(1))
        assert keys == [b"a", b"b", b"c", b"d"]

    def test_shadowed_versions_dropped(self):
        fx = CompactionFixture()
        fx.add_table(1, [b"k"])          # older version
        # Move it down so L1 is free, then write a newer version at L1.
        fx.executor.run_job(1)
        fx.add_table(1, [b"k"])          # newer version (higher seqno)
        fx.executor._merge(
            1,
            list(fx.manifest.files(1)),
            fx.manifest.overlapping_files(2, b"k", b"k"),
            b"k",
            b"k",
        )
        records = fx.all_records(2)
        assert len(records) == 1
        assert fx.executor.stats.shadowed_dropped == 1

    def test_tombstone_dropped_at_bottom(self):
        fx = CompactionFixture()
        fx.add_table(3, [b"k"], kind=ValueKind.DELETE)
        fx.executor._merge(3, list(fx.manifest.files(3)), [], b"k", b"k")
        assert fx.all_records(4) == []
        assert fx.executor.stats.tombstones_dropped == 1

    def test_tombstone_kept_above_bottom(self):
        fx = CompactionFixture()
        fx.add_table(1, [b"k"], kind=ValueKind.DELETE)
        fx.executor._merge(1, list(fx.manifest.files(1)), [], b"k", b"k")
        records = fx.all_records(2)
        assert len(records) == 1
        assert records[0].is_tombstone

    def test_trivial_move_same_tier(self):
        fx = CompactionFixture("NNNNN")
        table = fx.add_table(1, [b"a", b"b"])
        fx.executor.run_job(1)
        assert fx.executor.stats.trivial_moves == 1
        assert fx.executor.stats.compactions == 0
        assert fx.manifest.files(2) == [table]

    def test_no_trivial_move_across_tiers(self):
        fx = CompactionFixture("NNTQQ")  # L1 -> L2 crosses NVM -> TLC
        written_before = fx.executor.stats.bytes_written
        fx.add_table(1, [b"a", b"b"])
        fx.executor.run_job(1)
        assert fx.executor.stats.trivial_moves == 0
        assert fx.executor.stats.compactions == 1
        assert fx.executor.stats.bytes_written > written_before
        assert fx.manifest.files(2)[0].tier.spec.name == "TLC"

    def test_no_trivial_move_with_overlap(self):
        fx = CompactionFixture("NNNNN")
        fx.add_table(1, [b"a", b"m"])
        fx.add_table(2, [b"b", b"c"])
        fx.executor.run_job(1)
        assert fx.executor.stats.trivial_moves == 0
        assert fx.executor.stats.compactions == 1
        keys = sorted(r.user_key for r in fx.all_records(2))
        assert keys == [b"a", b"b", b"c", b"m"]

    def test_inputs_deleted_after_compaction(self):
        fx = CompactionFixture()
        table = fx.add_table(1, [b"a", b"b"])
        lower = fx.add_table(2, [b"a", b"z"])
        fx.executor.run_job(1)
        assert table.file.deleted
        assert lower.file.deleted
        assert fx.backend.stats.files_deleted == 2

    def test_bottom_level_cannot_compact(self):
        fx = CompactionFixture()
        with pytest.raises(CompactionError):
            fx.executor.run_job(4)

    def test_maybe_compact_resolves_pressure(self):
        fx = CompactionFixture()
        for i in range(8):  # double the L0 trigger
            fx.add_table(0, [f"k{i}".encode()])
        jobs = fx.executor.maybe_compact()
        assert jobs >= 1
        assert fx.executor.pick_compaction_level() is None

    def test_output_rotation_at_target_size(self):
        fx = CompactionFixture(options=small_options(target_file_bytes=2 * KIB))
        fx.add_table(1, [f"k{i:04d}".encode() for i in range(300)], value=b"v" * 30)
        fx.executor._merge(1, list(fx.manifest.files(1)), [], b"k0000", b"k0299")
        assert fx.manifest.file_count(2) > 1
        fx.manifest.check_invariants()


class PinEverythingRouter(MergeRouter):
    """Test double: pins every record to the upper level."""

    supports_trivial_move = False

    def route_up(self, record, source_level):
        return True


class TestRouterIntegration:
    def test_pinned_records_stay_in_upper_level(self):
        fx = CompactionFixture(router=PinEverythingRouter())
        fx.add_table(1, [b"a", b"b"])
        fx.executor._merge(1, list(fx.manifest.files(1)), [], b"a", b"b")
        assert sorted(r.user_key for r in fx.all_records(1)) == [b"a", b"b"]
        assert fx.all_records(2) == []
        assert fx.executor.stats.records_pinned == 2

    def test_up_compaction_pulls_lower_records(self):
        fx = CompactionFixture(router=PinEverythingRouter())
        fx.add_table(1, [b"a", b"z"])
        fx.add_table(2, [b"m"])  # inside the upper range: eligible to rise
        fx.executor._merge(
            1,
            list(fx.manifest.files(1)),
            fx.manifest.overlapping_files(2, b"a", b"z"),
            b"a",
            b"z",
        )
        upper_keys = sorted(r.user_key for r in fx.all_records(1))
        assert upper_keys == [b"a", b"m", b"z"]
        assert fx.executor.stats.records_pulled_up == 1

    def test_up_compaction_respects_upper_range(self):
        fx = CompactionFixture(router=PinEverythingRouter())
        fx.add_table(1, [b"d", b"f"])
        fx.add_table(2, [b"e", b"x"])  # b"x" outside [d, f]: must not rise
        fx.executor._merge(
            1,
            list(fx.manifest.files(1)),
            fx.manifest.overlapping_files(2, b"d", b"f"),
            b"d",
            b"f",
        )
        upper_keys = sorted(r.user_key for r in fx.all_records(1))
        lower_keys = sorted(r.user_key for r in fx.all_records(2))
        assert upper_keys == [b"d", b"e", b"f"]
        assert lower_keys == [b"x"]
        fx.manifest.check_invariants()

    def test_consistency_preserved_with_versions(self):
        fx = CompactionFixture(router=PinEverythingRouter())
        fx.add_table(2, [b"k"])  # old version below
        fx.add_table(1, [b"k"])  # new version above (higher seqno)
        fx.executor._merge(
            1,
            list(fx.manifest.files(1)),
            fx.manifest.overlapping_files(2, b"k", b"k"),
            b"k",
            b"k",
        )
        upper = fx.all_records(1)
        assert len(upper) == 1  # old version dropped, newest pinned
        assert fx.all_records(2) == []
