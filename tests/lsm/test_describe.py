"""Tests for the human-readable DB status report."""

from repro.common import KIB
from repro.lsm import DBOptions, LsmDB


def make_db(**kwargs):
    defaults = dict(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=8 * KIB,
    )
    defaults.update(kwargs)
    return LsmDB.create("NNNTQ", DBOptions(**defaults))


class TestDescribe:
    def test_mentions_layout_and_levels(self):
        db = make_db()
        text = db.describe()
        assert "NNNTQ" in text
        for level in range(5):
            assert f"L{level}:" in text

    def test_reflects_activity(self):
        db = make_db()
        for i in range(500):
            db.put(f"key{i:04d}".encode(), b"v" * 30)
        db.flush()
        db.get(b"key0001")
        text = db.describe()
        assert "500 writes" in text
        assert "1 reads" in text
        assert "compactions:" in text
        assert "wear" in text

    def test_row_cache_line_only_when_enabled(self):
        without = make_db().describe()
        assert "row cache" not in without
        with_cache = make_db(row_cache_bytes=4 * KIB).describe()
        assert "row cache" in with_cache

    def test_tier_lines_present(self):
        text = make_db().describe()
        assert "nvm-L0-L2" in text
        assert "tlc-L3" in text
        assert "qlc-L4" in text
