"""Tests for the object-granularity row cache and its DB integration."""

import pytest

from repro.common import KIB
from repro.lsm import DBOptions, LsmDB
from repro.lsm.row_cache import ENTRY_OVERHEAD_BYTES, RowCache


class TestRowCacheUnit:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            RowCache(-1)

    def test_miss_then_hit(self):
        cache = RowCache(1024)
        hit, value, seqno, latency = cache.lookup(b"k")
        assert not hit
        cache.insert(b"k", b"v", 7)
        hit, value, seqno, latency = cache.lookup(b"k")
        assert hit
        assert value == b"v"
        assert seqno == 7
        assert latency > 0

    def test_caches_confirmed_absence(self):
        cache = RowCache(1024)
        cache.insert(b"ghost", None, 0)
        hit, value, _, _ = cache.lookup(b"ghost")
        assert hit
        assert value is None

    def test_lru_eviction(self):
        entry = ENTRY_OVERHEAD_BYTES + 1 + 1  # 1-byte key, 1-byte value
        cache = RowCache(2 * entry)
        cache.insert(b"a", b"1", 1)
        cache.insert(b"b", b"2", 2)
        cache.lookup(b"a")  # a is now MRU
        cache.insert(b"c", b"3", 3)
        assert cache.lookup(b"a")[0]
        assert not cache.lookup(b"b")[0]  # evicted
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = RowCache(1024)
        cache.insert(b"k", b"v", 1)
        cache.invalidate(b"k")
        assert not cache.lookup(b"k")[0]
        assert cache.stats.invalidations == 1
        cache.invalidate(b"never")  # no-op
        assert cache.stats.invalidations == 1

    def test_zero_capacity_disabled(self):
        cache = RowCache(0)
        cache.insert(b"k", b"v", 1)
        assert len(cache) == 0

    def test_used_bytes_accounting(self):
        cache = RowCache(10_000)
        cache.insert(b"key", b"value", 1)
        assert cache.used_bytes == 3 + 5 + ENTRY_OVERHEAD_BYTES
        cache.invalidate(b"key")
        assert cache.used_bytes == 0

    def test_reinsert_replaces(self):
        cache = RowCache(10_000)
        cache.insert(b"k", b"long-value", 1)
        cache.insert(b"k", b"v", 2)
        assert len(cache) == 1
        assert cache.lookup(b"k")[1] == b"v"

    def test_hit_rate(self):
        cache = RowCache(1024)
        cache.lookup(b"a")
        cache.insert(b"a", b"1", 1)
        cache.lookup(b"a")
        assert cache.stats.hit_rate == pytest.approx(0.5)


def db_with_row_cache(row_cache_bytes=16 * KIB):
    options = DBOptions(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=0,  # isolate the row cache
        row_cache_bytes=row_cache_bytes,
    )
    return LsmDB.create("NNNTQ", options)


class TestRowCacheInDB:
    def test_second_read_served_from_row_cache(self):
        db = db_with_row_cache()
        db.put(b"k", b"v")
        db.flush()
        first = db.get(b"k")
        second = db.get(b"k")
        assert first.served_by.startswith("L")
        assert second.served_by == "rowcache"
        assert second.value == b"v"
        assert second.latency_usec < first.latency_usec

    def test_write_invalidates_row_cache(self):
        db = db_with_row_cache()
        db.put(b"k", b"old")
        db.flush()
        db.get(b"k")
        db.put(b"k", b"new")
        db.flush()
        result = db.get(b"k")
        assert result.value == b"new"

    def test_delete_invalidates_row_cache(self):
        db = db_with_row_cache()
        db.put(b"k", b"v")
        db.flush()
        db.get(b"k")
        db.delete(b"k")
        assert not db.get(b"k").found

    def test_negative_lookups_cached(self):
        db = db_with_row_cache()
        db.put(b"other", b"v")
        db.flush()
        db.get(b"absent")
        result = db.get(b"absent")
        assert result.served_by == "rowcache"
        assert not result.found

    def test_disabled_by_default(self):
        options = DBOptions(
            memtable_bytes=2 * KIB,
            target_file_bytes=2 * KIB,
            level1_target_bytes=4 * KIB,
            level_size_multiplier=4,
            block_bytes=512,
        )
        db = LsmDB.create("NNNTQ", options)
        db.put(b"k", b"v")
        db.flush()
        db.get(b"k")
        assert db.get(b"k").served_by != "rowcache"

    def test_correctness_under_churn(self):
        import random

        db = db_with_row_cache()
        rng = random.Random(9)
        model = {}
        keys = [f"key{i:03d}".encode() for i in range(80)]
        for _ in range(4000):
            key = rng.choice(keys)
            roll = rng.random()
            if roll < 0.3:
                value = rng.randbytes(20)
                db.put(key, value)
                model[key] = value
            elif roll < 0.35:
                db.delete(key)
                model.pop(key, None)
            else:
                assert db.get(key).value == model.get(key)
        db.check_invariants()
