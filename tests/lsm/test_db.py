"""End-to-end tests for LsmDB."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import KIB
from repro.errors import DBClosedError
from repro.lsm import DBOptions, LsmDB


def tiny_options(**kwargs):
    defaults = dict(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=16 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


def make_db(code="NNNTQ", **kwargs):
    return LsmDB.create(code, tiny_options(**kwargs))


class TestBasicOperations:
    def test_put_get(self):
        db = make_db()
        db.put(b"key", b"value")
        result = db.get(b"key")
        assert result.found
        assert result.value == b"value"
        assert result.served_by == "memtable"

    def test_get_missing(self):
        db = make_db()
        result = db.get(b"missing")
        assert not result.found
        assert result.served_by == "miss"

    def test_overwrite(self):
        db = make_db()
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        assert db.get(b"k").value == b"v2"

    def test_delete(self):
        db = make_db()
        db.put(b"k", b"v")
        db.delete(b"k")
        assert not db.get(b"k").found

    def test_delete_missing_key_is_fine(self):
        db = make_db()
        db.delete(b"never-existed")
        assert not db.get(b"never-existed").found

    def test_delete_survives_flush(self):
        db = make_db()
        db.put(b"k", b"v")
        db.flush()
        db.delete(b"k")
        db.flush()
        assert not db.get(b"k").found

    def test_read_from_disk_after_flush(self):
        db = make_db()
        db.put(b"k", b"v")
        db.flush()
        result = db.get(b"k")
        assert result.value == b"v"
        assert result.served_by.startswith("L")

    def test_latencies_are_positive(self):
        db = make_db()
        write = db.put(b"k", b"v")
        assert write.latency_usec > 0
        read = db.get(b"k")
        assert read.latency_usec > 0

    def test_closed_db_rejects_operations(self):
        db = make_db()
        db.close()
        with pytest.raises(DBClosedError):
            db.put(b"k", b"v")
        with pytest.raises(DBClosedError):
            db.get(b"k")
        with pytest.raises(DBClosedError):
            db.scan(b"", 1)

    def test_layout_options_level_mismatch_rejected(self):
        from repro.lsm.layout import build_layout
        from repro.common import SimClock

        opts3 = DBOptions(num_levels=3)
        layout = build_layout("NTQ", opts3, SimClock())
        with pytest.raises(ValueError):
            LsmDB(layout, tiny_options())


class TestFlushAndCompaction:
    def test_writes_trigger_flush(self):
        db = make_db()
        flushed = False
        for i in range(200):
            result = db.put(f"key{i:06d}".encode(), b"v" * 40)
            flushed = flushed or result.triggered_flush
        assert flushed
        assert db.stats.flush_count >= 1

    def test_flush_empties_memtable_into_l0(self):
        db = make_db()
        db.put(b"k", b"v")
        db.flush()
        assert db.manifest.file_count() >= 1
        assert len(db._memtable) == 0

    def test_flush_empty_memtable_is_noop(self):
        db = make_db()
        assert db.flush() == 0
        assert db.stats.flush_count == 0

    def test_compactions_eventually_fill_lower_levels(self):
        db = make_db()
        for i in range(2000):
            db.put(f"key{i:06d}".encode(), b"v" * 40)
        db.flush()
        occupied = [row["level"] for row in db.level_summary() if row["files"] > 0]
        assert max(occupied) >= 2

    def test_invariants_hold_after_heavy_churn(self):
        db = make_db()
        import random

        rng = random.Random(7)
        keys = [f"key{i:05d}".encode() for i in range(300)]
        for _ in range(3000):
            db.put(rng.choice(keys), rng.randbytes(30))
        db.flush()
        db.check_invariants()

    def test_wal_bytes_accumulate(self):
        db = make_db()
        db.put(b"k", b"v")
        assert db.stats.wal_bytes > 0

    def test_wal_disabled(self):
        db = make_db(wal_enabled=False)
        db.put(b"k", b"v")
        assert db.wal is None
        assert db.stats.wal_bytes == 0


class TestScan:
    def test_scan_returns_sorted_live_keys(self):
        db = make_db()
        for key in [b"d", b"a", b"c", b"b"]:
            db.put(key, key.upper())
        db.delete(b"b")
        result = db.scan(b"a", 10)
        assert [k for k, _ in result.items] == [b"a", b"c", b"d"]
        assert result.items[0][1] == b"A"

    def test_scan_count_limit(self):
        db = make_db()
        for i in range(20):
            db.put(f"k{i:02d}".encode(), b"v")
        assert len(db.scan(b"", 5).items) == 5

    def test_scan_across_memtable_and_disk(self):
        db = make_db()
        db.put(b"disk", b"1")
        db.flush()
        db.put(b"mem", b"2")
        result = db.scan(b"", 10)
        assert [k for k, _ in result.items] == [b"disk", b"mem"]

    def test_scan_sees_newest_version(self):
        db = make_db()
        db.put(b"k", b"old")
        db.flush()
        db.put(b"k", b"new")
        result = db.scan(b"", 10)
        assert result.items == [(b"k", b"new")]

    def test_scan_negative_count_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.scan(b"", -1)


class TestStats:
    def test_reads_by_source_tracked(self):
        db = make_db()
        db.put(b"k", b"v")
        db.get(b"k")
        db.flush()
        db.get(b"k")
        sources = db.stats.reads_by_source.as_dict()
        assert sources.get("memtable") == 1
        assert sum(v for k, v in sources.items() if k.startswith("L")) == 1

    def test_write_amplification_computation(self):
        db = make_db()
        for i in range(500):
            db.put(f"key{i:06d}".encode(), b"v" * 40)
        db.flush()
        wa = db.stats.write_amplification(db.executor.stats.bytes_written)
        assert wa > 1.0  # at minimum the WAL + flush double-write

    def test_read_hook_invoked(self):
        db = make_db()
        seen = []
        db.read_hook = lambda key, result: seen.append((key, result.served_by))
        db.put(b"k", b"v")
        db.get(b"k")
        assert seen == [(b"k", "memtable")]


@st.composite
def operations(draw):
    keyspace = [f"key{i:02d}".encode() for i in range(20)]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get", "flush"]),
                st.sampled_from(keyspace),
                st.binary(min_size=1, max_size=30),
            ),
            max_size=120,
        )
    )
    return ops


class TestModelEquivalence:
    @given(operations())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_behaves_like_dict(self, ops):
        db = make_db()
        model: dict[bytes, bytes] = {}
        for op, key, value in ops:
            if op == "put":
                db.put(key, value)
                model[key] = value
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            elif op == "flush":
                db.flush()
            else:
                result = db.get(key)
                assert result.value == model.get(key)
        # Final sweep: every key agrees, and a scan agrees with the model.
        for key in model:
            assert db.get(key).value == model[key]
        scanned = dict(db.scan(b"", 100).items)
        assert scanned == model
        db.check_invariants()
