"""Tests for the memtable."""

import pytest

from repro.lsm.memtable import Memtable
from repro.lsm.record import Record, ValueKind


def put(key, seqno, value=b"v"):
    return Record(key, seqno, ValueKind.PUT, value)


def tombstone(key, seqno):
    return Record(key, seqno, ValueKind.DELETE)


class TestMemtable:
    def test_empty(self):
        mem = Memtable()
        assert len(mem) == 0
        assert mem.approximate_bytes == 0
        assert mem.get(b"k") is None
        assert mem.smallest_key() is None

    def test_add_and_get(self):
        mem = Memtable()
        mem.add(put(b"k", 1, b"hello"))
        record = mem.get(b"k")
        assert record is not None
        assert record.value == b"hello"

    def test_newer_version_replaces(self):
        mem = Memtable()
        mem.add(put(b"k", 1, b"old"))
        mem.add(put(b"k", 2, b"new"))
        assert len(mem) == 1
        assert mem.get(b"k").value == b"new"

    def test_non_monotonic_write_rejected(self):
        mem = Memtable()
        mem.add(put(b"k", 5))
        with pytest.raises(ValueError):
            mem.add(put(b"k", 5))
        with pytest.raises(ValueError):
            mem.add(put(b"k", 4))

    def test_tombstone_is_returned(self):
        mem = Memtable()
        mem.add(put(b"k", 1))
        mem.add(tombstone(b"k", 2))
        record = mem.get(b"k")
        assert record is not None
        assert record.is_tombstone

    def test_size_tracks_replacement(self):
        mem = Memtable()
        mem.add(put(b"k", 1, b"x" * 100))
        size_after_first = mem.approximate_bytes
        mem.add(put(b"k", 2, b"y" * 10))
        assert mem.approximate_bytes < size_after_first

    def test_records_sorted_by_key(self):
        mem = Memtable()
        for i, key in enumerate([b"c", b"a", b"b"]):
            mem.add(put(key, i + 1))
        assert [r.user_key for r in mem.records()] == [b"a", b"b", b"c"]

    def test_scan_from(self):
        mem = Memtable()
        for i, key in enumerate([b"a", b"c", b"e"]):
            mem.add(put(key, i + 1))
        assert [r.user_key for r in mem.scan_from(b"b")] == [b"c", b"e"]

    def test_smallest_largest(self):
        mem = Memtable()
        for i, key in enumerate([b"m", b"a", b"z"]):
            mem.add(put(key, i + 1))
        assert mem.smallest_key() == b"a"
        assert mem.largest_key() == b"z"

    def test_live_entry_count_excludes_tombstones(self):
        mem = Memtable()
        mem.add(put(b"a", 1))
        mem.add(put(b"b", 2))
        mem.add(tombstone(b"b", 3))
        assert mem.live_entry_count() == 1
