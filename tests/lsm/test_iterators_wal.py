"""Tests for merging iterators and the WAL."""

import pytest

from repro.common import MIB, SimClock
from repro.lsm.iterators import merge_records, newest_versions, visible_records
from repro.lsm.record import Record, ValueKind
from repro.lsm.wal import WriteAheadLog
from repro.storage import NVM_SPEC, StorageTier


def put(key, seqno, value=b"v"):
    return Record(key, seqno, ValueKind.PUT, value)


def tombstone(key, seqno):
    return Record(key, seqno, ValueKind.DELETE)


class TestMergeRecords:
    def test_merges_sorted_sources(self):
        a = [put(b"a", 1), put(b"c", 2)]
        b = [put(b"b", 3), put(b"d", 4)]
        merged = list(merge_records([a, b]))
        assert [r.user_key for r in merged] == [b"a", b"b", b"c", b"d"]

    def test_same_key_newest_first(self):
        older = [put(b"k", 1, b"old")]
        newer = [put(b"k", 9, b"new")]
        merged = list(merge_records([older, newer]))
        assert [r.seqno for r in merged] == [9, 1]

    def test_empty_sources(self):
        assert list(merge_records([[], []])) == []


class TestNewestVersions:
    def test_keeps_first_per_key(self):
        stream = [put(b"k", 9, b"new"), put(b"k", 1, b"old"), put(b"z", 5)]
        result = list(newest_versions(stream))
        assert [(r.user_key, r.seqno) for r in result] == [(b"k", 9), (b"z", 5)]

    def test_keeps_tombstones(self):
        stream = [tombstone(b"k", 9), put(b"k", 1)]
        result = list(newest_versions(stream))
        assert len(result) == 1
        assert result[0].is_tombstone


class TestVisibleRecords:
    def test_drops_tombstoned_keys(self):
        stream = [tombstone(b"a", 9), put(b"a", 1), put(b"b", 5)]
        result = list(visible_records(stream))
        assert [r.user_key for r in result] == [b"b"]

    def test_old_version_under_tombstone_not_resurrected(self):
        stream = [put(b"a", 10, b"latest"), tombstone(b"a", 5), put(b"a", 1, b"oldest")]
        # Newest is a PUT; tombstone below shadows nothing visible.
        result = list(visible_records(stream))
        assert len(result) == 1
        assert result[0].value == b"latest"


class TestWriteAheadLog:
    def _tier(self):
        clock = SimClock()
        return StorageTier("nvm", NVM_SPEC, 16 * MIB, clock)

    def test_append_charges_latency(self):
        wal = WriteAheadLog(self._tier())
        latency = wal.append(put(b"key", 1, b"value"))
        assert latency > 0
        assert wal.total_appends == 1
        assert wal.segment_bytes > 0

    def test_rejects_bad_sync_every(self):
        with pytest.raises(ValueError):
            WriteAheadLog(self._tier(), sync_every=0)

    def test_group_commit_is_cheaper(self):
        tier = self._tier()
        wal_sync = WriteAheadLog(self._tier(), sync_every=1)
        wal_group = WriteAheadLog(tier, sync_every=8)
        record = put(b"key", 1, b"value" * 10)
        sync_cost = sum(wal_sync.append(record) for _ in range(8))
        group_cost = sum(wal_group.append(record) for _ in range(8))
        assert group_cost < sync_cost

    def test_truncate_resets_segment(self):
        wal = WriteAheadLog(self._tier())
        wal.append(put(b"key", 1))
        wal.truncate()
        assert wal.segment_bytes == 0
        assert wal.total_bytes > 0
        assert wal.truncations == 1

    def test_bytes_accumulate(self):
        wal = WriteAheadLog(self._tier())
        record = put(b"key", 1, b"v" * 100)
        wal.append(record)
        wal.append(put(b"key", 2, b"v" * 100))
        assert wal.total_bytes == 2 * record.encoded_size()
