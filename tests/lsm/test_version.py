"""Tests for the level manifest."""

import pytest

from repro.common import KIB, MIB, SimClock
from repro.errors import CompactionError
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.storage import NVM_SPEC, StorageBackend, StorageTier


class ManifestFixture:
    def __init__(self):
        self.clock = SimClock()
        self.backend = StorageBackend(self.clock)
        self.tier = StorageTier("nvm", NVM_SPEC, 64 * MIB, self.clock)
        self.seqno = 0

    def table(self, lo: bytes, hi: bytes):
        """Build a tiny table spanning [lo, hi]."""
        builder = SSTableBuilder(
            self.backend, self.tier, block_bytes=512, target_file_bytes=4 * KIB
        )
        self.seqno += 1
        builder.add(Record(lo, self.seqno, ValueKind.PUT, b"v"))
        if hi != lo:
            self.seqno += 1
            builder.add(Record(hi, self.seqno, ValueKind.PUT, b"v"))
        table, _ = builder.finish()
        return table


@pytest.fixture
def fx():
    return ManifestFixture()


class TestLevelManifest:
    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            LevelManifest(1)

    def test_l0_is_newest_first(self, fx):
        manifest = LevelManifest(3)
        first = fx.table(b"a", b"m")
        second = fx.table(b"b", b"z")
        manifest.add_file(0, first)
        manifest.add_file(0, second)
        assert manifest.files(0) == [second, first]

    def test_l1_sorted_by_smallest(self, fx):
        manifest = LevelManifest(3)
        late = fx.table(b"m", b"p")
        early = fx.table(b"a", b"c")
        manifest.add_file(1, late)
        manifest.add_file(1, early)
        assert manifest.files(1) == [early, late]

    def test_l1_overlap_rejected(self, fx):
        manifest = LevelManifest(3)
        manifest.add_file(1, fx.table(b"a", b"m"))
        with pytest.raises(CompactionError):
            manifest.add_file(1, fx.table(b"k", b"z"))
        with pytest.raises(CompactionError):
            manifest.add_file(1, fx.table(b"a", b"b"))

    def test_l0_overlap_allowed(self, fx):
        manifest = LevelManifest(3)
        manifest.add_file(0, fx.table(b"a", b"m"))
        manifest.add_file(0, fx.table(b"k", b"z"))  # no error
        assert manifest.file_count(0) == 2

    def test_remove_file(self, fx):
        manifest = LevelManifest(3)
        table = fx.table(b"a", b"b")
        manifest.add_file(1, table)
        manifest.remove_file(1, table)
        assert manifest.file_count(1) == 0

    def test_remove_missing_file_fails(self, fx):
        manifest = LevelManifest(3)
        with pytest.raises(CompactionError):
            manifest.remove_file(1, fx.table(b"a", b"b"))

    def test_candidates_l0_in_order(self, fx):
        manifest = LevelManifest(3)
        old = fx.table(b"a", b"m")
        new = fx.table(b"c", b"z")
        manifest.add_file(0, old)
        manifest.add_file(0, new)
        assert manifest.candidates_for_key(0, b"d") == [new, old]
        assert manifest.candidates_for_key(0, b"b") == [old]
        assert manifest.candidates_for_key(0, b"zz") == []

    def test_candidates_l1_single_file(self, fx):
        manifest = LevelManifest(3)
        left = fx.table(b"a", b"c")
        right = fx.table(b"m", b"p")
        manifest.add_file(1, left)
        manifest.add_file(1, right)
        assert manifest.candidates_for_key(1, b"b") == [left]
        assert manifest.candidates_for_key(1, b"n") == [right]
        assert manifest.candidates_for_key(1, b"e") == []
        assert manifest.candidates_for_key(1, b"q") == []

    def test_overlapping_files(self, fx):
        manifest = LevelManifest(3)
        a = fx.table(b"a", b"c")
        b = fx.table(b"e", b"g")
        c = fx.table(b"m", b"p")
        for table in (a, b, c):
            manifest.add_file(1, table)
        assert manifest.overlapping_files(1, b"b", b"f") == [a, b]
        assert manifest.overlapping_files(1, b"h", b"j") == []

    def test_level_bytes_and_counts(self, fx):
        manifest = LevelManifest(3)
        table = fx.table(b"a", b"b")
        manifest.add_file(1, table)
        assert manifest.level_bytes(1) == table.size_bytes
        assert manifest.file_count() == 1
        assert manifest.total_bytes() == table.size_bytes

    def test_level_of(self, fx):
        manifest = LevelManifest(3)
        table = fx.table(b"a", b"b")
        manifest.add_file(2, table)
        assert manifest.level_of(table) == 2
        assert manifest.level_of(fx.table(b"x", b"y")) is None

    def test_check_invariants_passes_on_valid(self, fx):
        manifest = LevelManifest(3)
        manifest.add_file(1, fx.table(b"a", b"c"))
        manifest.add_file(1, fx.table(b"e", b"g"))
        manifest.check_invariants()

    def test_all_files_iterates_levels(self, fx):
        manifest = LevelManifest(3)
        t0 = fx.table(b"a", b"b")
        t1 = fx.table(b"c", b"d")
        manifest.add_file(0, t0)
        manifest.add_file(1, t1)
        assert list(manifest.all_files()) == [(0, t0), (1, t1)]
