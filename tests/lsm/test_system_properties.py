"""Cross-system property tests: every engine variant obeys the KV contract.

These tests drive randomized mixed workloads through RocksDBLike,
PrismDB and MutantDB on heterogeneous layouts and assert the observable
contract (reads see the newest committed write; scans return exactly the
live key set) plus the structural invariants (level disjointness,
newest-version-on-top) that pinned compaction §4.4 must preserve.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.mutant import MutantDB, MutantOptions
from repro.baselines.rocksdb import RocksDBLike
from repro.common import KIB
from repro.core import PrismDB, PrismOptions
from repro.lsm import DBOptions


def tiny_options(**kwargs):
    defaults = dict(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=8 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


def make_system(name):
    if name == "rocksdb":
        return RocksDBLike.create("NNNTQ", tiny_options())
    if name == "mutant":
        return MutantDB.create("NNNTQ", tiny_options(), MutantOptions(epoch_usec=50_000))
    return PrismDB.create(
        "NNNTQ",
        tiny_options(),
        PrismOptions(tracker_capacity=32, pinning_threshold=0.4, require_full_tracker=False),
    )


SYSTEMS = ("rocksdb", "prismdb", "mutant")


@st.composite
def mixed_ops(draw):
    keyspace = [f"key{i:03d}".encode() for i in range(40)]
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get", "flush", "scan"]),
                st.sampled_from(keyspace),
                st.binary(min_size=1, max_size=40),
            ),
            max_size=150,
        )
    )


class TestContractAcrossSystems:
    @pytest.mark.parametrize("system", SYSTEMS)
    @given(ops=mixed_ops())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_kv_contract(self, system, ops):
        db = make_system(system)
        model: dict[bytes, bytes] = {}
        for op, key, value in ops:
            if op == "put":
                db.put(key, value)
                model[key] = value
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            elif op == "flush":
                db.flush()
            elif op == "scan":
                scanned = dict(db.scan(key, 100).items)
                expected = {k: v for k, v in model.items() if k >= key}
                assert scanned == expected
            else:
                assert db.get(key).value == model.get(key)
        db.flush()
        db.check_invariants()
        assert dict(db.scan(b"", 1000).items) == model

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_sustained_skewed_churn(self, system):
        db = make_system(system)
        rng = random.Random(17)
        keys = [f"key{i:04d}".encode() for i in range(250)]
        hot = keys[:25]
        model = {}
        for step in range(6000):
            roll = rng.random()
            key = rng.choice(hot if rng.random() < 0.7 else keys)
            if roll < 0.25:
                value = rng.randbytes(30)
                db.put(key, value)
                model[key] = value
            elif roll < 0.30:
                db.delete(key)
                model.pop(key, None)
            else:
                result = db.get(key)
                assert result.value == model.get(key), (system, step, key)
            # Keep the simulated clock moving so Mutant's epochs fire.
            db.clock.advance(50.0)
        db.check_invariants()

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_latencies_always_positive_and_finite(self, system):
        db = make_system(system)
        for i in range(500):
            w = db.put(f"key{i:04d}".encode(), b"v" * 30)
            assert 0 < w.latency_usec < 10_000_000
        for i in range(0, 500, 7):
            r = db.get(f"key{i:04d}".encode())
            assert 0 < r.latency_usec < 10_000_000


class TestTierPlacementInvariants:
    def test_levels_stay_on_their_tiers_without_migration(self):
        for system in ("rocksdb", "prismdb"):
            db = make_system(system)
            for i in range(3000):
                db.put(f"key{i:05d}".encode(), b"v" * 30)
            db.flush()
            for level in range(db.manifest.num_levels):
                expected = db.layout.tier_for_level(level)
                for table in db.manifest.files(level):
                    assert table.tier is expected, (system, level)

    def test_mutant_may_move_files_off_their_level_tier(self):
        db = make_system("mutant")
        rng = random.Random(5)
        for i in range(3000):
            db.put(f"key{i:05d}".encode(), b"v" * 30)
        db.flush()
        for _ in range(2000):
            db.get(f"key{rng.randrange(200):05d}".encode())
            db.clock.advance(100.0)
        db.run_optimizer_epoch()
        placements = {
            (level, table.tier.spec.name)
            for level, table in db.manifest.all_files()
        }
        # At least one deep-level file should have been promoted to NVM.
        assert any(level >= 3 and tech == "NVM" for level, tech in placements)
