"""Tests for DB options and storage layouts."""

import pytest

from repro.common import KIB, MIB, SimClock
from repro.errors import ConfigError
from repro.lsm.layout import build_layout, homogeneous_layout, nnntq_layout
from repro.lsm.options import DBOptions, options_for_db_size


class TestDBOptions:
    def test_defaults_validate(self):
        DBOptions()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            DBOptions(memtable_bytes=0)
        with pytest.raises(ConfigError):
            DBOptions(block_bytes=0)
        with pytest.raises(ConfigError):
            DBOptions(block_bytes=128 * KIB, target_file_bytes=64 * KIB)
        with pytest.raises(ConfigError):
            DBOptions(num_levels=1)
        with pytest.raises(ConfigError):
            DBOptions(level_size_multiplier=1)
        with pytest.raises(ConfigError):
            DBOptions(level1_target_bytes=1 * KIB, target_file_bytes=64 * KIB)

    def test_level_targets_exponential(self):
        opts = DBOptions(level1_target_bytes=256 * KIB, level_size_multiplier=8)
        assert opts.level_target_bytes(1) == 256 * KIB
        assert opts.level_target_bytes(2) == 8 * 256 * KIB
        assert opts.level_target_bytes(3) == 64 * 256 * KIB

    def test_l0_target_from_trigger(self):
        opts = DBOptions(memtable_bytes=64 * KIB, l0_compaction_trigger=4)
        assert opts.level_target_bytes(0) == 256 * KIB

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            DBOptions().level_target_bytes(5)
        with pytest.raises(ValueError):
            DBOptions().level_target_bytes(-1)

    def test_total_capacity(self):
        opts = DBOptions()
        assert opts.total_capacity_bytes() == sum(
            opts.level_target_bytes(level) for level in range(opts.num_levels)
        )


class TestOptionsForDbSize:
    def test_bottom_level_matches_db_size(self):
        opts = options_for_db_size(16 * MIB)
        assert opts.level_target_bytes(4) == pytest.approx(16 * MIB, rel=0.05)

    def test_multiplier_between_levels(self):
        opts = options_for_db_size(64 * MIB, level_size_multiplier=10)
        assert opts.level_target_bytes(3) * 10 == opts.level_target_bytes(4)

    def test_tiny_db_clamps_to_file_size(self):
        opts = options_for_db_size(64 * KIB)
        assert opts.level1_target_bytes >= opts.target_file_bytes

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigError):
            options_for_db_size(0)

    def test_overrides_pass_through(self):
        opts = options_for_db_size(16 * MIB, block_cache_bytes=0)
        assert opts.block_cache_bytes == 0


class TestLayouts:
    def test_nnntq_groups_runs(self):
        layout = nnntq_layout()
        assert layout.code == "NNNTQ"
        assert len(layout.tiers) == 3
        assert layout.tier_for_level(0) is layout.tier_for_level(2)
        assert layout.tier_for_level(0).spec.name == "NVM"
        assert layout.tier_for_level(3).spec.name == "TLC"
        assert layout.tier_for_level(4).spec.name == "QLC"

    def test_wal_on_l0_tier(self):
        layout = nnntq_layout()
        assert layout.wal_tier is layout.tier_for_level(0)

    def test_homogeneous_single_tier(self):
        layout = homogeneous_layout("Q")
        assert layout.code == "QQQQQ"
        assert len(layout.tiers) == 1
        assert all(layout.tier_for_level(level) is layout.tiers[0] for level in range(5))

    def test_bad_code_length_rejected(self):
        with pytest.raises(ConfigError):
            build_layout("NQ", DBOptions(), SimClock())

    def test_unknown_letter_rejected(self):
        with pytest.raises(ConfigError):
            build_layout("NNNTX", DBOptions(), SimClock())

    def test_capacity_scales_with_level_targets(self):
        opts = DBOptions()
        layout = build_layout("NNNTQ", opts, SimClock(), capacity_headroom=2.0)
        qlc = layout.tier_for_level(4)
        assert qlc.capacity_bytes == 2 * opts.level_target_bytes(4)

    def test_total_cost_positive_and_ordered(self):
        opts = DBOptions()
        nvm_only = build_layout("NNNNN", opts, SimClock())
        qlc_only = build_layout("QQQQQ", opts, SimClock())
        assert nvm_only.total_cost_dollars() > qlc_only.total_cost_dollars() > 0

    def test_level_out_of_range(self):
        layout = nnntq_layout()
        with pytest.raises(ValueError):
            layout.tier_for_level(9)

    def test_describe_mentions_technologies(self):
        description = nnntq_layout().describe()
        assert "NVM" in description and "QLC" in description

    def test_case_insensitive_code(self):
        layout = build_layout("nnntq", DBOptions(), SimClock())
        assert layout.code == "NNNTQ"
