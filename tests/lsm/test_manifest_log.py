"""Tests for the MANIFEST log and full DB reopen."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.mutant import MutantDB, MutantOptions
from repro.common import KIB, MIB, SimClock
from repro.core import PrismDB, PrismOptions
from repro.errors import CorruptionError
from repro.lsm import DBOptions, LsmDB
from repro.lsm.manifest_log import (
    EditOp,
    ManifestLog,
    VersionEdit,
    decode_manifest,
    replay_manifest,
)
from repro.storage import NVM_SPEC, StorageTier


def make_log():
    return ManifestLog(StorageTier("nvm", NVM_SPEC, 16 * MIB, SimClock()))


def tiny_options(**kwargs):
    defaults = dict(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=8 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


class TestVersionEdit:
    def test_round_trip(self):
        edit = VersionEdit(EditOp.ADD_FILE, 42, 3)
        decoded, end = VersionEdit.decode_from(edit.encode(), 0)
        assert decoded == edit
        assert end == len(edit.encode())

    def test_truncated_fails(self):
        with pytest.raises(CorruptionError):
            VersionEdit.decode_from(b"\x01\x02", 0)

    def test_bad_op_fails(self):
        payload = VersionEdit(EditOp.ADD_FILE, 1, 0).encode()
        corrupted = b"\x09" + payload[1:]
        with pytest.raises(CorruptionError):
            VersionEdit.decode_from(corrupted, 0)


class TestManifestLog:
    def test_records_and_serializes(self):
        log = make_log()
        log.record_add(0, 1)
        log.record_add(1, 2)
        log.record_remove(0, 1)
        assert len(log) == 3
        assert decode_manifest(log.serialized()) == log.edits()
        assert log.bytes_written > 0

    def test_compact_keeps_live_set_only(self):
        log = make_log()
        log.record_add(0, 1)
        log.record_remove(0, 1)
        log.record_add(2, 7)
        log.compact({7: 2})
        assert len(log) == 1
        assert replay_manifest(log.edits()) == {7: 2}


class TestReplayManifest:
    def test_fold_adds_and_removes(self):
        edits = [
            VersionEdit(EditOp.ADD_FILE, 1, 0),
            VersionEdit(EditOp.ADD_FILE, 2, 1),
            VersionEdit(EditOp.REMOVE_FILE, 1, 0),
            VersionEdit(EditOp.ADD_FILE, 1, 1),
        ]
        assert replay_manifest(edits) == {2: 1, 1: 1}

    def test_double_add_rejected(self):
        edits = [VersionEdit(EditOp.ADD_FILE, 1, 0), VersionEdit(EditOp.ADD_FILE, 1, 2)]
        with pytest.raises(CorruptionError):
            replay_manifest(edits)

    def test_remove_of_absent_rejected(self):
        with pytest.raises(CorruptionError):
            replay_manifest([VersionEdit(EditOp.REMOVE_FILE, 9, 0)])

    def test_remove_from_wrong_level_rejected(self):
        edits = [VersionEdit(EditOp.ADD_FILE, 1, 0), VersionEdit(EditOp.REMOVE_FILE, 1, 3)]
        with pytest.raises(CorruptionError):
            replay_manifest(edits)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 4)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_replay_matches_incremental_model(self, adds):
        # Build a legal edit sequence from a random add/remove trace.
        log_edits = []
        model: dict[int, int] = {}
        for file_id, level in adds:
            if file_id in model:
                log_edits.append(VersionEdit(EditOp.REMOVE_FILE, file_id, model[file_id]))
                del model[file_id]
            else:
                log_edits.append(VersionEdit(EditOp.ADD_FILE, file_id, level))
                model[file_id] = level
        assert replay_manifest(log_edits) == model


class TestReopen:
    def _churn(self, db, n=2500, seed=1):
        rng = random.Random(seed)
        model = {}
        for _ in range(n):
            key = f"key{rng.randrange(250):04d}".encode()
            if rng.random() < 0.1:
                db.delete(key)
                model.pop(key, None)
            else:
                value = rng.randbytes(20)
                db.put(key, value)
                model[key] = value
        return model

    def test_reopen_preserves_all_data(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        model = self._churn(db)
        reopened = db.reopen()
        for key, value in model.items():
            assert reopened.get(key).value == value
        assert dict(reopened.scan(b"", 10_000).items) == model
        reopened.check_invariants()

    def test_reopen_rejects_closed_original(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        db.put(b"k", b"v")
        db.reopen()
        from repro.errors import DBClosedError

        with pytest.raises(DBClosedError):
            db.put(b"k2", b"v2")  # original is closed by reopen

    def test_reopen_preserves_seqno_monotonicity(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        self._churn(db, 1000)
        old_seqno = db._seqno
        reopened = db.reopen()
        assert reopened._seqno >= old_seqno - len(db._memtable)
        reopened.put(b"new", b"write")
        assert reopened.get(b"new").value == b"write"
        reopened.flush()
        reopened.check_invariants()

    def test_reopen_without_wal_loses_memtable_only(self):
        db = LsmDB.create("NNNTQ", tiny_options(wal_enabled=False))
        db.put(b"flushed", b"1")
        db.flush()
        db.put(b"unflushed", b"2")
        reopened = db.reopen()
        assert reopened.get(b"flushed").value == b"1"
        assert not reopened.get(b"unflushed").found

    def test_reopen_starts_with_cold_cache_and_compacted_manifest(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        self._churn(db, 2000)
        live_files = db.manifest.file_count()
        reopened = db.reopen()
        assert len(reopened.cache) == 0
        assert len(reopened.manifest_log) == live_files

    def test_reopen_l0_order_preserved(self):
        db = LsmDB.create("NNNTQ", tiny_options())
        db.put(b"k", b"old")
        db.flush()
        db.put(b"k", b"new")
        db.flush()
        reopened = db.reopen()
        assert reopened.get(b"k").value == b"new"

    def test_prismdb_reopen_resets_tracker(self):
        db = PrismDB.create(
            "NNNTQ", tiny_options(), PrismOptions(tracker_capacity=32, require_full_tracker=False)
        )
        model = self._churn(db, 1500)
        for key in list(model)[:20]:
            db.get(key)
        assert len(db.tracker) > 0
        reopened = db.reopen()
        assert len(reopened.tracker) == 0  # volatile state gone
        for key, value in model.items():
            assert reopened.get(key).value == value

    def test_mutant_reopen_resets_temperatures(self):
        db = MutantDB.create("NNNTQ", tiny_options(), MutantOptions())
        model = self._churn(db, 1500)
        reopened = db.reopen()
        assert reopened._temperatures == {}
        for key, value in list(model.items())[:30]:
            assert reopened.get(key).value == value
