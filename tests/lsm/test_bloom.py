"""Tests for the bloom filter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.lsm.bloom import BloomFilter


class TestBloomFilter:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)
        with pytest.raises(ValueError):
            BloomFilter(64, 31)

    def test_added_keys_are_found(self):
        bloom = BloomFilter.for_capacity(100)
        keys = [f"key{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in keys)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter.for_capacity(100)
        assert not bloom.may_contain(b"anything")

    def test_false_positive_rate_is_low(self):
        bloom = BloomFilter.for_capacity(1000, bits_per_key=10)
        for i in range(1000):
            bloom.add(f"present{i}".encode())
        false_positives = sum(
            bloom.may_contain(f"absent{i}".encode()) for i in range(10_000)
        )
        # 10 bits/key gives ~1% FP; allow generous slack.
        assert false_positives < 400

    def test_theoretical_fp_rate(self):
        bloom = BloomFilter.for_capacity(1000, bits_per_key=10)
        assert bloom.false_positive_rate(0) == 0.0
        assert 0.001 < bloom.false_positive_rate(1000) < 0.03

    def test_encode_decode_round_trip(self):
        bloom = BloomFilter.for_capacity(50)
        for i in range(50):
            bloom.add(f"k{i}".encode())
        restored = BloomFilter.decode(bloom.encode())
        for i in range(50):
            assert restored.may_contain(f"k{i}".encode())

    def test_decode_truncated_fails(self):
        with pytest.raises(CorruptionError):
            BloomFilter.decode(b"\x01")

    def test_decode_size_mismatch_fails(self):
        encoded = BloomFilter.for_capacity(100).encode()
        with pytest.raises(CorruptionError):
            BloomFilter.decode(encoded[:-3])

    def test_size_bytes_matches_encoding(self):
        bloom = BloomFilter.for_capacity(100)
        assert bloom.size_bytes == len(bloom.encode())

    @given(st.sets(st.binary(min_size=1, max_size=32), min_size=1, max_size=200))
    def test_no_false_negatives(self, keys):
        bloom = BloomFilter.for_capacity(len(keys))
        for key in keys:
            bloom.add(key)
        assert all(bloom.may_contain(key) for key in keys)

    @given(st.sets(st.binary(min_size=1, max_size=32), min_size=1, max_size=100))
    def test_no_false_negatives_after_round_trip(self, keys):
        bloom = BloomFilter.for_capacity(len(keys))
        for key in keys:
            bloom.add(key)
        restored = BloomFilter.decode(bloom.encode())
        assert all(restored.may_contain(key) for key in keys)


class TestBloomPreservation:
    """Pin down behavior the inlined probe loops must not change.

    The probe positions feed simulated latencies (a false positive costs
    a wasted block read), so these are preservation tests: bit-exact
    serialization, ``add_many`` equivalence, and an FP rate that stays
    near the theoretical bound for the 10 bits/key configuration.
    """

    def test_serialization_round_trip_is_bit_exact(self):
        bloom = BloomFilter.for_capacity(500)
        bloom.add_many(f"rt{i}".encode() for i in range(500))
        encoded = bloom.encode()
        assert BloomFilter.decode(encoded).encode() == encoded

    def test_add_many_equals_repeated_add(self):
        keys = [f"eq{i:05d}".encode() for i in range(1000)]
        one_by_one = BloomFilter.for_capacity(len(keys))
        for key in keys:
            one_by_one.add(key)
        bulk = BloomFilter.for_capacity(len(keys))
        bulk.add_many(keys)
        assert bulk.encode() == one_by_one.encode()

    def test_inlined_probes_match_positions_generator(self):
        bloom = BloomFilter.for_capacity(100)
        for i in range(100):
            key = f"pos{i}".encode()
            bloom.add(key)
            for pos in bloom._positions(key):
                assert bloom._bits[pos >> 3] & (1 << (pos & 7))

    def test_fp_rate_near_theoretical_at_10_bits_per_key(self):
        n_keys = 2000
        bloom = BloomFilter.for_capacity(n_keys, bits_per_key=10)
        bloom.add_many(f"present{i}".encode() for i in range(n_keys))
        trials = 20_000
        observed = sum(
            bloom.may_contain(f"absent{i}".encode()) for i in range(trials)
        ) / trials
        theoretical = bloom.false_positive_rate(n_keys)  # ~0.8% at 10 b/k
        assert observed <= theoretical * 2.0 + 0.002
        # A far *lower* rate than theory would mean the probes are not
        # actually independent-ish (e.g. all probes landing on one bit).
        assert observed >= theoretical / 4.0
