"""Tests for the LRU block cache."""

import pytest

from repro.lsm.block_cache import BlockCache, BlockType


def loader_for(data, latency=100.0, calls=None):
    def loader():
        if calls is not None:
            calls.append(1)
        return data, latency
    return loader


class TestBlockCache:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(-1)

    def test_miss_then_hit(self):
        cache = BlockCache(1024)
        calls = []
        data, miss_latency = cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"x" * 100, 100.0, calls))
        assert data == b"x" * 100
        assert miss_latency == 100.0
        data, hit_latency = cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"ignored", 100.0, calls))
        assert data == b"x" * 100
        assert hit_latency < miss_latency  # DRAM speed
        assert len(calls) == 1

    def test_stats_by_type(self):
        cache = BlockCache(1024)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"d"))
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"d"))
        cache.get_or_load(1, 8, BlockType.FILTER, loader_for(b"f"))
        assert cache.stats.hit_rate(BlockType.DATA) == pytest.approx(0.5)
        assert cache.stats.hit_rate(BlockType.FILTER) == 0.0
        assert cache.stats.hit_rate() == pytest.approx(1 / 3)

    def test_lru_eviction(self):
        cache = BlockCache(200)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"a" * 100))
        cache.get_or_load(1, 100, BlockType.DATA, loader_for(b"b" * 100))
        # Touch block (1,0) so (1,100) is the LRU victim.
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"a" * 100))
        cache.get_or_load(1, 200, BlockType.DATA, loader_for(b"c" * 100))
        calls = []
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"a" * 100, 100.0, calls))
        assert calls == []  # still cached
        cache.get_or_load(1, 100, BlockType.DATA, loader_for(b"b" * 100, 100.0, calls))
        assert calls == [1]  # was evicted

    def test_zero_capacity_disables_caching(self):
        cache = BlockCache(0)
        calls = []
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"x", 100.0, calls))
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"x", 100.0, calls))
        assert len(calls) == 2
        assert cache.used_bytes == 0

    def test_oversized_block_not_cached(self):
        cache = BlockCache(10)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"x" * 100))
        assert len(cache) == 0

    def test_used_bytes_tracks_contents(self):
        cache = BlockCache(1000)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"x" * 300))
        cache.get_or_load(2, 0, BlockType.DATA, loader_for(b"y" * 200))
        assert cache.used_bytes == 500

    def test_invalidate_file(self):
        cache = BlockCache(1000)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"a" * 10))
        cache.get_or_load(1, 10, BlockType.DATA, loader_for(b"b" * 10))
        cache.get_or_load(2, 0, BlockType.DATA, loader_for(b"c" * 10))
        removed = cache.invalidate_file(1)
        assert removed == 2
        assert len(cache) == 1
        assert cache.used_bytes == 10

    def test_invalidate_missing_file_is_noop(self):
        cache = BlockCache(1000)
        assert cache.invalidate_file(99) == 0

    def test_clear(self):
        cache = BlockCache(1000)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"a" * 10))
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_eviction_counter(self):
        cache = BlockCache(100)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"a" * 100))
        cache.get_or_load(2, 0, BlockType.DATA, loader_for(b"b" * 100))
        assert cache.stats.evictions == 1


class TestDecodedCache:
    """get_or_load_decoded: same simulated accounting, zero re-parsing."""

    def test_hit_skips_decoder(self):
        cache = BlockCache(1024)
        decodes = []

        def decoder(data):
            decodes.append(1)
            return data.upper()

        for _ in range(3):
            decoded, _ = cache.get_or_load_decoded(
                1, 0, BlockType.DATA, loader_for(b"abc"), decoder
            )
            assert decoded == b"ABC"
        assert len(decodes) == 1
        assert cache.stats.hits[BlockType.DATA] == 2
        assert cache.stats.misses[BlockType.DATA] == 1

    def test_accounting_identical_to_raw_cache(self):
        raw = BlockCache(1024)
        decoded = BlockCache(1024)
        data = b"x" * 100
        _, miss_raw = raw.get_or_load(1, 0, BlockType.DATA, loader_for(data))
        _, miss_dec = decoded.get_or_load_decoded(
            1, 0, BlockType.DATA, loader_for(data), bytes.upper
        )
        assert miss_raw == miss_dec
        _, hit_raw = raw.get_or_load(1, 0, BlockType.DATA, loader_for(data))
        _, hit_dec = decoded.get_or_load_decoded(
            1, 0, BlockType.DATA, loader_for(data), bytes.upper
        )
        assert hit_raw == hit_dec
        assert raw.used_bytes == decoded.used_bytes
        assert raw.stats.hits == decoded.stats.hits
        assert raw.stats.misses == decoded.stats.misses

    def test_raw_hit_then_decoded_hit_parses_lazily(self):
        cache = BlockCache(1024)
        cache.get_or_load(1, 0, BlockType.DATA, loader_for(b"abc"))
        decodes = []

        def decoder(data):
            decodes.append(1)
            return data.upper()

        decoded, _ = cache.get_or_load_decoded(
            1, 0, BlockType.DATA, loader_for(b"abc"), decoder
        )
        assert decoded == b"ABC"
        assert len(decodes) == 1  # parsed on first decoded access, not before
        assert cache.stats.hits[BlockType.DATA] == 1

    def test_invalidate_drops_decoded_form(self):
        cache = BlockCache(1024)
        decodes = []

        def decoder(data):
            decodes.append(1)
            return data

        cache.get_or_load_decoded(1, 0, BlockType.DATA, loader_for(b"abc"), decoder)
        cache.invalidate_file(1)
        cache.get_or_load_decoded(1, 0, BlockType.DATA, loader_for(b"abc"), decoder)
        assert len(decodes) == 2

    def test_zero_capacity_decodes_every_time_but_still_works(self):
        cache = BlockCache(0)
        decodes = []

        def decoder(data):
            decodes.append(1)
            return data

        for _ in range(2):
            decoded, latency = cache.get_or_load_decoded(
                1, 0, BlockType.DATA, loader_for(b"abc", latency=42.0), decoder
            )
            assert decoded == b"abc"
            assert latency == 42.0
        assert len(decodes) == 2
        assert len(cache) == 0

    def test_eviction_drops_raw_and_decoded_together(self):
        cache = BlockCache(100)
        decodes = []

        def decoder(data):
            decodes.append(1)
            return data

        cache.get_or_load_decoded(1, 0, BlockType.DATA, loader_for(b"a" * 60), decoder)
        cache.get_or_load_decoded(1, 1, BlockType.DATA, loader_for(b"b" * 60), decoder)
        assert cache.stats.evictions == 1
        cache.get_or_load_decoded(1, 0, BlockType.DATA, loader_for(b"a" * 60), decoder)
        assert len(decodes) == 3  # first entry was evicted wholesale
