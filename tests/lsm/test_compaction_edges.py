"""Edge-case tests for compaction scheduling and the pin reserve."""

import pytest

from repro.common import KIB, SimClock
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import (
    CompactDownRouter,
    CompactionExecutor,
    LargestFilePicker,
)
from repro.lsm.layout import build_layout
from repro.lsm.options import DBOptions
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.storage import StorageBackend


def make_env(pin_reserve=0.5):
    options = DBOptions(
        memtable_bytes=4 * KIB,
        target_file_bytes=4 * KIB,
        level1_target_bytes=8 * KIB,
        level_size_multiplier=4,
        block_bytes=1 * KIB,
        pin_reserve_fraction=pin_reserve,
    )
    clock = SimClock()
    backend = StorageBackend(clock)
    layout = build_layout("NNNNN", options, clock)
    manifest = LevelManifest(options.num_levels)
    executor = CompactionExecutor(
        backend, manifest, layout, options, BlockCache(64 * KIB),
        LargestFilePicker(), CompactDownRouter(),
    )
    return options, backend, layout, manifest, executor


def add_table(backend, layout, manifest, level, keys, *, score=0.0, seqno_base=0):
    builder = SSTableBuilder(
        backend, layout.tier_for_level(level), block_bytes=1 * KIB, target_file_bytes=1 << 30
    )
    for i, key in enumerate(sorted(keys)):
        builder.add(Record(key, seqno_base + i + 1, ValueKind.PUT, b"v" * 40))
    table, _ = builder.finish()
    table.popularity_score = score
    manifest.add_file(level, table)
    return table


class TestPinReserveScoring:
    def test_hot_bytes_counts_positive_scores_only(self):
        _, backend, layout, manifest, executor = make_env()
        cold = add_table(backend, layout, manifest, 1, [b"a"], score=0.0)
        hot = add_table(backend, layout, manifest, 1, [b"m"], score=5.0, seqno_base=10)
        assert executor.hot_bytes(1) == hot.size_bytes
        assert executor.hot_bytes(2) == 0

    def test_hot_data_discounted_from_score(self):
        options, backend, layout, manifest, executor = make_env(pin_reserve=1.0)
        # Fill L1 beyond target with HOT data only: the reserve absorbs
        # it and the level does not demand compaction.
        keys = [f"k{i:03d}".encode() for i in range(180)]
        add_table(backend, layout, manifest, 1, keys, score=100.0)
        assert manifest.level_bytes(1) > options.level_target_bytes(1)
        assert executor.compaction_score(1) < 1.0

    def test_cold_overflow_still_triggers(self):
        options, backend, layout, manifest, executor = make_env(pin_reserve=1.0)
        keys = [f"k{i:03d}".encode() for i in range(180)]
        add_table(backend, layout, manifest, 1, keys, score=0.0)
        assert executor.compaction_score(1) > 1.0

    def test_reserve_is_capped(self):
        options, backend, layout, manifest, executor = make_env(pin_reserve=0.25)
        # Hot data way beyond the reserve: only the reserve is discounted.
        keys = [f"k{i:03d}".encode() for i in range(300)]
        add_table(backend, layout, manifest, 1, keys, score=50.0)
        target = options.level_target_bytes(1)
        expected = (manifest.level_bytes(1) - int(target * 0.25)) / target
        assert executor.compaction_score(1) == pytest.approx(expected)


class TestSchedulingEdges:
    def test_max_jobs_cap_bounds_one_call(self):
        options, backend, layout, manifest, executor = make_env()
        # A pathological pile of overlapping L0 files.
        for i in range(10):
            add_table(backend, layout, manifest, 0, [b"a", b"z"], seqno_base=i * 10)
        jobs = executor.maybe_compact()
        assert jobs <= executor.MAX_JOBS_PER_CALL

    def test_empty_tree_needs_nothing(self):
        _, _, _, _, executor = make_env()
        assert executor.pick_compaction_level() is None
        assert executor.maybe_compact() == 0

    def test_run_job_on_empty_level_is_noop(self):
        _, _, _, manifest, executor = make_env()
        executor.run_job(1)
        assert executor.stats.compactions == 0
        assert manifest.file_count() == 0

    def test_compaction_cascade_terminates(self):
        options, backend, layout, manifest, executor = make_env()
        # Dump far more data than L1's target and let the executor work
        # it all the way down.
        for batch in range(12):
            keys = [f"k{batch:02d}{i:03d}".encode() for i in range(60)]
            add_table(backend, layout, manifest, 0, keys, seqno_base=batch * 100)
            executor.maybe_compact()
        assert executor.pick_compaction_level() is None
        manifest.check_invariants()
