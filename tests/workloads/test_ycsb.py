"""Tests for the YCSB workload definition."""

from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.workloads.ycsb import OpKind, YCSBConfig, YCSBWorkload


class TestConfig:
    def test_defaults_are_papers_setup(self):
        config = YCSBConfig()
        assert config.read_proportion == 0.95
        assert config.update_proportion == 0.05
        assert config.distribution == "zipfian"
        assert config.zipf_theta == 0.99

    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            YCSBConfig(read_proportion=0.5, update_proportion=0.2)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            YCSBConfig(record_count=0)
        with pytest.raises(ConfigError):
            YCSBConfig(value_bytes=0)
        with pytest.raises(ConfigError):
            YCSBConfig(operation_count=-1)

    def test_read_update_shorthand(self):
        config = YCSBConfig.read_update(80)
        assert config.read_proportion == pytest.approx(0.8)
        assert config.update_proportion == pytest.approx(0.2)
        with pytest.raises(ConfigError):
            YCSBConfig.read_update(101)


class TestStreams:
    def test_load_inserts_every_key_once(self):
        workload = YCSBWorkload(YCSBConfig(record_count=50, operation_count=0))
        requests = list(workload.load_stream())
        assert len(requests) == 50
        assert all(r.kind == OpKind.INSERT for r in requests)
        assert len({r.key for r in requests}) == 50

    def test_key_format(self):
        workload = YCSBWorkload(YCSBConfig())
        assert workload.key(7) == b"user000000000007"

    def test_values_have_configured_size(self):
        workload = YCSBWorkload(YCSBConfig(record_count=10, operation_count=20, value_bytes=37))
        for request in workload.load_stream():
            assert len(request.value) == 37

    def test_run_mix_matches_proportions(self):
        config = YCSBConfig(record_count=100, operation_count=4000)
        workload = YCSBWorkload(config)
        counts = Counter(r.kind for r in workload.run_stream())
        assert counts[OpKind.READ] / 4000 == pytest.approx(0.95, abs=0.02)
        assert counts[OpKind.UPDATE] / 4000 == pytest.approx(0.05, abs=0.02)

    def test_run_stream_deterministic(self):
        config = YCSBConfig(record_count=100, operation_count=200, seed=5)
        a = [(r.kind, r.key, r.value) for r in YCSBWorkload(config).run_stream()]
        b = [(r.kind, r.key, r.value) for r in YCSBWorkload(config).run_stream()]
        assert a == b

    def test_different_seeds_differ(self):
        reqs = lambda seed: [
            r.key
            for r in YCSBWorkload(
                YCSBConfig(record_count=100, operation_count=100, seed=seed)
            ).run_stream()
        ]
        assert reqs(1) != reqs(2)

    def test_warmup_differs_from_run(self):
        config = YCSBConfig(record_count=100, operation_count=100, warmup_operations=100)
        workload = YCSBWorkload(config)
        warmup = [r.key for r in workload.warmup_stream()]
        run = [r.key for r in workload.run_stream()]
        assert warmup != run
        assert len(warmup) == 100

    def test_keys_stay_in_keyspace(self):
        config = YCSBConfig(record_count=50, operation_count=500)
        workload = YCSBWorkload(config)
        valid = {workload.key(i) for i in range(50)}
        for request in workload.run_stream():
            assert request.key in valid

    def test_inserts_extend_keyspace(self):
        config = YCSBConfig(
            record_count=50,
            operation_count=300,
            read_proportion=0.5,
            update_proportion=0.0,
            insert_proportion=0.5,
        )
        workload = YCSBWorkload(config)
        keys = {r.key for r in workload.run_stream() if r.kind == OpKind.INSERT}
        assert all(int(k[4:]) >= 50 for k in keys)

    def test_scan_requests(self):
        config = YCSBConfig(
            record_count=50,
            operation_count=200,
            read_proportion=0.5,
            update_proportion=0.0,
            scan_proportion=0.5,
            max_scan_length=10,
        )
        workload = YCSBWorkload(config)
        scans = [r for r in workload.run_stream() if r.kind == OpKind.SCAN]
        assert scans
        assert all(1 <= r.scan_length <= 10 for r in scans)

    def test_total_data_bytes_scales(self):
        small = YCSBWorkload(YCSBConfig(record_count=10, operation_count=0)).total_data_bytes()
        large = YCSBWorkload(YCSBConfig(record_count=100, operation_count=0)).total_data_bytes()
        assert large == 10 * small

    def test_latest_distribution_stream(self):
        config = YCSBConfig(
            record_count=200, operation_count=300, distribution="latest"
        )
        workload = YCSBWorkload(config)
        keys = [r.key for r in workload.run_stream()]
        # "latest" favours the end of the keyspace.
        hot = sum(1 for k in keys if int(k[4:]) > 150)
        assert hot > len(keys) * 0.4
