"""Tests for key-distribution generators."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.workloads.zipfian import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_generator,
)


class TestUniform:
    def test_bounds(self):
        gen = UniformGenerator(100, random.Random(1))
        samples = [gen.next_index() for _ in range(2000)]
        assert min(samples) >= 0
        assert max(samples) < 100

    def test_roughly_uniform(self):
        gen = UniformGenerator(10, random.Random(2))
        counts = Counter(gen.next_index() for _ in range(10_000))
        assert all(800 < counts[i] < 1200 for i in range(10))

    def test_rejects_empty_keyspace(self):
        with pytest.raises(ConfigError):
            UniformGenerator(0, random.Random(1))


class TestZipfian:
    def test_bounds(self):
        gen = ZipfianGenerator(1000, 0.99, random.Random(3))
        samples = [gen.next_index() for _ in range(5000)]
        assert min(samples) >= 0
        assert max(samples) < 1000

    def test_rank_zero_is_hottest(self):
        gen = ZipfianGenerator(1000, 0.99, random.Random(4))
        counts = Counter(gen.next_index() for _ in range(20_000))
        assert counts[0] == max(counts.values())
        assert counts[0] > counts.get(100, 0)

    def test_higher_theta_is_more_skewed(self):
        def top_share(theta):
            gen = ZipfianGenerator(1000, theta, random.Random(5))
            counts = Counter(gen.next_index() for _ in range(20_000))
            return sum(counts[i] for i in range(10)) / 20_000

        assert top_share(1.4) > top_share(0.6)

    def test_frequency_matches_zipf_law(self):
        theta = 0.99
        gen = ZipfianGenerator(100, theta, random.Random(6))
        counts = Counter(gen.next_index() for _ in range(100_000))
        # f(0)/f(9) should be about 10^theta.
        ratio = counts[0] / counts[9]
        assert ratio == pytest.approx(10**theta, rel=0.3)

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigError):
            ZipfianGenerator(100, 1.0, random.Random(1))
        with pytest.raises(ConfigError):
            ZipfianGenerator(100, 0.0, random.Random(1))


class TestScrambledZipfian:
    def test_hot_keys_spread_across_keyspace(self):
        gen = ScrambledZipfianGenerator(10_000, 0.99, random.Random(7))
        counts = Counter(gen.next_index() for _ in range(30_000))
        top10 = [key for key, _ in counts.most_common(10)]
        # Hot keys should not all cluster at the low end of the range.
        assert max(top10) > 5000

    def test_still_skewed(self):
        gen = ScrambledZipfianGenerator(1000, 0.99, random.Random(8))
        counts = Counter(gen.next_index() for _ in range(20_000))
        top_share = sum(count for _, count in counts.most_common(10)) / 20_000
        assert top_share > 0.2

    def test_deterministic_for_seed(self):
        a = ScrambledZipfianGenerator(1000, 0.99, random.Random(9))
        b = ScrambledZipfianGenerator(1000, 0.99, random.Random(9))
        assert [a.next_index() for _ in range(50)] == [b.next_index() for _ in range(50)]


class TestLatest:
    def test_most_recent_is_hottest(self):
        gen = LatestGenerator(1000, 0.99, random.Random(10))
        counts = Counter(gen.next_index() for _ in range(20_000))
        assert counts[999] == max(counts.values())

    def test_note_insert_shifts_hotspot(self):
        gen = LatestGenerator(1000, 0.99, random.Random(11))
        for _ in range(50):
            gen.note_insert()
        counts = Counter(gen.next_index() for _ in range(20_000))
        assert counts[1049] == max(counts.values())

    def test_bounds_after_inserts(self):
        gen = LatestGenerator(10, 0.99, random.Random(12))
        gen.note_insert()
        samples = [gen.next_index() for _ in range(1000)]
        assert all(0 <= s <= 10 for s in samples)


class TestFactory:
    def test_known_names(self):
        rng = random.Random(13)
        assert isinstance(make_generator("uniform", 10, 0.99, rng), UniformGenerator)
        assert isinstance(make_generator("zipfian", 10, 0.99, rng), ScrambledZipfianGenerator)
        assert isinstance(make_generator("latest", 10, 0.99, rng), LatestGenerator)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_generator("gaussian", 10, 0.99, random.Random(1))


class TestZetaCache:
    def test_cached_value_is_the_exact_direct_sum(self):
        from repro.workloads.zipfian import _ZETA_CACHE, _zeta

        _ZETA_CACHE.clear()
        cold = _zeta(5000, 0.99)
        direct = float(sum(1.0 / (i**0.99) for i in range(1, 5001)))
        assert cold == direct
        assert _zeta(5000, 0.99) == cold  # warm hit, identical float

    def test_sampling_identical_with_warm_cache(self):
        from repro.workloads.zipfian import _ZETA_CACHE

        _ZETA_CACHE.clear()
        cold = ZipfianGenerator(10_000, 0.99, random.Random(42))
        cold_draws = [cold.next_index() for _ in range(500)]
        warm = ZipfianGenerator(10_000, 0.99, random.Random(42))
        warm_draws = [warm.next_index() for _ in range(500)]
        assert cold_draws == warm_draws
