"""Tests for trace recording and replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.workloads.trace import (
    TraceWorkload,
    dump_trace,
    format_request,
    load_trace,
    parse_request,
)
from repro.workloads.ycsb import OpKind, Request, YCSBConfig, YCSBWorkload


class TestLineCodec:
    def test_read_round_trip(self):
        request = Request(OpKind.READ, b"key\x00\xff")
        assert parse_request(format_request(request)) == request

    def test_update_round_trip(self):
        request = Request(OpKind.UPDATE, b"k", b"value bytes \x01")
        assert parse_request(format_request(request)) == request

    def test_insert_round_trip(self):
        request = Request(OpKind.INSERT, b"k", b"v")
        assert parse_request(format_request(request)) == request

    def test_scan_round_trip(self):
        request = Request(OpKind.SCAN, b"start", scan_length=42)
        assert parse_request(format_request(request)) == request

    def test_bad_lines_rejected(self):
        for line in (
            "",
            "NOPE\tff",
            "READ",
            "READ\tzz",
            "READ\tff\textra",
            "UPDATE\tff",
            "UPDATE\tff\tzz",
            "SCAN\tff",
            "SCAN\tff\tnot-a-number",
            "SCAN\tff\t-1",
        ):
            with pytest.raises(CorruptionError):
                parse_request(line, 7)

    @given(
        st.sampled_from(list(OpKind)),
        st.binary(min_size=1, max_size=32),
        st.binary(max_size=32),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, kind, key, value, scan_length):
        if kind == OpKind.READ:
            request = Request(kind, key)
        elif kind == OpKind.SCAN:
            request = Request(kind, key, scan_length=scan_length)
        else:
            request = Request(kind, key, value)
        assert parse_request(format_request(request)) == request


class TestTraceFiles:
    def test_dump_and_load(self, tmp_path):
        config = YCSBConfig(record_count=50, operation_count=120)
        workload = YCSBWorkload(config)
        path = tmp_path / "run.trace"
        count = dump_trace(workload.run_stream(), path)
        assert count == 120
        replayed = list(load_trace(path))
        original = list(workload.run_stream())
        assert replayed == original

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("READ\taa\n\nREAD\tbb\n")
        assert len(list(load_trace(path))) == 2

    def test_trace_workload_phases(self, tmp_path):
        config = YCSBConfig(record_count=30, operation_count=40, warmup_operations=20)
        workload = YCSBWorkload(config)
        load_path = tmp_path / "load.trace"
        warm_path = tmp_path / "warm.trace"
        run_path = tmp_path / "run.trace"
        dump_trace(workload.load_stream(), load_path)
        dump_trace(workload.warmup_stream(), warm_path)
        dump_trace(workload.run_stream(), run_path)
        trace = TraceWorkload(load_path, run_path, warmup_path=warm_path)
        assert len(list(trace.load_stream())) == 30
        assert len(list(trace.warmup_stream())) == 20
        assert len(list(trace.run_stream())) == 40
        assert trace.total_data_bytes() == workload.total_data_bytes()

    def test_no_warmup_is_empty(self, tmp_path):
        path = tmp_path / "x.trace"
        path.write_text("READ\taa\n")
        trace = TraceWorkload(path, path)
        assert list(trace.warmup_stream()) == []

    def test_trace_drives_runner(self, tmp_path):
        from repro.bench.harness import SystemConfig, WorkloadRunner, build_system

        config = YCSBConfig(record_count=500, operation_count=400)
        workload = YCSBWorkload(config)
        load_path = tmp_path / "load.trace"
        run_path = tmp_path / "run.trace"
        dump_trace(workload.load_stream(), load_path)
        dump_trace(workload.run_stream(), run_path)
        trace = TraceWorkload(load_path, run_path)

        db = build_system(SystemConfig(system="rocksdb"), workload)
        runner = WorkloadRunner(db)
        runner.load(trace)
        elapsed = runner.run(trace)
        assert elapsed > 0
        assert len(runner.read_latency) + len(runner.update_latency) == 400
