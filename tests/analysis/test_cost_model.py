"""Tests for the Fig. 4 / Table 3 cost model."""

import pytest

from repro.analysis import (
    ConfigEvaluation,
    default_level_profiles,
    enumerate_configs,
    evaluate_config,
    pareto_frontier,
    table3_costs,
)
from repro.common import GIB, MIB
from repro.errors import ConfigError


class TestLevelProfiles:
    def test_default_shape(self):
        profiles = default_level_profiles()
        assert len(profiles) == 5
        assert sum(p.read_fraction for p in profiles) == pytest.approx(1.0)

    def test_bottom_level_dominates_size(self):
        profiles = default_level_profiles()
        total = sum(p.size_bytes for p in profiles)
        assert profiles[-1].size_bytes / total > 0.8

    def test_sizes_follow_multiplier(self):
        profiles = default_level_profiles(size_multiplier=8)
        assert profiles[-1].size_bytes / profiles[-2].size_bytes == pytest.approx(8, rel=0.01)

    def test_mismatched_tuples_rejected(self):
        with pytest.raises(ConfigError):
            default_level_profiles(read_fractions=(0.5, 0.5))


class TestEvaluateConfig:
    def test_homogeneous_latency_equals_device(self):
        profiles = default_level_profiles()
        evaluation = evaluate_config("QQQQQ", profiles)
        assert evaluation.avg_read_latency_usec == pytest.approx(391.0)
        assert evaluation.is_homogeneous

    def test_faster_tops_lower_latency(self):
        profiles = default_level_profiles()
        het = evaluate_config("NNNTQ", profiles)
        qlc = evaluate_config("QQQQQ", profiles)
        nvm = evaluate_config("NNNNN", profiles)
        assert nvm.avg_read_latency_usec < het.avg_read_latency_usec < qlc.avg_read_latency_usec
        assert qlc.cost_dollars < het.cost_dollars < nvm.cost_dollars

    def test_bad_code_rejected(self):
        profiles = default_level_profiles()
        with pytest.raises(ConfigError):
            evaluate_config("NNX", profiles)
        with pytest.raises(ConfigError):
            evaluate_config("NNNTX", profiles)

    def test_high_write_rate_inflates_qlc_cost(self):
        cheap = evaluate_config("QQQQQ", default_level_profiles(total_write_rate_bps=1024))
        pricey = evaluate_config(
            "QQQQQ", default_level_profiles(total_write_rate_bps=50 * MIB)
        )
        assert pricey.cost_dollars > cheap.cost_dollars

    def test_table3_matches_paper_within_tolerance(self):
        # Paper: QQQQQ=$22, NNNTQ=$37, TTTTT=$89, NNNNN=$289.
        costs = table3_costs()
        paper = {"QQQQQ": 22, "NNNTQ": 37, "TTTTT": 89, "NNNNN": 289}
        for code, expected in paper.items():
            assert costs[code] == pytest.approx(expected, rel=0.10)

    def test_table3_ordering(self):
        costs = table3_costs()
        assert costs["QQQQQ"] < costs["NNNTQ"] < costs["TTTTT"] < costs["NNNNN"]


class TestEnumerationAndFrontier:
    def test_enumerates_all_243(self):
        evaluations = enumerate_configs()
        assert len(evaluations) == 243
        assert len({e.code for e in evaluations}) == 243

    def test_frontier_contains_extremes(self):
        frontier = pareto_frontier(enumerate_configs())
        codes = {e.code for e in frontier}
        assert "NNNNN" in codes  # fastest
        assert "QQQQQ" in codes  # cheapest

    def test_papers_default_config_is_efficient(self):
        frontier = pareto_frontier(enumerate_configs())
        assert "NNNTQ" in {e.code for e in frontier}

    def test_frontier_is_nondominated(self):
        frontier = pareto_frontier(enumerate_configs())
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    b.avg_read_latency_usec <= a.avg_read_latency_usec
                    and b.cost_dollars <= a.cost_dollars
                    and (
                        b.avg_read_latency_usec < a.avg_read_latency_usec
                        or b.cost_dollars < a.cost_dollars
                    )
                )
                assert not dominates

    def test_frontier_sorted_by_latency(self):
        frontier = pareto_frontier(enumerate_configs())
        latencies = [e.avg_read_latency_usec for e in frontier]
        assert latencies == sorted(latencies)
