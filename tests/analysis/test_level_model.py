"""Tests for the analytic LSM sizing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.level_model import (
    levels_required,
    optimal_multiplier,
    pin_reserve_impact,
    write_amplification_estimate,
)
from repro.common import GIB, MIB
from repro.errors import ConfigError


class TestLevelsRequired:
    def test_single_level_when_it_fits(self):
        assert levels_required(1 * MIB, 2 * MIB, 10) == 1

    def test_exponential_growth(self):
        # L1=1MiB, x10: capacities 1, 11, 111 MiB...
        assert levels_required(10 * MIB, 1 * MIB, 10) == 2
        assert levels_required(100 * MIB, 1 * MIB, 10) == 3

    def test_larger_multiplier_needs_fewer_levels(self):
        small = levels_required(10 * GIB, 1 * MIB, 4)
        large = levels_required(10 * GIB, 1 * MIB, 16)
        assert large < small

    def test_validation(self):
        with pytest.raises(ConfigError):
            levels_required(0, 1, 10)
        with pytest.raises(ConfigError):
            levels_required(1, 0, 10)
        with pytest.raises(ConfigError):
            levels_required(1, 1, 1)

    @given(st.integers(1, 10**12), st.integers(1, 10**9), st.integers(2, 32))
    @settings(max_examples=50, deadline=None)
    def test_capacity_actually_sufficient(self, db, level1, multiplier):
        levels = levels_required(db, level1, multiplier)
        capacity = sum(level1 * multiplier**i for i in range(levels))
        assert capacity >= db
        if levels > 1:
            smaller = sum(level1 * multiplier**i for i in range(levels - 1))
            assert smaller < db


class TestWriteAmplification:
    def test_grows_with_levels(self):
        assert write_amplification_estimate(5, 10) > write_amplification_estimate(3, 10)

    def test_grows_with_multiplier(self):
        assert write_amplification_estimate(4, 16) > write_amplification_estimate(4, 4)

    def test_wal_adds_one(self):
        with_wal = write_amplification_estimate(3, 10, wal=True)
        without = write_amplification_estimate(3, 10, wal=False)
        assert with_wal == pytest.approx(without + 1.0)

    def test_worst_case_higher_than_average(self):
        worst = write_amplification_estimate(4, 10, merge_fullness=1.0)
        average = write_amplification_estimate(4, 10, merge_fullness=0.5)
        assert worst > average

    def test_engine_measurement_is_in_model_ballpark(self):
        # Our engine measures WA ~9 on the default bench tree (4 live
        # levels below L0, multiplier 10); the analytic estimate should
        # be the same order of magnitude.
        estimate = write_amplification_estimate(4, 10)
        assert 5.0 < estimate < 40.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            write_amplification_estimate(0, 10)
        with pytest.raises(ConfigError):
            write_amplification_estimate(3, 1)
        with pytest.raises(ConfigError):
            write_amplification_estimate(3, 10, merge_fullness=2.0)


class TestOptimalMultiplier:
    def test_returns_valid_multiplier(self):
        m = optimal_multiplier(10 * GIB, 64 * MIB)
        assert 2 <= m <= 64

    def test_optimum_beats_neighbours(self):
        db, level1 = 100 * GIB, 64 * MIB
        best = optimal_multiplier(db, level1)
        best_wa = write_amplification_estimate(levels_required(db, level1, best), best)
        for other in (2, 10, 32, 64):
            wa = write_amplification_estimate(levels_required(db, level1, other), other)
            assert best_wa <= wa + 1e-9


class TestPinReserveImpact:
    def test_zero_reserve_is_free(self):
        impact = pin_reserve_impact(4, 10, 0.0)
        assert impact.overhead_fraction == pytest.approx(0.0)

    def test_reserve_costs_amplification(self):
        impact = pin_reserve_impact(4, 10, 0.5)
        assert impact.write_amplification > impact.baseline_write_amplification
        assert 0.0 < impact.overhead_fraction < 1.0

    def test_monotone_in_reserve(self):
        small = pin_reserve_impact(4, 10, 0.2).overhead_fraction
        large = pin_reserve_impact(4, 10, 0.8).overhead_fraction
        assert large > small

    def test_validation(self):
        with pytest.raises(ConfigError):
            pin_reserve_impact(4, 10, 1.0)
