"""Tests for amplification accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import IOBreakdown, read_amplification, write_amplification


def breakdown(**kwargs):
    defaults = dict(user_write_bytes=1000, user_read_bytes=1000)
    defaults.update(kwargs)
    return IOBreakdown(**defaults)


class TestIOBreakdown:
    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            breakdown(wal_bytes=-1)

    def test_totals(self):
        io = breakdown(
            wal_bytes=10,
            flush_bytes=20,
            compaction_write_bytes=30,
            migration_bytes=5,
            compaction_read_bytes=40,
            foreground_read_bytes=50,
        )
        assert io.total_device_write_bytes == 65
        assert io.total_device_read_bytes == 95


class TestWriteAmplification:
    def test_no_user_writes_is_zero(self):
        assert write_amplification(breakdown(user_write_bytes=0)) == 0.0

    def test_wal_plus_flush_is_at_least_two(self):
        io = breakdown(user_write_bytes=100, wal_bytes=100, flush_bytes=100)
        assert write_amplification(io) == pytest.approx(2.0)

    def test_compaction_inflates(self):
        base = breakdown(user_write_bytes=100, flush_bytes=100)
        more = breakdown(user_write_bytes=100, flush_bytes=100, compaction_write_bytes=400)
        assert write_amplification(more) > write_amplification(base)

    @given(st.integers(1, 10**9), st.integers(0, 10**9), st.integers(0, 10**9))
    def test_never_negative(self, user, wal, compaction):
        io = breakdown(user_write_bytes=user, wal_bytes=wal, compaction_write_bytes=compaction)
        assert write_amplification(io) >= 0.0


class TestReadAmplification:
    def test_no_user_reads_is_zero(self):
        assert read_amplification(breakdown(user_read_bytes=0)) == 0.0

    def test_block_granularity_shows_up(self):
        # Reading 4 KB blocks to serve 100 B objects -> RA of ~40.
        io = breakdown(user_read_bytes=100, foreground_read_bytes=4096)
        assert read_amplification(io) == pytest.approx(40.96)
