"""Tests for unit helpers and deterministic RNG derivation."""

import pytest

from repro.common import (
    GIB,
    KIB,
    MIB,
    bytes_to_gib,
    derive_seed,
    fnv1a_64,
    format_bytes,
    format_usec,
    make_rng,
    milliseconds,
    seconds,
    usec_to_seconds,
)


class TestUnits:
    def test_binary_units(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_time_conversions_round_trip(self):
        assert seconds(1) == 1_000_000.0
        assert milliseconds(1) == 1_000.0
        assert usec_to_seconds(seconds(2.5)) == pytest.approx(2.5)

    def test_bytes_to_gib(self):
        assert bytes_to_gib(GIB) == 1.0
        assert bytes_to_gib(512 * MIB) == 0.5

    def test_format_bytes(self):
        assert format_bytes(100) == "100 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * MIB) == "3.0 MiB"

    def test_format_usec(self):
        assert format_usec(500) == "500.0 us"
        assert format_usec(2500) == "2.50 ms"
        assert format_usec(3_000_000) == "3.00 s"


class TestRng:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_derive_seed_differs_by_label(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_derive_seed_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_path_is_not_ambiguous(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_make_rng_streams_are_reproducible(self):
        a = make_rng(9, "workload")
        b = make_rng(9, "workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_fnv1a_is_stable(self):
        # Known FNV-1a 64-bit value for empty input is the offset basis.
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"key") == fnv1a_64(b"key")
        assert fnv1a_64(b"key1") != fnv1a_64(b"key2")

    def test_fnv1a_fits_64_bits(self):
        assert fnv1a_64(b"some longer input value") < (1 << 64)
