"""Tests for latency recording and counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import CounterSet, LatencyRecorder, throughput_kops


class TestLatencyRecorder:
    def test_empty_summary_is_zero(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.p99 == 0.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_single_sample(self):
        rec = LatencyRecorder()
        rec.record(42.0)
        summary = rec.summary()
        assert summary.count == 1
        assert summary.mean == 42.0
        assert summary.p50 == 42.0
        assert summary.p99 == 42.0
        assert summary.maximum == 42.0

    def test_percentiles_on_uniform_ramp(self):
        rec = LatencyRecorder()
        for i in range(1, 101):
            rec.record(float(i))
        summary = rec.summary()
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.maximum == 100.0
        assert summary.mean == pytest.approx(50.5)

    def test_percentile_method_bounds(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.percentile(101.0)
        with pytest.raises(ValueError):
            rec.percentile(-1.0)

    def test_len_tracks_samples(self):
        rec = LatencyRecorder()
        assert len(rec) == 0
        rec.record(1.0)
        rec.record(2.0)
        assert len(rec) == 2

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    def test_summary_invariants(self, samples):
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        summary = rec.summary()
        assert summary.count == len(samples)
        assert min(samples) <= summary.p50 <= summary.maximum
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        assert summary.maximum == max(samples)


class TestCounterSet:
    def test_default_is_zero(self):
        assert CounterSet().get("nope") == 0

    def test_add_accumulates(self):
        counters = CounterSet()
        counters.add("reads")
        counters.add("reads", 4)
        assert counters.get("reads") == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1)

    def test_as_dict_is_a_copy(self):
        counters = CounterSet()
        counters.add("a", 1)
        snapshot = counters.as_dict()
        snapshot["a"] = 99
        assert counters.get("a") == 1


class TestThroughput:
    def test_zero_elapsed_gives_zero(self):
        assert throughput_kops(100, 0.0) == 0.0

    def test_kops_conversion(self):
        # 1000 ops in one simulated second = 1 kops.
        assert throughput_kops(1000, 1_000_000.0) == pytest.approx(1.0)
