"""Tests for latency recording and counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import CounterSet, LatencyRecorder, nearest_rank, throughput_kops


class TestLatencyRecorder:
    def test_empty_summary_is_zero(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.p99 == 0.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_single_sample(self):
        rec = LatencyRecorder()
        rec.record(42.0)
        summary = rec.summary()
        assert summary.count == 1
        assert summary.mean == 42.0
        assert summary.p50 == 42.0
        assert summary.p99 == 42.0
        assert summary.maximum == 42.0

    def test_percentiles_on_uniform_ramp(self):
        rec = LatencyRecorder()
        for i in range(1, 101):
            rec.record(float(i))
        summary = rec.summary()
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.maximum == 100.0
        assert summary.mean == pytest.approx(50.5)

    def test_percentile_method_bounds(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.percentile(101.0)
        with pytest.raises(ValueError):
            rec.percentile(-1.0)

    def test_len_tracks_samples(self):
        rec = LatencyRecorder()
        assert len(rec) == 0
        rec.record(1.0)
        rec.record(2.0)
        assert len(rec) == 2

    def test_two_samples_nearest_rank(self):
        # Nearest-rank is ceil(p/100*n): rank 1 for p50 of two samples,
        # and any pct above 50 already needs the second sample.
        rec = LatencyRecorder()
        rec.record(1.0)
        rec.record(2.0)
        assert rec.percentile(50.0) == 1.0
        assert rec.percentile(50.1) == 2.0
        assert rec.percentile(99.0) == 2.0
        summary = rec.summary()
        assert summary.p50 == 1.0
        assert summary.p95 == 2.0

    def test_three_samples_nearest_rank(self):
        rec = LatencyRecorder()
        for v in (30.0, 10.0, 20.0):
            rec.record(v)
        # ceil(0.5*3)=2 -> the middle sample; ceil(0.95*3)=3 -> the max.
        assert rec.percentile(50.0) == 20.0
        assert rec.percentile(95.0) == 30.0
        assert rec.percentile(0.0) == 10.0
        assert rec.percentile(100.0) == 30.0

    def test_nearest_rank_function(self):
        assert nearest_rank([5.0], 50.0) == 5.0
        assert nearest_rank([1.0, 2.0], 50.0) == 1.0
        assert nearest_rank([1.0, 2.0, 3.0], 50.0) == 2.0
        # Percentile 0 clamps to rank 1, not rank 0.
        assert nearest_rank([1.0, 2.0, 3.0], 0.0) == 1.0

    def test_median_of_five_is_the_middle_sample(self):
        # Regression: the round()-based rank used banker's rounding, so
        # p50 of five samples hit round(2.5)=2 -> the *second* sample
        # instead of the median. ceil(2.5)=3 picks the true middle.
        rec = LatencyRecorder()
        for v in (10.0, 20.0, 30.0, 40.0, 50.0):
            rec.record(v)
        assert rec.percentile(50.0) == 30.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    def test_summary_invariants(self, samples):
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        summary = rec.summary()
        assert summary.count == len(samples)
        assert min(samples) <= summary.p50 <= summary.maximum
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        assert summary.maximum == max(samples)


class TestCounterSet:
    def test_default_is_zero(self):
        assert CounterSet().get("nope") == 0

    def test_add_accumulates(self):
        counters = CounterSet()
        counters.add("reads")
        counters.add("reads", 4)
        assert counters.get("reads") == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1)

    def test_as_dict_is_a_copy(self):
        counters = CounterSet()
        counters.add("a", 1)
        snapshot = counters.as_dict()
        snapshot["a"] = 99
        assert counters.get("a") == 1


class TestThroughput:
    def test_zero_elapsed_gives_zero(self):
        assert throughput_kops(100, 0.0) == 0.0

    def test_kops_conversion(self):
        # 1000 ops in one simulated second = 1 kops.
        assert throughput_kops(1000, 1_000_000.0) == pytest.approx(1.0)


class TestLatencyRecorderLazySort:
    def test_summary_correct_after_interleaved_records(self):
        recorder = LatencyRecorder()
        recorder.record(5.0)
        recorder.record(1.0)
        assert recorder.summary().p50 == 1.0
        recorder.record(9.0)  # invalidates the cached sort by length
        summary = recorder.summary()
        assert summary.p50 == 5.0
        assert summary.maximum == 9.0

    def test_repeated_summaries_reuse_one_sort(self):
        recorder = LatencyRecorder()
        for value in (3.0, 1.0, 2.0):
            recorder.record(value)
        first = recorder._sorted_samples()
        recorder.summary()
        recorder.percentile(95.0)
        assert recorder._sorted_samples() is first

    def test_merge_combines_populations(self):
        a = LatencyRecorder()
        b = LatencyRecorder()
        for value in (1.0, 2.0):
            a.record(value)
        for value in (10.0, 20.0):
            b.record(value)
        a.merge(b)
        assert len(a) == 4
        assert a.summary().maximum == 20.0
        assert len(b) == 2  # source unchanged

    def test_merge_after_summary_invalidates_cache(self):
        a = LatencyRecorder()
        a.record(1.0)
        assert a.summary().maximum == 1.0
        b = LatencyRecorder()
        b.record(7.0)
        a.merge(b)
        assert a.summary().maximum == 7.0

    def test_merge_self_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.merge(recorder)
