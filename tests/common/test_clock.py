"""Tests for the simulated clock."""

import pytest

from repro.common import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now == 12.5

    def test_advance_returns_new_time(self):
        clock = SimClock(1.0)
        assert clock.advance(4.0) == 5.0

    def test_advance_rejects_negative_delta(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_zero_is_allowed(self):
        clock = SimClock(3.0)
        clock.advance(0.0)
        assert clock.now == 3.0

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now == 100.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(50.0)
        clock.advance_to(10.0)
        assert clock.now == 50.0


class TestClockObservers:
    def test_observer_fires_on_advance(self):
        clock = SimClock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(5.0)
        clock.advance(2.0)
        assert seen == [5.0, 7.0]

    def test_observer_fires_on_advance_to(self):
        clock = SimClock(10.0)
        seen = []
        clock.subscribe(seen.append)
        clock.advance_to(25.0)
        assert seen == [25.0]

    def test_no_fire_when_time_does_not_move(self):
        clock = SimClock(10.0)
        seen = []
        clock.subscribe(seen.append)
        clock.advance(0.0)
        clock.advance_to(5.0)  # past: no-op
        assert seen == []

    def test_unsubscribe_stops_notifications(self):
        clock = SimClock()
        seen = []
        observer = clock.subscribe(seen.append)
        clock.advance(1.0)
        clock.unsubscribe(observer)
        clock.advance(1.0)
        assert seen == [1.0]

    def test_unsubscribe_unknown_is_noop(self):
        clock = SimClock()
        clock.unsubscribe(lambda now: None)  # must not raise

    def test_observers_fire_in_subscription_order(self):
        clock = SimClock()
        order = []
        clock.subscribe(lambda now: order.append("a"))
        clock.subscribe(lambda now: order.append("b"))
        clock.advance(1.0)
        assert order == ["a", "b"]

    def test_observer_sees_committed_time(self):
        clock = SimClock()
        inside = []
        clock.subscribe(lambda now: inside.append(clock.now == now))
        clock.advance(3.0)
        assert inside == [True]
