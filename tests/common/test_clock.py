"""Tests for the simulated clock."""

import pytest

from repro.common import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now == 12.5

    def test_advance_returns_new_time(self):
        clock = SimClock(1.0)
        assert clock.advance(4.0) == 5.0

    def test_advance_rejects_negative_delta(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_zero_is_allowed(self):
        clock = SimClock(3.0)
        clock.advance(0.0)
        assert clock.now == 3.0

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now == 100.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(50.0)
        clock.advance_to(10.0)
        assert clock.now == 50.0
