"""Tests for the CLOCK tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapper import ClockDistributionMapper
from repro.core.tracker import UNTRACKED, ClockTracker
from repro.errors import ConfigError


def make_tracker(capacity=8, clock_bits=2):
    mapper = ClockDistributionMapper(max_clock=(1 << clock_bits) - 1)
    return ClockTracker(capacity, mapper, clock_bits=clock_bits), mapper


class TestBasics:
    def test_rejects_bad_config(self):
        mapper = ClockDistributionMapper()
        with pytest.raises(ConfigError):
            ClockTracker(0, mapper)
        with pytest.raises(ConfigError):
            ClockTracker(8, mapper, clock_bits=0)
        with pytest.raises(ConfigError):
            ClockTracker(8, mapper, eviction_batch=0)

    def test_untracked_key(self):
        tracker, _ = make_tracker()
        assert tracker.clock_value(b"nope") == UNTRACKED
        assert not tracker.contains(b"nope")

    def test_first_read_inserts_with_clock_one(self):
        tracker, mapper = make_tracker()
        tracker.on_read(b"k", version=1)
        assert tracker.clock_value(b"k") == 1
        assert mapper.counts()[1] == 1
        assert tracker.stats.inserts == 1

    def test_same_version_reread_promotes_to_max(self):
        tracker, mapper = make_tracker()
        tracker.on_read(b"k", version=1)
        tracker.on_read(b"k", version=1)
        assert tracker.clock_value(b"k") == 3
        assert mapper.counts() == [0, 0, 0, 1]
        assert tracker.stats.version_hits == 1

    def test_version_change_resets_to_one(self):
        tracker, mapper = make_tracker()
        tracker.on_read(b"k", version=1)
        tracker.on_read(b"k", version=1)  # clock -> 3
        tracker.on_read(b"k", version=2)  # updated since: reset
        assert tracker.clock_value(b"k") == 1
        assert tracker.stats.version_mismatches == 1
        assert mapper.counts() == [0, 1, 0, 0]

    def test_is_full(self):
        tracker, _ = make_tracker(capacity=2)
        assert not tracker.is_full
        tracker.on_read(b"a", 1)
        tracker.on_read(b"b", 1)
        assert tracker.is_full


class TestEviction:
    def test_eviction_restores_capacity(self):
        tracker, mapper = make_tracker(capacity=4)
        for i in range(8):
            tracker.on_read(f"k{i}".encode(), 1)
        tracker.run_evictions()
        assert len(tracker) <= 4
        assert mapper.total_tracked == len(tracker)

    def test_eviction_prefers_cold_keys(self):
        tracker, _ = make_tracker(capacity=4)
        # Four hot keys (clock 3) and four cold ones (clock 1).
        for i in range(4):
            key = f"hot{i}".encode()
            tracker.on_read(key, 1)
            tracker.on_read(key, 1)
        for i in range(4):
            tracker.on_read(f"cold{i}".encode(), 1)
        tracker.run_evictions()
        survivors = [f"hot{i}".encode() for i in range(4) if tracker.contains(f"hot{i}".encode())]
        # The CLOCK hand decrements everyone, but cold (lower) keys reach
        # zero first; the hot majority must survive.
        assert len(survivors) >= 3

    def test_no_eviction_below_capacity(self):
        tracker, _ = make_tracker(capacity=8)
        tracker.on_read(b"a", 1)
        assert tracker.run_evictions() == 0
        assert tracker.contains(b"a")

    def test_bounded_steps_limit_work(self):
        tracker, _ = make_tracker(capacity=2)
        for i in range(10):
            tracker.on_read(f"k{i}".encode(), 1)
        tracker.run_evictions(max_steps=1)
        assert len(tracker) > 2  # one step cannot evict eight keys
        tracker.run_evictions()
        assert len(tracker) <= 2

    def test_distribution_consistent_after_churn(self):
        tracker, mapper = make_tracker(capacity=16)
        for i in range(200):
            tracker.on_read(f"k{i % 40}".encode(), i % 7)
            tracker.run_evictions()
        assert mapper.total_tracked == len(tracker)
        truth = tracker.snapshot_distribution()
        counts = mapper.counts()
        for clock in range(4):
            assert counts[clock] == truth.get(clock, 0)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 3)), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_mapper_always_mirrors_tracker(self, reads):
        tracker, mapper = make_tracker(capacity=10)
        for key_index, version in reads:
            tracker.on_read(f"key{key_index}".encode(), version)
            tracker.run_evictions()
        assert mapper.total_tracked == len(tracker)
        truth = tracker.snapshot_distribution()
        for clock, count in enumerate(mapper.counts()):
            assert count == truth.get(clock, 0)


class TestVersionTag:
    def test_tag_is_six_bits(self):
        for version in (0, 1, 2**40, 2**56 - 1):
            assert 0 <= ClockTracker._version_tag(version) < 64

    def test_different_versions_usually_differ(self):
        tags = {ClockTracker._version_tag(v) for v in range(200)}
        assert len(tags) > 30  # 6-bit hash: most of the space is used
