"""Tests for the read-aware router and the lowest-score picker."""

import pytest

from repro.common import KIB, MIB, SimClock
from repro.core.mapper import ClockDistributionMapper
from repro.core.placer import LowestScorePicker, ReadAwareRouter
from repro.core.tracker import ClockTracker
from repro.errors import ConfigError
from repro.lsm.record import Record, ValueKind
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.storage import NVM_SPEC, StorageBackend, StorageTier


def make_router(capacity=4, threshold=0.5, require_full=False):
    mapper = ClockDistributionMapper()
    tracker = ClockTracker(capacity, mapper)
    router = ReadAwareRouter(
        tracker, mapper, pinning_threshold=threshold, require_full_tracker=require_full
    )
    return router, tracker, mapper


def put(key, seqno=1, value=b"v"):
    return Record(key, seqno, ValueKind.PUT, value)


def start_job(router, upper=2, budget=1 << 20):
    router.begin_job(upper, upper + 1, b"", b"\xff", budget, budget)


class TestReadAwareRouter:
    def test_rejects_bad_threshold(self):
        mapper = ClockDistributionMapper()
        tracker = ClockTracker(4, mapper)
        with pytest.raises(ConfigError):
            ReadAwareRouter(tracker, mapper, pinning_threshold=1.5)

    def test_hot_key_pins(self):
        router, tracker, _ = make_router()
        tracker.on_read(b"hot", 1)
        tracker.on_read(b"hot", 1)  # clock 3
        start_job(router)
        assert router.route_up(put(b"hot"), source_level=2)
        assert router.stats.pinned == 1

    def test_untracked_key_compacts_down(self):
        router, _, _ = make_router()
        start_job(router)
        assert not router.route_up(put(b"cold"), source_level=2)
        assert router.stats.rejected_untracked == 1

    def test_tombstones_never_pin(self):
        router, tracker, _ = make_router()
        tracker.on_read(b"k", 1)
        tracker.on_read(b"k", 1)
        start_job(router)
        assert not router.route_up(Record(b"k", 5, ValueKind.DELETE), source_level=2)
        assert router.stats.rejected_tombstone == 1

    def test_no_pinning_into_l0(self):
        router, tracker, _ = make_router()
        tracker.on_read(b"hot", 1)
        tracker.on_read(b"hot", 1)
        router.begin_job(0, 1, b"", b"\xff", 1 << 20, 1 << 20)
        assert not router.route_up(put(b"hot"), source_level=0)

    def test_waits_for_full_tracker(self):
        router, tracker, _ = make_router(capacity=4, require_full=True)
        tracker.on_read(b"hot", 1)
        tracker.on_read(b"hot", 1)
        start_job(router)
        assert not router.route_up(put(b"hot"), source_level=2)
        assert router.stats.suspended_tracker_not_full == 1
        for i in range(4):
            tracker.on_read(f"fill{i}".encode(), 1)
        start_job(router)
        assert router.route_up(put(b"hot"), source_level=2)

    def test_budget_exhaustion_stops_pinning(self):
        router, tracker, _ = make_router(threshold=1.0)
        for key in (b"a", b"b"):
            tracker.on_read(key, 1)
            tracker.on_read(key, 1)
        record = put(b"a")
        router.begin_job(2, 3, b"", b"\xff", record.encoded_size(), record.encoded_size())
        assert router.route_up(record, source_level=2)
        assert not router.route_up(put(b"b"), source_level=2)
        assert router.stats.rejected_budget_exhausted == 1

    def test_pull_budget_separate_from_pin_budget(self):
        router, tracker, _ = make_router(threshold=1.0)
        for key in (b"a", b"b"):
            tracker.on_read(key, 1)
            tracker.on_read(key, 1)
        record = put(b"a")
        # Pin budget is large; pull budget covers nothing.
        router.begin_job(2, 3, b"", b"\xff", 1 << 20, 0)
        assert not router.route_up(record, source_level=3)  # pull denied
        assert router.route_up(record, source_level=2)  # retention allowed

    def test_pull_counted_separately(self):
        router, tracker, _ = make_router()
        tracker.on_read(b"hot", 1)
        tracker.on_read(b"hot", 1)
        start_job(router)
        router.route_up(put(b"hot"), source_level=3)  # from the lower level
        assert router.stats.pulled_up == 1
        assert router.stats.pinned == 0

    def test_clock_value_fn_reflects_tracker(self):
        router, tracker, _ = make_router()
        tracker.on_read(b"k", 1)
        fn = router.clock_value_fn()
        assert fn(b"k") == 1
        assert fn(b"unknown") == -1

    def test_cold_file_allows_trivial_move(self):
        router, _, _ = make_router()

        class FakeTable:
            popularity_score = 0.0

        class HotTable:
            popularity_score = 12.0

        assert router.allows_trivial_move(FakeTable())
        assert not router.allows_trivial_move(HotTable())


class TestLowestScorePicker:
    def _manifest_with_scores(self, scores):
        clock = SimClock()
        backend = StorageBackend(clock)
        tier = StorageTier("nvm", NVM_SPEC, 64 * MIB, clock)
        manifest = LevelManifest(3)
        lo = ord("a")
        for i, score in enumerate(scores):
            builder = SSTableBuilder(backend, tier, block_bytes=512, target_file_bytes=4 * KIB)
            builder.add(put(bytes([lo + i * 2]), seqno=i + 1))
            table, _ = builder.finish()
            table.popularity_score = score
            manifest.add_file(1, table)
        return manifest

    def test_picks_lowest_score(self):
        manifest = self._manifest_with_scores([5.0, -3.0, 10.0])
        picked = LowestScorePicker().pick_files(manifest, 1)
        assert len(picked) == 1
        assert picked[0].popularity_score == -3.0

    def test_tie_breaks_to_oldest(self):
        manifest = self._manifest_with_scores([0.0, 0.0])
        picked = LowestScorePicker().pick_files(manifest, 1)
        ids = sorted(t.file_id for t in manifest.files(1))
        assert picked[0].file_id == ids[0]

    def test_empty_level(self):
        manifest = LevelManifest(3)
        assert LowestScorePicker().pick_files(manifest, 1) == []
