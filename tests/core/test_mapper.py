"""Tests for the CLOCK-distribution mapper and the pinning threshold."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mapper import ClockDistributionMapper
from repro.errors import ConfigError


def mapper_with_counts(counts):
    mapper = ClockDistributionMapper(max_clock=len(counts) - 1)
    for clock, count in enumerate(counts):
        for _ in range(count):
            mapper.on_insert(clock)
    return mapper


class TestDistributionMaintenance:
    def test_rejects_bad_max_clock(self):
        with pytest.raises(ConfigError):
            ClockDistributionMapper(max_clock=0)

    def test_insert_evict_counts(self):
        mapper = ClockDistributionMapper()
        mapper.on_insert(1)
        mapper.on_insert(1)
        mapper.on_evict(1)
        assert mapper.counts() == [0, 1, 0, 0]
        assert mapper.total_tracked == 1

    def test_change_moves_between_buckets(self):
        mapper = ClockDistributionMapper()
        mapper.on_insert(1)
        mapper.on_change(1, 3)
        assert mapper.counts() == [0, 0, 0, 1]

    def test_evict_from_empty_bucket_fails(self):
        with pytest.raises(ValueError):
            ClockDistributionMapper().on_evict(2)

    def test_out_of_range_clock_rejected(self):
        mapper = ClockDistributionMapper()
        with pytest.raises(ValueError):
            mapper.on_insert(4)
        with pytest.raises(ValueError):
            mapper.on_insert(-1)

    def test_fractions_empty(self):
        assert ClockDistributionMapper().fractions() == [0.0] * 4

    def test_fractions_normalized(self):
        mapper = mapper_with_counts([5, 3, 1, 1])
        assert sum(mapper.fractions()) == pytest.approx(1.0)
        assert mapper.fractions()[0] == pytest.approx(0.5)


class TestPinningThreshold:
    def test_paper_example(self):
        # §4.2's example: 10% at clock 3, 10% at clock 2, 30% at clock 1,
        # 50% at clock 0; threshold 15% -> clock 3 always pins, clock 2
        # pins with weight 0.5, clocks 1/0 never pin.
        mapper = mapper_with_counts([50, 30, 10, 10])
        assert mapper.pin_probability(3, 0.15) == 1.0
        assert mapper.pin_probability(2, 0.15) == pytest.approx(0.5)
        assert mapper.pin_probability(1, 0.15) == 0.0
        assert mapper.pin_probability(0, 0.15) == 0.0

    def test_untracked_never_pins(self):
        mapper = mapper_with_counts([10, 10, 10, 10])
        assert mapper.pin_probability(-1, 0.5) == 0.0

    def test_zero_threshold_pins_nothing(self):
        mapper = mapper_with_counts([10, 10, 10, 10])
        assert mapper.pin_probability(3, 0.0) == 0.0

    def test_full_threshold_pins_everything(self):
        mapper = mapper_with_counts([10, 10, 10, 10])
        for clock in range(4):
            assert mapper.pin_probability(clock, 1.0) == 1.0

    def test_empty_distribution_pins_nothing(self):
        assert ClockDistributionMapper().pin_probability(3, 0.5) == 0.0

    def test_empty_bucket_probability_zero(self):
        mapper = mapper_with_counts([10, 0, 0, 10])
        assert mapper.pin_probability(2, 0.9) == 0.0

    def test_threshold_out_of_range(self):
        mapper = mapper_with_counts([1, 1, 1, 1])
        with pytest.raises(ValueError):
            mapper.pin_probability(3, 1.5)

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=4, max_size=4),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_expected_pinned_fraction_matches_threshold(self, counts, threshold):
        mapper = mapper_with_counts(counts)
        total = sum(counts)
        if total == 0:
            return
        expected = sum(
            counts[clock] * mapper.pin_probability(clock, threshold)
            for clock in range(4)
        )
        # The algorithm pins exactly threshold * total in expectation
        # (up to the entire tracked population).
        assert expected / total == pytest.approx(min(threshold, 1.0), abs=1e-9)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_probability_monotonic_in_clock(self, threshold):
        mapper = mapper_with_counts([7, 13, 5, 9])
        probs = [mapper.pin_probability(clock, threshold) for clock in range(4)]
        assert probs == sorted(probs)  # higher clock -> higher pin chance


class TestCoinFlips:
    def test_should_pin_extremes(self):
        mapper = mapper_with_counts([0, 0, 0, 10])
        rng = random.Random(1)
        assert mapper.should_pin(3, 1.0, rng)
        assert not mapper.should_pin(3, 0.0, rng)

    def test_should_pin_key_deterministic(self):
        mapper = mapper_with_counts([50, 30, 10, 10])
        results = {mapper.should_pin_key(b"some-key", 2, 0.15) for _ in range(10)}
        assert len(results) == 1  # same key, same verdict, every time

    def test_should_pin_key_samples_at_expected_rate(self):
        mapper = mapper_with_counts([50, 30, 10, 10])
        pinned = sum(
            mapper.should_pin_key(f"key{i}".encode(), 2, 0.15) for i in range(4000)
        )
        assert 0.4 < pinned / 4000 < 0.6  # probability is 0.5

    def test_should_pin_untracked_false(self):
        mapper = mapper_with_counts([10, 10, 10, 10])
        assert not mapper.should_pin_key(b"k", -1, 0.9)
