"""End-to-end tests for PrismDB."""

import random

import pytest

from repro.common import KIB
from repro.core import PrismDB, PrismOptions
from repro.errors import ConfigError
from repro.lsm import DBOptions


def tiny_options(**kwargs):
    defaults = dict(
        memtable_bytes=2 * KIB,
        target_file_bytes=2 * KIB,
        level1_target_bytes=4 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=16 * KIB,
    )
    defaults.update(kwargs)
    return DBOptions(**defaults)


def make_db(**prism_kwargs):
    prism = PrismOptions(tracker_capacity=64, **prism_kwargs)
    return PrismDB.create("NNNTQ", tiny_options(), prism)


class TestPrismOptions:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PrismOptions(tracker_capacity=0)
        with pytest.raises(ConfigError):
            PrismOptions(pinning_threshold=2.0)

    def test_for_keyspace(self):
        assert PrismOptions.for_keyspace(1000).tracker_capacity == 100
        assert PrismOptions.for_keyspace(5).tracker_capacity == 1  # floor of 1


class TestPrismDB:
    def test_basic_crud(self):
        db = make_db()
        db.put(b"k", b"v")
        assert db.get(b"k").value == b"v"
        db.delete(b"k")
        assert not db.get(b"k").found

    def test_reads_feed_tracker(self):
        db = make_db()
        db.put(b"k", b"v")
        db.get(b"k")
        assert db.tracker.contains(b"k")
        assert db.tracker.clock_value(b"k") == 1
        db.get(b"k")
        assert db.tracker.clock_value(b"k") == 3

    def test_read_latency_includes_tracker_overhead(self):
        plain = make_db()
        plain.put(b"k", b"v")
        base = super(PrismDB, plain).get(b"k").latency_usec
        latency = plain.get(b"k").latency_usec
        assert latency == pytest.approx(base + plain.options.tracker_overhead_usec)

    def test_update_resets_clock_via_version_tag(self):
        db = make_db()
        db.put(b"k", b"v1")
        db.get(b"k")
        db.get(b"k")
        assert db.tracker.clock_value(b"k") == 3
        db.put(b"k", b"v2")
        db.get(b"k")  # new version: treated as a fresh key
        assert db.tracker.clock_value(b"k") == 1

    def test_tracker_respects_capacity(self):
        db = make_db()
        for i in range(200):
            key = f"key{i:04d}".encode()
            db.put(key, b"v")
            db.get(key)
        assert len(db.tracker) <= db.prism_options.tracker_capacity + 1

    def test_uses_read_aware_policies(self):
        from repro.core.placer import LowestScorePicker, ReadAwareRouter

        db = make_db()
        assert isinstance(db.picker, LowestScorePicker)
        assert isinstance(db.router, ReadAwareRouter)
        assert db.router is db.placer

    def test_invariants_hold_under_skewed_churn(self):
        db = make_db(pinning_threshold=0.3, require_full_tracker=False)
        rng = random.Random(11)
        keys = [f"key{i:04d}".encode() for i in range(150)]
        hot = keys[:15]
        for _ in range(4000):
            if rng.random() < 0.3:
                db.put(rng.choice(keys), rng.randbytes(24))
            else:
                key = rng.choice(hot if rng.random() < 0.8 else keys)
                db.get(key)
        db.flush()
        db.check_invariants()

    def test_pinning_happens_under_churn(self):
        db = make_db(pinning_threshold=0.5, require_full_tracker=False)
        rng = random.Random(3)
        keys = [f"key{i:04d}".encode() for i in range(300)]
        hot = keys[:20]
        for _ in range(8000):
            if rng.random() < 0.25:
                db.put(rng.choice(keys), rng.randbytes(24))
            else:
                db.get(rng.choice(hot if rng.random() < 0.8 else keys))
        total = db.executor.stats.records_pinned + db.executor.stats.records_pulled_up
        assert total > 0

    def test_reads_still_correct_with_pinning(self):
        db = make_db(pinning_threshold=1.0, require_full_tracker=False)
        rng = random.Random(5)
        model = {}
        keys = [f"key{i:04d}".encode() for i in range(120)]
        for _ in range(5000):
            key = rng.choice(keys)
            if rng.random() < 0.4:
                value = rng.randbytes(20)
                db.put(key, value)
                model[key] = value
            else:
                assert db.get(key).value == model.get(key)
        for key, value in model.items():
            assert db.get(key).value == value
