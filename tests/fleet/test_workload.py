"""Sharded multi-tenant workload: partition coverage and determinism."""

import pytest

from repro.errors import ConfigError
from repro.fleet.router import ConsistentHashRouter
from repro.fleet.workload import ShardWorkload, TenantSpec
from repro.workloads.ycsb import OP_INSERT, OP_SCAN

TENANTS = (
    TenantSpec(name="t00", key_count=1_200),
    TenantSpec(
        name="t01",
        key_count=800,
        weight=2.0,
        read_proportion=0.50,
        update_proportion=0.40,
        scan_proportion=0.10,
    ),
)
SHARDS = 4


def make_workload(shard_id, *, operations=2_000, seed=0):
    router = ConsistentHashRouter(SHARDS)
    return ShardWorkload(
        TENANTS, router, shard_id, operations=operations, seed=seed
    )


def materialize(batches):
    """Flatten a batch stream into one comparable op list."""
    ops = []
    for batch in batches:
        ops.extend(
            zip(batch.kinds, batch.keys, batch.values, batch.scan_lengths)
        )
    return ops


class TestPartition:
    def test_shards_partition_every_tenant_key_space(self):
        # Every key of every tenant is owned by exactly one shard, and
        # the per-shard load phases insert exactly the owned sets.
        owned_union: set[bytes] = set()
        total = 0
        for shard_id in range(SHARDS):
            workload = make_workload(shard_id)
            inserted = set()
            for batch in workload.load_batches():
                assert all(kind == OP_INSERT for kind in batch.kinds)
                inserted.update(batch.keys)
            assert owned_union.isdisjoint(inserted)
            owned_union |= inserted
            total += len(inserted)
            assert workload.config.record_count == len(inserted)
        assert total == sum(t.key_count for t in TENANTS)

    def test_owned_counts_matches_router(self):
        router = ConsistentHashRouter(SHARDS)
        workload = make_workload(1)
        counts = workload.owned_counts()
        for tenant in TENANTS:
            expected = sum(
                1
                for index in range(tenant.key_count)
                if router.shard_for_key(
                    (tenant.key_format % index).encode("ascii")
                )
                == 1
            )
            assert counts[tenant.name] == expected


class TestDeterminism:
    def test_identical_workloads_generate_identical_streams(self):
        for phase in ("load_batches", "run_batches"):
            a = materialize(getattr(make_workload(2), phase)())
            b = materialize(getattr(make_workload(2), phase)())
            assert a == b, phase

    def test_seed_changes_the_op_stream(self):
        a = materialize(make_workload(2, seed=0).run_batches())
        b = materialize(make_workload(2, seed=1).run_batches())
        assert a != b

    def test_batch_size_does_not_change_the_stream(self):
        a = materialize(make_workload(0).run_batches(batch_ops=64))
        b = materialize(make_workload(0).run_batches(batch_ops=999))
        assert a == b


class TestTraffic:
    def test_op_count_and_mix(self):
        workload = make_workload(3, operations=3_000)
        ops = materialize(workload.run_batches())
        assert len(ops) == 3_000
        # All keys belong to this shard's owned sets; scans only come
        # from the tenant whose mix includes them (t01).
        owned = set()
        for batch in workload.load_batches():
            owned.update(batch.keys)
        for kind, key, _value, length in ops:
            assert key in owned
            if kind == OP_SCAN:
                assert key.startswith(b"t01-")
                assert 1 <= length <= 100

    def test_weighted_tenant_gets_more_traffic(self):
        # t01 has weight 2 with ~2/3 the keys of t00: per-shard traffic
        # share should exceed t00's by a clear margin.
        ops = materialize(make_workload(0, operations=4_000).run_batches())
        t01 = sum(1 for _, key, _v, _l in ops if key.startswith(b"t01-"))
        assert t01 > len(ops) * 0.5


class TestValidation:
    def test_tenant_spec_rejects_bad_proportions(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="bad", key_count=10, read_proportion=0.5,
                       update_proportion=0.2, scan_proportion=0.2)

    def test_tenant_spec_rejects_bad_names_and_counts(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="has space", key_count=10)
        with pytest.raises(ConfigError):
            TenantSpec(name="t00", key_count=0)

    def test_workload_rejects_duplicate_tenants_and_bad_shard(self):
        router = ConsistentHashRouter(2)
        with pytest.raises(ConfigError):
            ShardWorkload(
                (TENANTS[0], TENANTS[0]), router, 0, operations=10
            )
        with pytest.raises(ConfigError):
            ShardWorkload(TENANTS, router, 2, operations=10)
