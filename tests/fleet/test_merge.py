"""Merge-path properties: per-shard merges equal one combined stream.

The fleet's worker-count invariance rests on every merge being a pure
function that reproduces what a single observer of the combined stream
would have recorded. These tests pin that property for each layer:
LatencyRecorder, MetricsRegistry snapshots, timelines, attribution
exports, and the full RunResult merge.
"""

import pytest

from repro.bench.harness import RunResult, SystemConfig, run_experiment
from repro.common.clock import SimClock
from repro.common.rng import make_rng
from repro.common.stats import LatencyRecorder, LatencySummary
from repro.errors import ConfigError, ObservabilityError
from repro.fleet.merge import merge_run_results
from repro.fleet.pool import DevicePool, PoolParams
from repro.fleet.runner import FleetConfig, default_tenants, run_shard
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineSampler, merge_timelines
from repro.workloads.ycsb import YCSBConfig


def shard_samples(seed, count=400):
    rng = make_rng(seed, "merge-test")
    return [rng.random() * 5_000.0 for _ in range(count)]


class TestLatencyRecorderMerge:
    def test_merged_recorders_equal_combined_stream(self):
        shards = [shard_samples(seed) for seed in range(4)]
        combined = LatencyRecorder()
        for samples in shards:
            for sample in samples:
                combined.record(sample)
        merged = LatencyRecorder()
        for samples in shards:
            recorder = LatencyRecorder()
            for sample in samples:
                recorder.record(sample)
            merged.merge(recorder)
        assert merged.summary() == combined.summary()

    def test_merge_order_does_not_matter(self):
        shards = [shard_samples(seed) for seed in range(3)]
        forward, backward = LatencyRecorder(), LatencyRecorder()
        for samples in shards:
            recorder = LatencyRecorder()
            for sample in samples:
                recorder.record(sample)
            forward.merge(recorder)
        for samples in reversed(shards):
            recorder = LatencyRecorder()
            for sample in samples:
                recorder.record(sample)
            backward.merge(recorder)
        assert forward.summary() == backward.summary()


class TestSnapshotMerge:
    @staticmethod
    def _populate(registry, events):
        for tier, amount in events:
            registry.counter("device.write_bytes", tier=tier).inc(amount)
            registry.histogram("op.latency_usec", op="read").observe(amount)

    def test_merged_snapshots_equal_combined_registry(self):
        rng = make_rng(7, "snapshot-merge")
        events = [
            (("nvm", "tlc", "qlc")[rng.randrange(3)], rng.random() * 900.0)
            for _ in range(300)
        ]
        combined = MetricsRegistry()
        self._populate(combined, events)
        shards = [MetricsRegistry() for _ in range(3)]
        for index, event in enumerate(events):
            self._populate(shards[index % 3], [event])
        merged = MetricsRegistry.merge_snapshots([r.snapshot() for r in shards])

        def flat(snapshot):
            exact, floats = {}, {}
            for name, metric in snapshot.items():
                for row in metric["series"]:
                    key = (name, tuple(sorted(row["labels"].items())))
                    if "value" in row:
                        floats[key] = row["value"]
                    else:
                        exact[key] = (row["count"], list(row["buckets"]))
                        floats[key + ("sum",)] = row["sum"]
            return exact, floats

        got_exact, got_floats = flat(merged)
        want_exact, want_floats = flat(combined.snapshot())
        assert got_exact == want_exact
        assert got_floats == pytest.approx(want_floats)


class TestTimelineMerge:
    @staticmethod
    def _run(seed):
        config = SystemConfig(system="prismdb", layout_code="NNNTQ", seed=seed)
        workload = YCSBConfig.read_update(
            50, record_count=800, operation_count=900, seed=seed
        )
        return run_experiment(
            config, workload, label=f"merge/{seed}", sample_interval_ms=0.5
        )

    def test_extensive_series_sum_elementwise(self):
        timelines = [self._run(seed).timeline for seed in (0, 1)]
        merged = merge_timelines(timelines)
        length = len(merged["t_ms"])
        for name, values in merged["series"].items():
            if name.endswith(("_p50_usec", "_p99_usec")) or name.endswith(
                "hit_rate"
            ):
                continue  # intensive: throughput-weighted, not summed
            expected = [
                sum(
                    t["series"][name][k]
                    for t in timelines
                    if name in t["series"] and k < len(t["series"][name])
                )
                for k in range(length)
            ]
            assert values == pytest.approx(expected), name

    def test_merge_is_order_invariant_and_checks_interval(self):
        timelines = [self._run(seed).timeline for seed in (0, 1)]
        assert merge_timelines(timelines) == merge_timelines(timelines[::-1])
        clock = SimClock()
        odd = TimelineSampler(
            MetricsRegistry(), clock, interval_ms=3.0
        ).to_dict()
        with pytest.raises(ObservabilityError):
            merge_timelines([timelines[0], odd])


class TestRunResultMerge:
    @pytest.fixture(scope="class")
    def shard_results(self):
        config = FleetConfig(
            shards=2,
            tenants=default_tenants(2, keys_per_tenant=800),
            total_operations=2_400,
            sample_interval_ms=0.5,
        )
        return [run_shard(config, shard) for shard in range(config.shards)]

    def test_extensive_totals_are_exact_sums(self, shard_results):
        merged = merge_run_results(shard_results)
        for attr in (
            "operations",
            "user_write_bytes",
            "wal_bytes",
            "flush_bytes",
            "compaction_write_bytes",
        ):
            assert getattr(merged, attr) == sum(
                getattr(r, attr) for r in shard_results
            ), attr
        assert merged.elapsed_usec == max(r.elapsed_usec for r in shard_results)
        for tier in merged.device_write_bytes:
            assert merged.device_write_bytes[tier] == sum(
                r.device_write_bytes.get(tier, 0) for r in shard_results
            )

    def test_latency_counts_and_means_are_exact(self, shard_results):
        merged = merge_run_results(shard_results)
        count = sum(r.read_latency.count for r in shard_results)
        assert merged.read_latency.count == count
        total = sum(r.read_latency.mean * r.read_latency.count
                    for r in shard_results)
        assert merged.read_latency.mean == pytest.approx(total / count)
        assert merged.read_latency.maximum == max(
            r.read_latency.maximum for r in shard_results
        )

    def test_merge_is_order_invariant(self, shard_results):
        a = merge_run_results(shard_results)
        b = merge_run_results(shard_results[::-1])
        assert a.to_json() == b.to_json()

    def test_mixed_systems_rejected(self, shard_results):
        other = shard_results[1]
        alien = RunResult.from_json(other.to_json())
        alien.system = "rocksdb"
        with pytest.raises(ConfigError):
            merge_run_results([shard_results[0], alien])


class TestDevicePool:
    def test_penalty_shifts_summaries_comonotonically(self):
        summary = LatencySummary(
            count=10, mean=100.0, p50=90.0, p95=150.0, p99=180.0, maximum=200.0
        )
        penalty = {"mean": 5.0, "p50": 4.0, "p95": 6.0, "p99": 7.0, "max": 8.0}
        shifted = DevicePool.apply_penalty(summary, penalty)
        assert shifted.count == 10
        assert shifted.mean == 105.0
        assert shifted.p50 == 94.0
        assert shifted.p99 == 187.0
        assert shifted.maximum == 208.0

    def test_empty_summary_unchanged(self):
        empty = LatencySummary.empty()
        penalty = {"mean": 5.0, "p50": 4.0, "p95": 6.0, "p99": 7.0, "max": 8.0}
        assert DevicePool.apply_penalty(empty, penalty) == empty

    def test_contention_accounts_fleet_write_bytes(self):
        config = FleetConfig(
            shards=2,
            tenants=default_tenants(2, keys_per_tenant=800),
            total_operations=2_400,
            sample_interval_ms=0.5,
        )
        results = [run_shard(config, shard) for shard in range(2)]
        merged = merge_run_results(results)
        pool = DevicePool(2, PoolParams(oversubscription=2.0))
        contention = pool.contention(merged.timeline)
        assert contention["shards"] == 2
        total_writes = sum(
            tier["write_bytes"] for tier in contention["tiers"].values()
        )
        timeline_writes = sum(
            sum(values)
            for name, values in merged.timeline["series"].items()
            if name.startswith("device.write_bytes{")
            and "tier=dram" not in name
        )
        assert total_writes == pytest.approx(timeline_writes)

    def test_tight_pool_penalizes_more(self):
        config = FleetConfig(
            shards=2,
            tenants=default_tenants(2, keys_per_tenant=800),
            total_operations=2_400,
            sample_interval_ms=0.5,
        )
        results = [run_shard(config, shard) for shard in range(2)]
        merged = merge_run_results(results)
        loose = DevicePool(2, PoolParams(oversubscription=1.0))
        tight = DevicePool(2, PoolParams(oversubscription=64.0))
        assert (
            tight.contention(merged.timeline)["penalty"]["mean"]
            >= loose.contention(merged.timeline)["penalty"]["mean"]
        )
