"""Worker-count invariance, pinned to committed digests.

The fleet contract: the merged artifact is a pure function of the
``FleetConfig`` — never of ``--jobs``, process scheduling, or wall-clock
time. The fast test proves bit-identity between an inline run and a
2-process spawn run of the same 4-shard fleet, and pins the result to a
committed digest so cross-PR drift is caught even when both job counts
drift together.

The slow companion is the ISSUE-scale run — 16 shards, 10^7 fleet
operations — that only manifests behaviours (level spills, compaction
cascades, pool backlog) the small run never reaches:

    PYTHONPATH=src python -m pytest -m slow tests/fleet/test_fleet_determinism.py

If a simulated-behaviour change is intentional, rerun the test and copy
the digest from the assertion message into the EXPECTED constant.
"""

import hashlib
import json

import pytest

from repro.bench.compare import comparable_scalars
from repro.fleet.runner import FleetConfig, default_tenants, run_fleet

#: sha256 over the sorted-key JSON of comparable_scalars(merged result).
EXPECTED_FAST_DIGEST = (
    "e2f43c027b3a69231012bac65db3fbae10f55ca98e337486f2ed86f42a497531"
)
EXPECTED_SLOW_DIGEST = (
    "7dec35e507f601efa52e8e72932222669d2880c06b561f2866363c32da35bdd0"
)


def digest(result):
    payload = json.dumps(comparable_scalars(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fast_config():
    # Sub-ms sampling: smoke shards simulate only a few ms, and the
    # digest must cover a populated timeline + device-pool overlay.
    return FleetConfig(
        shards=4,
        tenants=default_tenants(2, keys_per_tenant=1_500),
        total_operations=6_000,
        seed=0,
        sample_interval_ms=0.5,
    )


class TestWorkerCountInvariance:
    def test_jobs_do_not_change_the_artifact(self):
        # One inline run, one through the spawn pool: the full JSON
        # artifacts (metrics, timeline, attribution, fleet block) must
        # be byte-identical — --jobs buys wall clock and nothing else.
        config = fast_config()
        inline = run_fleet(config, jobs=1)
        fanned = run_fleet(config, jobs=2)
        a = json.dumps(inline.to_json(), sort_keys=True)
        b = json.dumps(fanned.to_json(), sort_keys=True)
        assert a == b

        got = digest(inline)
        assert got == EXPECTED_FAST_DIGEST, (
            "4-shard fleet metrics drifted from the committed digest "
            f"(got {got}); if the behaviour change is intentional, update "
            "EXPECTED_FAST_DIGEST in this test"
        )

    def test_seed_still_matters(self):
        # Guard against the invariance being vacuous (everything
        # collapsing to one artifact regardless of config).
        base = run_fleet(fast_config(), jobs=1)
        reseeded = FleetConfig(
            shards=4,
            tenants=default_tenants(2, keys_per_tenant=1_500),
            total_operations=6_000,
            seed=1,
            sample_interval_ms=0.5,
        )
        other = run_fleet(reseeded, jobs=1)
        assert base.to_json() != other.to_json()


@pytest.mark.slow
def test_issue_scale_fleet_matches_committed_digest():
    # The ISSUE acceptance run: 16 shards, 10^7 fleet ops over four
    # 100k-key tenants. jobs=4 exercises the pool at scale; invariance
    # vs jobs=1 is already pinned by the fast test, so this run only
    # checks the digest (a second full run would double the wall clock).
    config = FleetConfig(
        shards=16,
        tenants=default_tenants(4, keys_per_tenant=100_000),
        total_operations=10_000_000,
        seed=0,
    )
    result = run_fleet(config, jobs=4)
    got = digest(result)
    assert got == EXPECTED_SLOW_DIGEST, (
        "16-shard fleet metrics drifted from the committed digest "
        f"(got {got}); if the behaviour change is intentional, update "
        "EXPECTED_SLOW_DIGEST in this test"
    )
