"""Consistent-hash router: process stability, determinism, balance."""

import pytest

from repro.errors import ConfigError
from repro.fleet.router import ConsistentHashRouter, ring_hash
from repro.workloads.interning import KeyInterner

#: Pinned ring_hash values. These freeze the router's placement function
#: across processes, platforms and PRs: if any of them moves, every
#: committed fleet digest moves with it, so changing the hash is a
#: rebaseline-everything event, not a refactor.
PINNED_HASHES = {
    b"shard0#0": 0x7A7A513996CE5465,
    b"shard3#17": 0xA13AD910146CC2C4,
    b"t00-0000000042": 0xB1B8A20CFE0CFF59,
}


class TestRingHash:
    def test_pinned_values(self):
        for data, expected in PINNED_HASHES.items():
            assert ring_hash(data) == expected, data

    def test_distinct_inputs_spread_over_the_ring(self):
        # The raw fnv1a-64 clustered badly on short structured keys (the
        # reason ring_hash adds a finalizer); check the finalized hash
        # fills all 16 top-nibble buckets on a small structured sample.
        buckets = {
            ring_hash(f"shard{s}#{v}".encode()) >> 60
            for s in range(8)
            for v in range(64)
        }
        assert buckets == set(range(16))


class TestRouter:
    def test_identical_instances_agree(self):
        interner = KeyInterner("t00-%010d")
        a = ConsistentHashRouter(8, vnodes=32)
        b = ConsistentHashRouter(8, vnodes=32)
        for index in range(2_000):
            key = interner.key(index)
            assert a.shard_for_key(key) == b.shard_for_key(key)

    def test_single_shard_owns_everything(self):
        router = ConsistentHashRouter(1)
        interner = KeyInterner("t00-%010d")
        assert all(
            router.shard_for_key(interner.key(i)) == 0 for i in range(500)
        )

    def test_balance_within_tolerance(self):
        # 4 shards x 64 vnodes over 4k interned keys: every shard owns a
        # meaningful share. The bound is loose (hashing, not striping);
        # the default vnode count keeps max/mean well under it.
        router = ConsistentHashRouter(4, vnodes=64)
        interner = KeyInterner("t00-%010d")
        counts = router.shard_counts(interner.key(i) for i in range(4_000))
        assert sum(counts) == 4_000
        assert min(counts) > 0
        mean = 4_000 / 4
        assert max(counts) / mean < 1.5

    def test_shard_counts_matches_shard_for_key(self):
        router = ConsistentHashRouter(3, vnodes=16)
        interner = KeyInterner("t01-%010d")
        keys = [interner.key(i) for i in range(300)]
        counts = router.shard_counts(keys)
        expected = [0, 0, 0]
        for key in keys:
            expected[router.shard_for_key(key)] += 1
        assert counts == expected

    def test_growing_the_fleet_moves_few_keys(self):
        # The consistent-hashing property: going from N to N+1 shards
        # remaps roughly 1/(N+1) of the keys, not all of them.
        interner = KeyInterner("t00-%010d")
        keys = [interner.key(i) for i in range(4_000)]
        before = ConsistentHashRouter(4)
        after = ConsistentHashRouter(5)
        moved = sum(
            1
            for key in keys
            if before.shard_for_key(key) != after.shard_for_key(key)
        )
        assert moved / len(keys) < 0.40  # ideal ~0.20; bound is loose

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter(0)
        with pytest.raises(ConfigError):
            ConsistentHashRouter(4, vnodes=0)
