"""Tests for per-request latency provenance (repro.obs.attribution)."""

import json

import pytest

from repro.obs.attribution import (
    BANDS,
    RESIDUAL_KEY,
    LatencyAttribution,
    OpContext,
    attribution_table,
    band_breakdown,
    diff_attribution,
)


def record_op(attr, op, parts, total=None):
    """Feed one op whose breakdown is ``parts`` ({(comp, tier): usec})."""
    ctx = attr.begin(op)
    if ctx is None:
        return None
    for (component, tier), usec in parts.items():
        ctx.add(component, tier, usec)
    if total is None:
        total = sum(parts.values())
    attr.observe(ctx, total)
    return ctx


class TestOpContext:
    def test_parts_accumulate_by_component_tier(self):
        ctx = OpContext("read")
        ctx.add("data", "tlc", 10.0)
        ctx.add("data", "tlc", 5.0)
        ctx.add("filter", "dram", 1.0)
        assert ctx.parts == {"data/tlc": 15.0, "filter/dram": 1.0}
        assert ctx.attributed_usec == pytest.approx(16.0)

    def test_events_preserve_order_and_scope(self):
        ctx = OpContext("read")
        ctx.scope = "L3:f17"
        ctx.add("data", "tlc", 10.0)
        ctx.scope = "L4:f20"
        ctx.add("compact_wait", "qlc", 3.0)
        assert ctx.events == [
            ("L3:f17", "data", "tlc", 10.0),
            ("L4:f20", "compact_wait", "qlc", 3.0),
        ]

    def test_probe_counters(self):
        ctx = OpContext("read")
        ctx.note_probe(False, n_probes=7)
        ctx.note_probe(True, n_probes=7)
        assert ctx.probes == {"bloom": 2, "bloom_negative": 1, "bloom_hashes": 14}


class TestAggregation:
    def test_parts_sum_to_total_exactly(self):
        attr = LatencyAttribution(seed=0)
        record_op(attr, "read", {("data", "tlc"): 100.0, ("cpu", "-"): 2.0})
        record_op(attr, "read", {("memtable", "dram"): 0.5})
        data = attr.to_dict()
        info = data["ops"]["read"]
        for bucket in info["buckets"]:
            assert sum(bucket["parts"].values()) == pytest.approx(
                bucket["total_usec"], rel=1e-12
            )

    def test_unattributed_latency_lands_in_residual(self):
        attr = LatencyAttribution(seed=0)
        record_op(attr, "read", {("data", "tlc"): 10.0}, total=14.0)
        (bucket,) = attr.to_dict()["ops"]["read"]["buckets"]
        assert bucket["parts"][RESIDUAL_KEY] == pytest.approx(4.0)
        assert sum(bucket["parts"].values()) == pytest.approx(14.0)

    def test_bucket_rule_matches_histogram(self):
        # Bucket i covers (bounds[i-1], bounds[i]]: a value exactly on a
        # bound goes to that bound's bucket, as in Histogram.observe.
        attr = LatencyAttribution(seed=0, bounds=(1.0, 2.0, 4.0))
        for total in (1.0, 2.0, 2.5, 100.0):
            record_op(attr, "read", {("cpu", "-"): total})
        indices = {
            b["index"]: b["count"] for b in attr.to_dict()["ops"]["read"]["buckets"]
        }
        assert indices == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_sample_every_mirrors_tracer_cadence(self):
        attr = LatencyAttribution(seed=0, sample_every=3)
        sampled = sum(
            1
            for _ in range(9)
            if record_op(attr, "read", {("cpu", "-"): 1.0}) is not None
        )
        assert sampled == 3
        data = attr.to_dict()
        assert data["ops_offered"] == 9
        assert data["ops_sampled"] == 3


class TestSlowOps:
    def test_worst_k_retained(self):
        attr = LatencyAttribution(seed=0, slow_k=3)
        for total in (5.0, 50.0, 1.0, 500.0, 10.0, 100.0):
            record_op(attr, "read", {("data", "tlc"): total})
        slow = attr.to_dict()["slow_ops"]
        assert [entry["total_usec"] for entry in slow] == [500.0, 100.0, 50.0]

    def test_slow_entry_carries_events_and_state(self):
        attr = LatencyAttribution(seed=0, slow_k=1)
        attr.state_fn = lambda: {"l0_files": 4}
        ctx = attr.begin("read")
        ctx.scope = "L3:f9"
        ctx.add("data", "tlc", 42.0)
        attr.observe(ctx, 42.0)
        (entry,) = attr.to_dict()["slow_ops"]
        assert entry["events"] == [["L3:f9", "data", "tlc", 42.0]]
        assert entry["state"] == {"l0_files": 4}

    def test_examples_reservoir_is_deterministic(self):
        def fill(seed):
            attr = LatencyAttribution(seed=seed, reservoir_k=3)
            for i in range(50):
                record_op(attr, "read", {("cpu", "-"): float(i)})
            return [e["seq"] for e in attr.to_dict()["examples"]]

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)  # the seed actually feeds the draws


class TestRoundTrip:
    def make_populated(self):
        attr = LatencyAttribution(seed=3, sample_every=2, slow_k=2, reservoir_k=2)
        attr.state_fn = lambda: {"clock_usec": 123.0}
        for i in range(20):
            record_op(
                attr,
                "read" if i % 2 else "update",
                {("data", "tlc"): float(i), ("cpu", "-"): 2.0},
            )
        return attr

    def test_to_dict_from_dict_bit_exact(self):
        attr = self.make_populated()
        blob = json.dumps(attr.to_dict(), sort_keys=True, allow_nan=False)
        rebuilt = LatencyAttribution.from_dict(json.loads(blob))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == blob

    def test_schema_mismatch_rejected(self):
        data = self.make_populated().to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError):
            LatencyAttribution.from_dict(data)


class TestBands:
    def make_data(self):
        # 100 ops: 97 fast at 4 us (cpu), 3 slow at 1000 us (data/tlc).
        attr = LatencyAttribution(seed=0)
        for _ in range(97):
            record_op(attr, "read", {("cpu", "-"): 4.0})
        for _ in range(3):
            record_op(attr, "read", {("data", "tlc"): 1000.0})
        return attr.to_dict()

    def test_bands_partition_population(self):
        bands = band_breakdown(self.make_data(), "read")
        assert sum(slot["ops"] for slot in bands.values()) == pytest.approx(100.0)

    def test_band_parts_sum_to_band_total(self):
        for slot in band_breakdown(self.make_data(), "read").values():
            assert sum(slot["parts"].values()) == pytest.approx(
                slot["total_usec"], rel=1e-12
            )

    def test_tail_band_dominated_by_slow_component(self):
        tail = band_breakdown(self.make_data(), "read")["p99"]
        assert tail["ops"] == pytest.approx(1.0)
        assert tail["parts_per_op"]["data/tlc"] > tail["parts_per_op"].get(
            "cpu/-", 0.0
        )

    def test_unknown_op_is_empty(self):
        bands = band_breakdown(self.make_data(), "scan")
        assert all(slot["ops"] == 0.0 for slot in bands.values())

    def test_table_renders_all_bands(self):
        headers, rows = attribution_table(self.make_data())
        assert headers[0] == "op"
        listed_bands = {row[1] for row in rows if row[1]}
        assert len(listed_bands) == len(BANDS)


class TestDiff:
    def make_data(self, slow_usec):
        attr = LatencyAttribution(seed=0)
        for _ in range(97):
            record_op(attr, "read", {("cpu", "-"): 4.0})
        for _ in range(3):
            record_op(attr, "read", {("data", "tlc"): slow_usec})
        return attr.to_dict()

    def test_delta_fully_explained(self):
        diff = diff_attribution(
            self.make_data(1000.0), self.make_data(1500.0), op="read", band="p99"
        )
        assert diff["delta_usec"] == pytest.approx(500.0)
        assert diff["explained_fraction"] == pytest.approx(1.0)
        lead = diff["contributors"][0]
        assert lead["key"] == "data/tlc"
        assert lead["share"] == pytest.approx(1.0)

    def test_zero_delta(self):
        data = self.make_data(1000.0)
        diff = diff_attribution(data, data)
        assert diff["delta_usec"] == 0.0
        assert diff["explained_fraction"] == 1.0

    def test_unknown_band_rejected(self):
        data = self.make_data(1000.0)
        with pytest.raises(ValueError):
            diff_attribution(data, data, band="p75")
