"""Tests for the timeline sampler (repro.obs.timeline)."""

import json

import pytest

from repro.common.clock import SimClock
from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, TimelineSampler, timeline_series
from repro.obs.metrics import percentile_from_buckets


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def registry():
    return MetricsRegistry()


def make_sampler(registry, clock, **kwargs):
    kwargs.setdefault("interval_ms", 1.0)
    return TimelineSampler(registry, clock, **kwargs).attach()


class TestSamplingCadence:
    def test_no_sample_before_first_interval(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(999.0)  # 0.999 ms < 1 ms
        assert len(sampler) == 0

    def test_one_sample_per_interval(self, registry, clock):
        sampler = make_sampler(registry, clock)
        for _ in range(5):
            clock.advance(1_000.0)
        assert len(sampler) == 5

    def test_sample_timestamps_are_boundaries(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(3_500.0)  # crosses 1ms, 2ms, 3ms boundaries at once
        assert [row[0] for row in sampler.rows] == [1.0, 2.0, 3.0]

    def test_detach_stops_sampling(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        sampler.detach()
        clock.advance(5_000.0)
        assert len(sampler) == 1

    def test_pathological_jump_is_collapsed(self, registry, clock):
        from repro.obs.timeline import MAX_CATCHUP_SAMPLES

        sampler = make_sampler(registry, clock)
        clock.advance(1_000_000.0)  # 1000 intervals in one move
        assert len(sampler) <= MAX_CATCHUP_SAMPLES + 1

    def test_invalid_interval_rejected(self, registry, clock):
        with pytest.raises(ObservabilityError):
            TimelineSampler(registry, clock, interval_ms=0.0)

    def test_invalid_capacity_rejected(self, registry, clock):
        with pytest.raises(ObservabilityError):
            TimelineSampler(registry, clock, capacity=0)


class TestRingBuffer:
    def test_capacity_bounds_rows_and_counts_drops(self, registry, clock):
        sampler = make_sampler(registry, clock, capacity=3)
        for _ in range(10):
            clock.advance(1_000.0)
        assert len(sampler) == 3
        assert sampler.dropped == 7
        # Oldest rows dropped: the survivors are the last three boundaries.
        assert [row[0] for row in sampler.rows] == [8.0, 9.0, 10.0]


class TestDeltas:
    def test_counter_deltas_not_cumulative(self, registry, clock):
        hits = registry.counter("cache.hits", type="data")
        registry.counter("cache.misses", type="data")
        sampler = make_sampler(registry, clock)
        hits.inc(3)
        clock.advance(1_000.0)
        hits.inc(1)
        clock.advance(1_000.0)
        rates = [row[2]["cache.hit_rate"] for row in sampler.rows]
        assert rates == [1.0, 1.0]
        # Now only misses: the rate must reflect the interval, not the run.
        registry.counter("cache.misses", type="data").inc(4)
        clock.advance(1_000.0)
        assert sampler.rows[-1][2]["cache.hit_rate"] == 0.0

    def test_throughput_from_op_histogram_deltas(self, registry, clock):
        hist = registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        for _ in range(10):
            hist.observe(5.0)
        clock.advance(1_000.0)
        clock.advance(1_000.0)
        first, second = (row[2]["throughput_kops"] for row in sampler.rows)
        assert first == pytest.approx(10 / 0.001 / 1_000.0)  # 10 ops in 1 ms
        assert second == 0.0

    def test_interval_percentiles_from_bucket_deltas(self, registry, clock):
        hist = registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        hist.observe(1.0)
        clock.advance(1_000.0)
        # The second interval sees only slow reads; a cumulative p99
        # would still be dragged down by the fast first interval.
        for _ in range(20):
            hist.observe(1_000.0)
        clock.advance(1_000.0)
        p99s = [row[2]["read_p99_usec"] for row in sampler.rows]
        assert p99s[0] == 1.0
        assert p99s[1] >= 1_000.0

    def test_device_busy_fraction(self, registry, clock):
        registry.counter("device.busy_usec", tier="nvm").inc(500.0)
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        # 500 usec of pre-attach busy time lands in the first interval.
        assert sampler.rows[0][2]["device.busy_frac{tier=nvm}"] == pytest.approx(0.5)

    def test_gauge_is_instantaneous_not_delta(self, registry, clock):
        occupancy = registry.gauge("tracker.occupancy")
        sampler = make_sampler(registry, clock)
        occupancy.set(40)
        clock.advance(1_000.0)
        occupancy.set(40)
        clock.advance(1_000.0)
        values = [row[2]["tracker.occupancy"] for row in sampler.rows]
        assert values == [40.0, 40.0]

    def test_probes_polled_at_sample_time(self, registry, clock):
        state = {"v": 1.0}
        sampler = TimelineSampler(
            registry, clock, interval_ms=1.0, probes={"memtable.bytes": lambda: state["v"]}
        ).attach()
        clock.advance(1_000.0)
        state["v"] = 9.0
        clock.advance(1_000.0)
        assert [row[2]["memtable.bytes"] for row in sampler.rows] == [1.0, 9.0]


class TestPhasesAndExport:
    def test_phase_stamps_rows(self, registry, clock):
        sampler = make_sampler(registry, clock)
        sampler.mark_phase("load")
        clock.advance(1_000.0)
        sampler.mark_phase("run")
        clock.advance(1_000.0)
        assert [row[1] for row in sampler.rows] == ["load", "run"]

    def test_to_dict_is_json_safe_and_aligned(self, registry, clock):
        registry.counter("cache.hits", type="data").inc()
        registry.counter("cache.misses", type="data")
        sampler = make_sampler(registry, clock)
        sampler.mark_phase("run")
        clock.advance(2_500.0)
        exported = sampler.to_dict()
        rebuilt = json.loads(json.dumps(exported, allow_nan=False))
        assert rebuilt == exported
        assert len(exported["t_ms"]) == len(exported["phase"]) == 2
        for values in exported["series"].values():
            assert len(values) == 2

    def test_timeline_series_accessor(self, registry, clock):
        registry.histogram("op.latency_usec", op="read").observe(1.0)
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        exported = sampler.to_dict()
        assert timeline_series(exported, "throughput_kops")[0] > 0

    def test_timeline_series_unknown_name(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        with pytest.raises(ObservabilityError):
            timeline_series(sampler.to_dict(), "nope")


class TestPercentileFromBuckets:
    def test_matches_histogram_percentile(self, registry):
        hist = registry.histogram("op.latency_usec", op="read")
        for value in (1.0, 3.0, 9.0, 100.0, 4000.0):
            hist.observe(value)
        for pct in (50.0, 95.0, 99.0, 100.0):
            assert percentile_from_buckets(
                hist.bounds, hist.bucket_counts, pct, maximum=hist.maximum
            ) == hist.percentile(pct)

    def test_empty_buckets(self):
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 0], 99.0) == 0.0

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            percentile_from_buckets((1.0,), [1, 0], 101.0)
