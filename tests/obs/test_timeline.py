"""Tests for the timeline sampler (repro.obs.timeline)."""

import json

import pytest

from repro.common.clock import SimClock
from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, TimelineSampler, timeline_series
from repro.obs.metrics import percentile_from_buckets


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def registry():
    return MetricsRegistry()


def make_sampler(registry, clock, **kwargs):
    kwargs.setdefault("interval_ms", 1.0)
    return TimelineSampler(registry, clock, **kwargs).attach()


class TestSamplingCadence:
    def test_no_sample_before_first_interval(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(999.0)  # 0.999 ms < 1 ms
        assert len(sampler) == 0

    def test_one_sample_per_interval(self, registry, clock):
        sampler = make_sampler(registry, clock)
        for _ in range(5):
            clock.advance(1_000.0)
        assert len(sampler) == 5

    def test_sample_timestamps_are_boundaries(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(3_500.0)  # crosses 1ms, 2ms, 3ms boundaries at once
        assert [row[0] for row in sampler.rows] == [1.0, 2.0, 3.0]

    def test_detach_stops_sampling(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        sampler.detach()
        clock.advance(5_000.0)
        assert len(sampler) == 1

    def test_pathological_jump_is_collapsed(self, registry, clock):
        from repro.obs.timeline import MAX_CATCHUP_SAMPLES

        sampler = make_sampler(registry, clock)
        clock.advance(1_000_000.0)  # 1000 intervals in one move
        assert len(sampler) <= MAX_CATCHUP_SAMPLES + 1

    def test_invalid_interval_rejected(self, registry, clock):
        with pytest.raises(ObservabilityError):
            TimelineSampler(registry, clock, interval_ms=0.0)

    def test_invalid_capacity_rejected(self, registry, clock):
        with pytest.raises(ObservabilityError):
            TimelineSampler(registry, clock, capacity=0)


class TestRingBuffer:
    def test_capacity_bounds_rows_and_counts_drops(self, registry, clock):
        sampler = make_sampler(registry, clock, capacity=3)
        for _ in range(10):
            clock.advance(1_000.0)
        assert len(sampler) == 3
        assert sampler.dropped == 7
        # Oldest rows dropped: the survivors are the last three boundaries.
        assert [row[0] for row in sampler.rows] == [8.0, 9.0, 10.0]


class TestDeltas:
    def test_counter_deltas_not_cumulative(self, registry, clock):
        hits = registry.counter("cache.hits", type="data")
        registry.counter("cache.misses", type="data")
        sampler = make_sampler(registry, clock)
        hits.inc(3)
        clock.advance(1_000.0)
        hits.inc(1)
        clock.advance(1_000.0)
        rates = [row[2]["cache.hit_rate"] for row in sampler.rows]
        assert rates == [1.0, 1.0]
        # Now only misses: the rate must reflect the interval, not the run.
        registry.counter("cache.misses", type="data").inc(4)
        clock.advance(1_000.0)
        assert sampler.rows[-1][2]["cache.hit_rate"] == 0.0

    def test_throughput_from_op_histogram_deltas(self, registry, clock):
        hist = registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        for _ in range(10):
            hist.observe(5.0)
        clock.advance(1_000.0)
        clock.advance(1_000.0)
        first, second = (row[2]["throughput_kops"] for row in sampler.rows)
        assert first == pytest.approx(10 / 0.001 / 1_000.0)  # 10 ops in 1 ms
        assert second == 0.0

    def test_interval_percentiles_from_bucket_deltas(self, registry, clock):
        hist = registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        hist.observe(1.0)
        clock.advance(1_000.0)
        # The second interval sees only slow reads; a cumulative p99
        # would still be dragged down by the fast first interval.
        for _ in range(20):
            hist.observe(1_000.0)
        clock.advance(1_000.0)
        p99s = [row[2]["read_p99_usec"] for row in sampler.rows]
        assert p99s[0] == 1.0
        assert p99s[1] >= 1_000.0

    def test_device_busy_fraction(self, registry, clock):
        registry.counter("device.busy_usec", tier="nvm").inc(500.0)
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        # 500 usec of pre-attach busy time lands in the first interval.
        assert sampler.rows[0][2]["device.busy_frac{tier=nvm}"] == pytest.approx(0.5)

    def test_gauge_is_instantaneous_not_delta(self, registry, clock):
        occupancy = registry.gauge("tracker.occupancy")
        sampler = make_sampler(registry, clock)
        occupancy.set(40)
        clock.advance(1_000.0)
        occupancy.set(40)
        clock.advance(1_000.0)
        values = [row[2]["tracker.occupancy"] for row in sampler.rows]
        assert values == [40.0, 40.0]

    def test_probes_polled_at_sample_time(self, registry, clock):
        state = {"v": 1.0}
        sampler = TimelineSampler(
            registry, clock, interval_ms=1.0, probes={"memtable.bytes": lambda: state["v"]}
        ).attach()
        clock.advance(1_000.0)
        state["v"] = 9.0
        clock.advance(1_000.0)
        assert [row[2]["memtable.bytes"] for row in sampler.rows] == [1.0, 9.0]


class TestPhasesAndExport:
    def test_phase_stamps_rows(self, registry, clock):
        sampler = make_sampler(registry, clock)
        sampler.mark_phase("load")
        clock.advance(1_000.0)
        sampler.mark_phase("run")
        clock.advance(1_000.0)
        assert [row[1] for row in sampler.rows] == ["load", "run"]

    def test_to_dict_is_json_safe_and_aligned(self, registry, clock):
        registry.counter("cache.hits", type="data").inc()
        registry.counter("cache.misses", type="data")
        sampler = make_sampler(registry, clock)
        sampler.mark_phase("run")
        clock.advance(2_500.0)
        exported = sampler.to_dict()
        rebuilt = json.loads(json.dumps(exported, allow_nan=False))
        assert rebuilt == exported
        assert len(exported["t_ms"]) == len(exported["phase"]) == 2
        for values in exported["series"].values():
            assert len(values) == 2

    def test_timeline_series_accessor(self, registry, clock):
        registry.histogram("op.latency_usec", op="read").observe(1.0)
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        exported = sampler.to_dict()
        assert timeline_series(exported, "throughput_kops")[0] > 0

    def test_timeline_series_unknown_name(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)
        with pytest.raises(ObservabilityError):
            timeline_series(sampler.to_dict(), "nope")


class TestPercentileFromBuckets:
    def test_matches_histogram_percentile(self, registry):
        hist = registry.histogram("op.latency_usec", op="read")
        for value in (1.0, 3.0, 9.0, 100.0, 4000.0):
            hist.observe(value)
        for pct in (50.0, 95.0, 99.0, 100.0):
            assert percentile_from_buckets(
                hist.bounds, hist.bucket_counts, pct, maximum=hist.maximum
            ) == hist.percentile(pct)

    def test_empty_buckets(self):
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 0], 99.0) == 0.0

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            percentile_from_buckets((1.0,), [1, 0], 101.0)


class TestEdgeCases:
    """Boundary behaviours: idle intervals, markers on sample edges,
    and bucket deltas that return to zero after a burst."""

    def test_zero_op_interval_rows_are_all_zero(self, registry, clock):
        hist = registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        for _ in range(5):
            hist.observe(10.0)
        clock.advance(1_000.0)  # busy interval
        clock.advance(1_000.0)  # idle interval
        clock.advance(1_000.0)  # another idle interval
        idle_rows = sampler.rows[1:]
        assert len(idle_rows) == 2
        for _, _, values in idle_rows:
            assert values["throughput_kops"] == 0.0
            assert values["read_p50_usec"] == 0.0
            assert values["read_p99_usec"] == 0.0

    def test_zero_op_interval_does_not_reuse_previous_percentiles(
        self, registry, clock
    ):
        # A cumulative-percentile bug would echo the burst's p99 into the
        # idle interval; the delta view must report 0 (no ops).
        hist = registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        for _ in range(20):
            hist.observe(5_000.0)
        clock.advance(1_000.0)
        clock.advance(1_000.0)
        p99s = [row[2]["read_p99_usec"] for row in sampler.rows]
        assert p99s[0] >= 5_000.0
        assert p99s[1] == 0.0

    def test_phase_marker_exactly_on_interval_edge(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(1_000.0)  # sample at exactly t=1ms, phase ""
        sampler.mark_phase("run")  # marked at exactly t=1ms
        clock.advance(1_000.0)  # sample at t=2ms
        rows = sampler.rows
        assert [row[1] for row in rows] == ["", "run"]
        # The marker itself is recorded at the boundary timestamp.
        assert sampler.to_dict()["phases"] == [[1.0, "run"]]

    def test_phase_marker_mid_interval_stamps_next_sample(self, registry, clock):
        sampler = make_sampler(registry, clock)
        clock.advance(500.0)
        sampler.mark_phase("warmup")
        clock.advance(500.0)  # boundary at t=1ms carries the new phase
        assert sampler.rows[0][1] == "warmup"

    def test_bucket_delta_goes_negative_free_when_bucket_empties(
        self, registry, clock
    ):
        # Histogram bucket counts are cumulative and never decrease; an
        # interval where a previously hot bucket sees no observations
        # must yield a zero delta for it, not a stale or negative count.
        hist = registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        for _ in range(8):
            hist.observe(3.0)  # lands in one low bucket
        clock.advance(1_000.0)
        for _ in range(4):
            hist.observe(4_000.0)  # a different, high bucket
        clock.advance(1_000.0)
        # Interval ops counted via throughput: 8 then 4, never 12.
        kops = [row[2]["throughput_kops"] for row in sampler.rows]
        assert kops[0] == pytest.approx(8 / 0.001 / 1_000.0)
        assert kops[1] == pytest.approx(4 / 0.001 / 1_000.0)
        # The second interval's delta must drop the first interval's hot
        # bucket to zero (and hold no negative entries anywhere).
        sampler._histogram_delta("probe", hist)  # prime the probe key
        idle_delta = sampler._histogram_delta("probe", hist)
        assert all(count == 0 for count in idle_delta)
        # And a further idle interval reports an all-zero row.
        clock.advance(1_000.0)
        assert sampler.rows[2][2]["throughput_kops"] == 0.0
        assert sampler.rows[2][2]["read_p99_usec"] == 0.0

    def test_probe_error_free_zero_interval_export(self, registry, clock):
        # to_dict on a timeline whose only rows are zero-op intervals is
        # still JSON-safe and column-aligned.
        registry.histogram("op.latency_usec", op="read")
        sampler = make_sampler(registry, clock)
        clock.advance(3_000.0)
        doc = sampler.to_dict()
        assert len(doc["t_ms"]) == 3
        for values in doc["series"].values():
            assert len(values) == 3
        json.dumps(doc)
