"""Tests for the span/instant tracer and its JSONL serialization."""

import json

import pytest

from repro.common import KIB
from repro.common.clock import SimClock
from repro.lsm import DBOptions, LsmDB
from repro.obs import NOOP_TRACER, Tracer, jsonl_to_chrome_json, read_jsonl


class TestNoopMode:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(SimClock(), enabled=False)
        with tracer.span("compaction", tier="tlc"):
            pass
        tracer.instant("trivial_move", level=1)
        assert tracer.events == []

    def test_disabled_span_is_the_shared_singleton(self):
        # The no-op path must not allocate per call: every disabled
        # span() returns the same object.
        tracer = Tracer(SimClock(), enabled=False)
        a = tracer.span("x")
        b = tracer.span("y", tier="nvm")
        assert a is b
        a.set_duration(5.0)  # harmless no-op

    def test_global_noop_tracer(self):
        with NOOP_TRACER.span("anything"):
            pass
        assert NOOP_TRACER.events == []
        assert not NOOP_TRACER.enabled

    def test_enabled_tracer_needs_clock(self):
        with pytest.raises(ValueError):
            Tracer(None, enabled=True)
        tracer = Tracer(None, enabled=False)
        with pytest.raises(ValueError):
            tracer.enable()


class TestRecording:
    def test_span_records_simulated_interval(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("flush", tier="nvm"):
            clock.advance(125.0)
        (event,) = tracer.events
        assert event["name"] == "flush"
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(125.0)
        assert event["args"] == {"tier": "nvm"}

    def test_set_duration_overrides_clock_delta(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("compaction") as span:
            span.set_duration(999.0)  # background work: clock is still
        assert tracer.events[0]["dur"] == pytest.approx(999.0)

    def test_instant_event(self):
        clock = SimClock()
        clock.advance(10.0)
        tracer = Tracer(clock)
        tracer.instant("trivial_move", level=1, bytes=2048)
        (event,) = tracer.events
        assert event["ph"] == "i"
        assert event["ts"] == pytest.approx(10.0)
        assert event["args"] == {"level": "1", "bytes": "2048"}

    def test_sampling_keeps_every_nth_span(self):
        clock = SimClock()
        tracer = Tracer(clock, sample_every=3)
        for _ in range(9):
            with tracer.span("op"):
                clock.advance(1.0)
        assert len(tracer.events) == 3

    def test_max_events_bounds_memory(self):
        clock = SimClock()
        tracer = Tracer(clock, max_events=2)
        for _ in range(5):
            with tracer.span("op"):
                pass
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3

    def test_clear_resets_state(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("op"):
            pass
        tracer.clear()
        assert tracer.events == []
        assert tracer.dropped_events == 0


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("flush", tier="nvm"):
            clock.advance(3.0)
        tracer.instant("trivial_move", level=1)
        path = str(tmp_path / "trace.jsonl")
        written = tracer.write_jsonl(path)
        lines = read_jsonl(path)
        assert written == len(lines)
        recorded = [event for event in lines if event["ph"] != "M"]
        assert recorded == tracer.events

    def test_chrome_json_envelope(self, tmp_path):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("op"):
            clock.advance(1.0)
        jsonl = str(tmp_path / "t.jsonl")
        chrome = str(tmp_path / "t.json")
        written = tracer.write_jsonl(jsonl)
        assert jsonl_to_chrome_json(jsonl, chrome) == written
        with open(chrome) as handle:
            doc = json.load(handle)
        recorded = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert recorded == tracer.events
        assert doc["displayTimeUnit"] == "ms"


class TestMetadata:
    def test_metadata_names_processes_and_threads(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("compaction", tier="tlc-L3"):
            clock.advance(1.0)
        with tracer.span("compaction", tier="qlc-L4"):
            clock.advance(1.0)
        with tracer.span("flush", tier="nvm-L0-L2"):
            clock.advance(1.0)
        meta = tracer.metadata_events()
        assert all(event["ph"] == "M" for event in meta)
        assert all(event["cat"] == "__metadata" for event in meta)
        processes = {
            e["args"]["name"]: e["pid"] for e in meta if e["name"] == "process_name"
        }
        assert set(processes) == {"compaction", "flush"}
        threads = {
            (e["pid"], e["args"]["name"]) for e in meta if e["name"] == "thread_name"
        }
        assert (processes["compaction"], "tlc-L3") in threads
        assert (processes["compaction"], "qlc-L4") in threads
        assert (processes["flush"], "nvm-L0-L2") in threads
        # Recorded events carry the same pid/tid the metadata names.
        for event in tracer.events:
            assert event["pid"] in processes.values()

    def test_trace_config_reports_sampling_and_drops(self):
        clock = SimClock()
        tracer = Tracer(clock, sample_every=3)
        for _ in range(9):
            with tracer.span("op"):
                clock.advance(1.0)
        assert tracer.spans_dropped == 6
        (config,) = [
            e for e in tracer.metadata_events() if e["name"] == "trace_config"
        ]
        assert config["args"]["sample_every"] == 3
        assert config["args"]["spans_dropped"] == 6
        assert config["args"]["events_dropped"] == 0

    def test_clear_resets_tracks_and_drop_counters(self):
        clock = SimClock()
        tracer = Tracer(clock, sample_every=2)
        for _ in range(4):
            with tracer.span("op", tier="nvm"):
                pass
        tracer.clear()
        assert tracer.spans_dropped == 0
        assert [e for e in tracer.metadata_events() if e["ph"] == "M"
                and e["name"] != "trace_config"] == []

    def test_pid_tid_assignment_is_deterministic(self):
        def record(tracer, clock):
            with tracer.span("flush", tier="nvm"):
                clock.advance(1.0)
            with tracer.span("compaction", tier="tlc"):
                clock.advance(1.0)
            tracer.instant("trivial_move", tier="tlc")

        clock_a, clock_b = SimClock(), SimClock()
        a, b = Tracer(clock_a), Tracer(clock_b)
        record(a, clock_a)
        record(b, clock_b)
        assert a.events == b.events
        assert a.metadata_events() == b.metadata_events()


class TestGoldenDbTrace:
    """A tiny put/get/compact sequence yields a stable, valid trace."""

    def make_db(self):
        options = DBOptions(
            memtable_bytes=2 * KIB,
            target_file_bytes=2 * KIB,
            level1_target_bytes=4 * KIB,
            level_size_multiplier=4,
            block_bytes=512,
            block_cache_bytes=16 * KIB,
        )
        db = LsmDB.create("NNNTQ", options)
        db.tracer.enable()
        return db

    def test_flush_and_compaction_spans(self):
        db = self.make_db()
        for i in range(300):
            db.put(f"key{i:05d}".encode(), b"x" * 64)
        for i in range(0, 300, 50):
            db.get(f"key{i:05d}".encode())
        names = {event["name"] for event in db.tracer.events}
        assert "flush" in names
        assert "compaction" in names or "trivial_move" in names
        # Every event is schema-complete and JSONL-serializable.
        for event in db.tracer.events:
            assert event["ph"] in ("X", "i")
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0
            assert isinstance(event["args"], dict)
            json.dumps(event)
        flushes = [e for e in db.tracer.events if e["name"] == "flush"]
        assert all(event["dur"] > 0.0 for event in flushes), (
            "flush spans must carry the modeled device busy time"
        )

    def test_trace_is_deterministic(self):
        first = self.make_db()
        second = self.make_db()
        for db in (first, second):
            for i in range(200):
                db.put(f"key{i:05d}".encode(), b"x" * 64)
        assert first.tracer.events == second.tracer.events
