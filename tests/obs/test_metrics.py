"""Tests for the metrics registry: instruments, guards, snapshots."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    format_series,
    label_key,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("db.reads", source="memtable")
        counter.inc()
        counter.inc(4)
        assert registry.value("db.reads", source="memtable") == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("device.reads", tier="nvm")
        b = registry.counter("device.reads", tier="nvm")
        assert a is b
        assert registry.counter("device.reads", tier="tlc") is not a

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("tracker.occupancy")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8

    def test_missing_series_value_is_zero(self):
        assert MetricsRegistry().value("nope", tier="x") == 0.0


class TestGuards:
    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("db.reads")
        with pytest.raises(ObservabilityError):
            registry.histogram("db.reads")

    def test_label_name_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("device.reads", tier="nvm")
        with pytest.raises(ObservabilityError):
            registry.counter("device.reads", level=3)

    def test_label_cardinality_guard(self):
        registry = MetricsRegistry(max_series_per_metric=4)
        for i in range(4):
            registry.counter("db.reads", source=f"L{i}")
        with pytest.raises(ObservabilityError):
            registry.counter("db.reads", source="one-too-many")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("Caps.name", "1leading", "trailing.", "sp ace", ""):
            with pytest.raises(ObservabilityError):
                registry.counter(bad)


class TestBuckets:
    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)

    def test_default_buckets_cover_device_latencies(self):
        # 1 us .. 2^26 us (~67 s): everything the device models produce.
        assert DEFAULT_LATENCY_BUCKETS[0] == 1.0
        assert DEFAULT_LATENCY_BUCKETS[-1] == 2.0**26
        assert len(DEFAULT_LATENCY_BUCKETS) == 27

    def test_boundary_values_are_inclusive_upper_edges(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.0, 1.0):  # both land in bucket 0 (<= 1.0)
            hist.observe(value)
        hist.observe(1.5)  # bucket 1 (<= 2.0)
        hist.observe(2.0)  # bucket 1, inclusive upper edge
        hist.observe(4.0)  # bucket 2
        hist.observe(100.0)  # overflow bucket
        assert hist.bucket_counts == [2, 2, 1, 1]
        assert hist.count == 6

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestHistogramPercentiles:
    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.percentile(50.0) == 0.0
        assert hist.mean == 0.0
        assert hist.summary().count == 0

    def test_percentile_reports_bucket_upper_bound(self):
        hist = Histogram(bounds=(10.0, 100.0, 1000.0))
        for _ in range(99):
            hist.observe(5.0)
        hist.observe(500.0)
        assert hist.percentile(50.0) == 10.0
        # The one large sample sits in the (100, 1000] bucket; its upper
        # bound clamps to the observed max.
        assert hist.percentile(100.0) == 500.0

    def test_overflow_bucket_reports_maximum(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(123.0)
        assert hist.percentile(99.0) == 123.0
        assert hist.maximum == 123.0

    def test_rejects_bad_input(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e7), min_size=1, max_size=100))
    def test_percentile_invariants(self, samples):
        hist = Histogram()
        for s in samples:
            hist.observe(s)
        p50, p99 = hist.percentile(50.0), hist.percentile(99.0)
        assert p50 <= p99 <= max(samples)
        assert hist.percentile(100.0) == max(samples)
        # Bucketed estimates are upper bounds accurate to one bucket:
        # the true nearest-rank value never exceeds the estimate.
        assert p50 >= min(samples) or p50 == pytest.approx(min(samples))


class TestRegistryViews:
    def test_total_with_label_filter(self):
        registry = MetricsRegistry()
        registry.counter("device.write_bytes", tier="nvm", mode="foreground").inc(10)
        registry.counter("device.write_bytes", tier="nvm", mode="background").inc(5)
        registry.counter("device.write_bytes", tier="tlc", mode="background").inc(7)
        assert registry.total("device.write_bytes") == 22
        assert registry.total("device.write_bytes", tier="nvm") == 15
        assert registry.total("device.write_bytes", mode="background") == 12
        assert registry.total("no.such.metric") == 0.0

    def test_total_counts_histogram_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("op.latency_usec", op="read")
        hist.observe(1.0)
        hist.observe(2.0)
        assert registry.total("op.latency_usec") == 2

    def test_snapshot_is_json_safe_and_complete(self):
        import json

        registry = MetricsRegistry()
        registry.counter("db.reads", source="L0").inc(3)
        registry.gauge("tracker.occupancy").set(7)
        registry.histogram("op.latency_usec", op="read").observe(12.0)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["db.reads"]["type"] == "counter"
        assert snapshot["db.reads"]["series"][0] == {
            "labels": {"source": "L0"},
            "value": 3.0,
        }
        hist_row = snapshot["op.latency_usec"]["series"][0]
        assert hist_row["count"] == 1
        assert hist_row["p50"] == 12.0  # clamped to the observed max
        assert sum(hist_row["buckets"]) == 1

    def test_render_flat(self):
        registry = MetricsRegistry()
        registry.counter("db.reads", source="L0").inc(3)
        registry.histogram("op.latency_usec", op="read").observe(4.0)
        flat = registry.render_flat()
        assert flat["db.reads{source=L0}"] == 3.0
        assert flat["op.latency_usec.count{op=read}"] == 1.0
        assert flat["op.latency_usec.sum{op=read}"] == 4.0

    def test_format_series_and_label_key(self):
        key = label_key({"tier": "nvm", "level": 2})
        assert key == (("level", "2"), ("tier", "nvm"))
        assert format_series("device.reads", key) == "device.reads{level=2,tier=nvm}"
        assert format_series("db.writes", ()) == "db.writes"
