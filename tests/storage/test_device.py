"""Tests for device models and the interference model."""

import pytest

from repro.common import GIB, MIB, SimClock
from repro.errors import ConfigError
from repro.storage import (
    NVM_SPEC,
    QLC_SPEC,
    SPECS_BY_CODE,
    TLC_SPEC,
    Device,
    DeviceSpec,
    fio_large_write_latency,
    fio_random_read_latency,
)


class TestDeviceSpec:
    def test_table1_read_latency_ordering(self):
        # NVM < TLC < QLC, roughly 15x NVM->QLC as in the paper.
        assert NVM_SPEC.read_latency_usec < TLC_SPEC.read_latency_usec < QLC_SPEC.read_latency_usec
        assert QLC_SPEC.read_latency_usec / NVM_SPEC.read_latency_usec == pytest.approx(15.0, rel=0.1)

    def test_table1_cost_ordering(self):
        assert NVM_SPEC.cost_per_gb > TLC_SPEC.cost_per_gb > QLC_SPEC.cost_per_gb
        assert NVM_SPEC.cost_per_gb / QLC_SPEC.cost_per_gb == pytest.approx(13.0, rel=0.01)

    def test_table1_endurance_ordering(self):
        assert NVM_SPEC.pe_cycles > TLC_SPEC.pe_cycles > QLC_SPEC.pe_cycles
        assert QLC_SPEC.pe_cycles == 200

    def test_fio_random_read_matches_table1(self):
        assert fio_random_read_latency(NVM_SPEC) == pytest.approx(26.0, rel=0.01)
        assert fio_random_read_latency(TLC_SPEC) == pytest.approx(195.0, rel=0.01)
        assert fio_random_read_latency(QLC_SPEC) == pytest.approx(391.0, rel=0.01)

    def test_fio_large_write_matches_table1_shape(self):
        # Within ~10% of the paper's 121/216/456 us column.
        assert fio_large_write_latency(NVM_SPEC) == pytest.approx(121.0, rel=0.1)
        assert fio_large_write_latency(TLC_SPEC) == pytest.approx(216.0, rel=0.1)
        assert fio_large_write_latency(QLC_SPEC) == pytest.approx(456.0, rel=0.1)

    def test_spec_registry_codes(self):
        assert SPECS_BY_CODE["N"].name == "NVM"
        assert SPECS_BY_CODE["T"].name == "TLC"
        assert SPECS_BY_CODE["Q"].name == "QLC"

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            DeviceSpec("bad", -1.0, 1.0, 1.0, 1.0, 0.1, 100)
        with pytest.raises(ConfigError):
            DeviceSpec("bad", 1.0, 1.0, 0.0, 1.0, 0.1, 100)
        with pytest.raises(ConfigError):
            DeviceSpec("bad", 1.0, 1.0, 1.0, 1.0, 0.1, 0)

    def test_read_time_scales_with_size(self):
        small = NVM_SPEC.read_time_usec(4096)
        large = NVM_SPEC.read_time_usec(1 * MIB)
        assert large > small


class TestDevice:
    def _device(self, spec=NVM_SPEC, capacity=GIB):
        clock = SimClock()
        return Device(spec, capacity, clock), clock

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            Device(NVM_SPEC, 0, SimClock())

    def test_foreground_read_returns_base_latency_when_idle(self):
        dev, _ = self._device()
        latency = dev.read(4096)
        assert latency == pytest.approx(NVM_SPEC.read_time_usec(4096))

    def test_read_rejects_negative_size(self):
        dev, _ = self._device()
        with pytest.raises(ValueError):
            dev.read(-1)

    def test_background_write_returns_zero_latency(self):
        dev, _ = self._device()
        assert dev.write(1 * MIB, foreground=False) == 0.0
        assert dev.stats.bytes_written_background == 1 * MIB

    def test_background_backlog_penalizes_foreground_reads(self):
        dev, _ = self._device(QLC_SPEC)
        idle_latency = dev.read(4096)
        dev.write(64 * MIB, foreground=False)
        busy_latency = dev.read(4096)
        assert busy_latency > idle_latency

    def test_backlog_drains_over_time(self):
        dev, clock = self._device(QLC_SPEC)
        dev.write(8 * MIB, foreground=False)
        assert dev.backlog_bytes > 0
        clock.advance(60_000_000.0)  # a minute of simulated time
        assert dev.backlog_bytes == 0.0

    def test_penalty_is_capped(self):
        dev, _ = self._device(QLC_SPEC)
        dev.write(10 * GIB, foreground=False)
        assert dev.queue_penalty_usec() <= 5_000.0

    def test_wear_accounting(self):
        dev, _ = self._device(capacity=1 * MIB)
        dev.write(2 * MIB, foreground=True)
        assert dev.wear_cycles == pytest.approx(2.0)
        assert dev.life_fraction_used == pytest.approx(2.0 / NVM_SPEC.pe_cycles)

    def test_cost_scales_with_capacity(self):
        dev, _ = self._device(capacity=10 * GIB)
        assert dev.cost_dollars() == pytest.approx(13.0)  # 10 GiB * $1.3

    def test_stats_split_foreground_background(self):
        dev, _ = self._device()
        dev.read(100, foreground=True)
        dev.read(200, foreground=False)
        dev.write(300, foreground=True)
        dev.write(400, foreground=False)
        assert dev.stats.bytes_read_foreground == 100
        assert dev.stats.bytes_read_background == 200
        assert dev.stats.bytes_written_foreground == 300
        assert dev.stats.bytes_written_background == 400
        assert dev.stats.bytes_read == 300
        assert dev.stats.bytes_written == 700
