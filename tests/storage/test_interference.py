"""Properties of the background-I/O interference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import GIB, MIB, SimClock
from repro.storage import NVM_SPEC, QLC_SPEC, TLC_SPEC, Device


class TestBacklogDynamics:
    def test_penalty_grows_with_backlog(self):
        clock = SimClock()
        dev = Device(QLC_SPEC, GIB, clock)
        penalties = []
        for _ in range(4):
            dev.write(256 * 1024, foreground=False)  # small enough to stay under the cap
            penalties.append(dev.queue_penalty_usec())
        assert penalties == sorted(penalties)
        assert penalties[-1] > penalties[0]

    def test_penalty_saturates_at_cap(self):
        clock = SimClock()
        dev = Device(QLC_SPEC, GIB, clock, max_penalty_usec=5_000.0)
        dev.write(64 * MIB, foreground=False)
        assert dev.queue_penalty_usec() == pytest.approx(5_000.0)

    def test_sustained_bandwidth_slows_qlc_drain(self):
        # The same backlog drains much faster on NVM than QLC because
        # QLC's sustained write bandwidth collapses after its SLC cache.
        def drain_time(spec):
            clock = SimClock()
            dev = Device(spec, GIB, clock)
            dev.write(8 * MIB, foreground=False)
            elapsed = 0.0
            while dev.backlog_bytes > 0 and elapsed < 10**9:
                clock.advance(10_000.0)
                elapsed += 10_000.0
            return elapsed

        assert drain_time(QLC_SPEC) > drain_time(TLC_SPEC) > drain_time(NVM_SPEC)

    def test_foreground_write_not_queued_as_backlog(self):
        clock = SimClock()
        dev = Device(NVM_SPEC, GIB, clock)
        dev.write(4 * MIB, foreground=True)
        assert dev.backlog_bytes == 0.0

    @given(st.lists(st.integers(min_value=1, max_value=8 * MIB), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_backlog_conserved(self, writes):
        clock = SimClock()
        dev = Device(QLC_SPEC, GIB, clock)
        for n in writes:
            dev.write(n, foreground=False)
        # Without time passing, the backlog equals everything enqueued.
        assert dev.backlog_bytes == pytest.approx(sum(writes))

    @given(st.floats(min_value=0.0, max_value=1e9))
    @settings(max_examples=30, deadline=None)
    def test_backlog_never_negative(self, advance_usec):
        clock = SimClock()
        dev = Device(QLC_SPEC, GIB, clock)
        dev.write(1 * MIB, foreground=False)
        clock.advance(advance_usec)
        assert dev.backlog_bytes >= 0.0

    def test_penalty_zero_when_idle(self):
        clock = SimClock()
        dev = Device(QLC_SPEC, GIB, clock)
        assert dev.queue_penalty_usec() == 0.0

    def test_background_read_joins_backlog(self):
        clock = SimClock()
        dev = Device(QLC_SPEC, GIB, clock)
        dev.read(4 * MIB, foreground=False)
        assert dev.backlog_bytes > 0.0
