"""Tests for storage tiers and the simulated file backend."""

import pytest

from repro.common import GIB, MIB, SimClock
from repro.errors import CapacityError, ConfigError, StorageError
from repro.storage import NVM_SPEC, QLC_SPEC, StorageBackend, StorageTier


def make_tier(name="nvm", spec=NVM_SPEC, capacity=64 * MIB, clock=None, **kwargs):
    return StorageTier(name, spec, capacity, clock or SimClock(), **kwargs)


class TestStorageTier:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            make_tier(capacity=0)
        with pytest.raises(ConfigError):
            make_tier(slack_factor=0.5)

    def test_allocation_accounting(self):
        tier = make_tier(capacity=10 * MIB)
        tier.allocate(4 * MIB)
        assert tier.used_bytes == 4 * MIB
        assert tier.free_bytes == 6 * MIB
        assert tier.utilization == pytest.approx(0.4)

    def test_release_returns_capacity(self):
        tier = make_tier(capacity=10 * MIB)
        tier.allocate(4 * MIB)
        tier.release(4 * MIB)
        assert tier.used_bytes == 0

    def test_release_more_than_allocated_fails(self):
        tier = make_tier()
        with pytest.raises(ValueError):
            tier.release(1)

    def test_slack_allows_transient_overshoot(self):
        tier = make_tier(capacity=10 * MIB, slack_factor=2.0)
        tier.allocate(15 * MIB)  # above nominal, below slack
        assert tier.utilization > 1.0

    def test_hard_limit_enforced(self):
        tier = make_tier(capacity=10 * MIB, slack_factor=1.5)
        with pytest.raises(CapacityError):
            tier.allocate(16 * MIB)

    def test_negative_amounts_rejected(self):
        tier = make_tier()
        with pytest.raises(ValueError):
            tier.allocate(-1)
        with pytest.raises(ValueError):
            tier.release(-1)


class TestStorageBackend:
    def setup_method(self):
        self.clock = SimClock()
        self.backend = StorageBackend(self.clock)
        self.nvm = make_tier("nvm", NVM_SPEC, clock=self.clock)
        self.qlc = make_tier("qlc", QLC_SPEC, capacity=1 * GIB, clock=self.clock)

    def test_create_and_read_round_trip(self):
        payload = bytes(range(256)) * 16
        file, _ = self.backend.create_file(self.nvm, payload)
        data, latency = self.backend.read(file, 0, len(payload))
        assert data == payload
        assert latency > 0

    def test_create_allocates_tier_capacity(self):
        file, _ = self.backend.create_file(self.nvm, b"x" * 1000)
        assert self.nvm.used_bytes == 1000
        self.backend.delete_file(file)
        assert self.nvm.used_bytes == 0

    def test_partial_read(self):
        file, _ = self.backend.create_file(self.nvm, b"0123456789")
        data, _ = self.backend.read(file, 3, 4)
        assert data == b"3456"

    def test_out_of_bounds_read_fails(self):
        file, _ = self.backend.create_file(self.nvm, b"abc")
        with pytest.raises(StorageError):
            self.backend.read(file, 0, 4)
        with pytest.raises(StorageError):
            self.backend.read(file, -1, 1)

    def test_read_deleted_file_fails(self):
        file, _ = self.backend.create_file(self.nvm, b"abc")
        self.backend.delete_file(file)
        with pytest.raises(StorageError):
            self.backend.read(file, 0, 1)

    def test_delete_is_idempotent(self):
        file, _ = self.backend.create_file(self.nvm, b"abc")
        self.backend.delete_file(file)
        self.backend.delete_file(file)
        assert self.backend.stats.files_deleted == 1

    def test_foreground_write_has_latency_background_does_not(self):
        _, bg_latency = self.backend.create_file(self.nvm, b"x" * 4096, foreground=False)
        _, fg_latency = self.backend.create_file(self.nvm, b"x" * 4096, foreground=True)
        assert bg_latency == 0.0
        assert fg_latency > 0.0

    def test_stats_tally_by_tier(self):
        file, _ = self.backend.create_file(self.nvm, b"x" * 100, foreground=True)
        self.backend.read(file, 0, 50)
        assert self.backend.stats.per_tier_write_bytes["nvm"] == 100
        assert self.backend.stats.per_tier_read_bytes["nvm"] == 50
        assert self.backend.stats.foreground_write_bytes == 100
        assert self.backend.stats.foreground_read_bytes == 50

    def test_live_files_counter(self):
        assert self.backend.live_files == 0
        file, _ = self.backend.create_file(self.nvm, b"a")
        assert self.backend.live_files == 1
        self.backend.delete_file(file)
        assert self.backend.live_files == 0


class TestMigration:
    def setup_method(self):
        self.clock = SimClock()
        self.backend = StorageBackend(self.clock)
        self.nvm = make_tier("nvm", NVM_SPEC, clock=self.clock)
        self.qlc = make_tier("qlc", QLC_SPEC, capacity=1 * GIB, clock=self.clock)

    def test_migration_moves_capacity(self):
        file, _ = self.backend.create_file(self.nvm, b"x" * MIB)
        self.backend.migrate_file(file, self.qlc)
        assert file.tier is self.qlc
        assert self.nvm.used_bytes == 0
        assert self.qlc.used_bytes == MIB

    def test_migration_to_same_tier_is_noop(self):
        file, _ = self.backend.create_file(self.nvm, b"x" * 100)
        assert self.backend.migrate_file(file, self.nvm) == 0.0
        assert self.backend.stats.migrations == 0

    def test_migration_locks_file_and_reads_stall(self):
        file, _ = self.backend.create_file(self.nvm, b"x" * MIB)
        lock_duration = self.backend.migrate_file(file, self.qlc)
        assert lock_duration > 0
        _, stalled = self.backend.read(file, 0, 4096)
        unlocked_cost = self.qlc.spec.read_time_usec(4096)
        assert stalled >= lock_duration  # includes the stall
        assert stalled > unlocked_cost

    def test_lock_expires_with_clock(self):
        file, _ = self.backend.create_file(self.nvm, b"x" * MIB)
        lock_duration = self.backend.migrate_file(file, self.qlc)
        stalls_during = self.backend.stats.lock_stalls
        self.clock.advance(lock_duration + 1.0)
        self.backend.read(file, 0, 4096)
        # Queue penalty from the migration's background I/O may remain,
        # but the hard lock stall must be gone.
        assert self.backend.stats.lock_stalls == stalls_during

    def test_migrate_deleted_file_fails(self):
        file, _ = self.backend.create_file(self.nvm, b"x")
        self.backend.delete_file(file)
        with pytest.raises(StorageError):
            self.backend.migrate_file(file, self.qlc)

    def test_migration_stats(self):
        file, _ = self.backend.create_file(self.nvm, b"x" * 1000)
        self.backend.migrate_file(file, self.qlc)
        assert self.backend.stats.migrations == 1
        assert self.backend.stats.migration_bytes == 1000
