"""Tests for the 3-year endurance provisioning rule."""

import pytest

from repro.common import GIB
from repro.storage import (
    DEFAULT_LIFETIME_SECONDS,
    NVM_SPEC,
    QLC_SPEC,
    device_lifetime_seconds,
    provision_capacity,
)


class TestProvisionCapacity:
    def test_no_writes_means_no_spare(self):
        result = provision_capacity(QLC_SPEC, 100 * GIB, 0.0)
        assert result.provisioned_bytes == 100 * GIB
        assert not result.lifetime_limited
        assert result.spare_fraction == pytest.approx(0.0)

    def test_cost_matches_capacity(self):
        result = provision_capacity(QLC_SPEC, 100 * GIB, 0.0)
        assert result.cost_dollars == pytest.approx(100 * QLC_SPEC.cost_per_gb)

    def test_heavy_writes_force_spare_capacity(self):
        # A tiny QLC level hammered with writes must be over-provisioned:
        # 1 GiB of data but 10 MiB/s of writes for 3 years = ~946 TB of
        # program traffic; at 200 P/E cycles that needs ~4.7 TB.
        rate = 10 * 1024 * 1024
        result = provision_capacity(QLC_SPEC, 1 * GIB, rate)
        assert result.lifetime_limited
        expected = rate * DEFAULT_LIFETIME_SECONDS / QLC_SPEC.pe_cycles
        assert result.provisioned_bytes == pytest.approx(expected, rel=1e-6)

    def test_nvm_needs_less_spare_than_qlc(self):
        rate = 10 * 1024 * 1024
        qlc = provision_capacity(QLC_SPEC, 1 * GIB, rate)
        nvm = provision_capacity(NVM_SPEC, 1 * GIB, rate)
        # 90x endurance difference -> 90x less required capacity.
        assert qlc.provisioned_bytes / max(1, nvm.provisioned_bytes) == pytest.approx(
            NVM_SPEC.pe_cycles / QLC_SPEC.pe_cycles, rel=0.01
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            provision_capacity(QLC_SPEC, -1, 0.0)
        with pytest.raises(ValueError):
            provision_capacity(QLC_SPEC, 1, -1.0)

    def test_custom_lifetime(self):
        rate = 1024 * 1024
        one_year = provision_capacity(QLC_SPEC, 0, rate, lifetime_seconds=365 * 86400)
        three_years = provision_capacity(QLC_SPEC, 0, rate)
        assert three_years.provisioned_bytes == pytest.approx(3 * one_year.provisioned_bytes, rel=0.01)


class TestDeviceLifetime:
    def test_no_writes_is_infinite(self):
        assert device_lifetime_seconds(QLC_SPEC, GIB, 0.0) == float("inf")

    def test_lifetime_formula(self):
        # 1 GiB at 200 cycles = 200 GiB of writes; at 1 GiB/s that's 200 s.
        assert device_lifetime_seconds(QLC_SPEC, GIB, GIB) == pytest.approx(200.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            device_lifetime_seconds(QLC_SPEC, 0, 1.0)
