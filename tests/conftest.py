"""Shared pytest wiring.

``slow``-marked tests (multi-minute simulation runs) are skipped unless
explicitly selected with ``-m slow`` — they exist to catch determinism
drift at scale, not to run in every unit pass.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    markexpr = config.option.markexpr or ""
    if "slow" in markexpr:
        return
    skip_slow = pytest.mark.skip(reason="slow-marked; select with -m slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
