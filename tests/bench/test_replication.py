"""Tests for replicated-run statistics."""

import pytest

from repro.bench.harness import SystemConfig
from repro.bench.replication import Replicated, _summarize, run_replicated
from repro.errors import ConfigError
from repro.workloads import YCSBConfig


class TestSummarize:
    def test_single_sample(self):
        summary = _summarize("x", [5.0])
        assert summary.mean == 5.0
        assert summary.stdev == 0.0
        assert summary.spread_fraction == 0.0

    def test_statistics(self):
        summary = _summarize("x", [1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.stdev == pytest.approx((2 / 3) ** 0.5)
        assert summary.spread_fraction == pytest.approx(1.0)

    def test_zero_mean_spread(self):
        assert _summarize("x", [0.0, 0.0]).spread_fraction == 0.0


class TestRunReplicated:
    def test_requires_seeds(self):
        with pytest.raises(ConfigError):
            run_replicated(SystemConfig(), YCSBConfig(record_count=10, operation_count=5), seeds=())

    def test_replicas_vary_but_agree_roughly(self):
        workload = YCSBConfig(record_count=2_000, operation_count=2_500)
        summaries = run_replicated(
            SystemConfig(system="rocksdb"), workload, seeds=(1, 2, 3)
        )
        throughput = summaries["throughput_kops"]
        assert len(throughput.samples) == 3
        assert throughput.mean > 0
        # Different seeds produce different-but-similar runs.
        assert len(set(throughput.samples)) > 1
        assert throughput.spread_fraction < 0.5
        assert set(summaries) == {
            "throughput_kops",
            "read_mean_usec",
            "read_p99_usec",
            "write_amplification",
        }

    def test_same_seed_is_deterministic(self):
        workload = YCSBConfig(record_count=1_500, operation_count=1_500)
        a = run_replicated(SystemConfig(system="rocksdb"), workload, seeds=(7,))
        b = run_replicated(SystemConfig(system="rocksdb"), workload, seeds=(7,))
        assert a["throughput_kops"].samples == b["throughput_kops"].samples
