"""Run artifacts: JSON round-trips, compare gating, timeline determinism."""

import json
import math

import pytest

from repro.bench.compare import (
    compare_results,
    comparison_table,
    main as compare_main,
    regressions,
)
from repro.bench.harness import RunResult, SystemConfig, run_experiment
from repro.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.workloads.ycsb import YCSBConfig


@pytest.fixture(scope="module")
def sampled_result():
    config = SystemConfig(system="prismdb", layout_code="NNNTQ", seed=7)
    workload = YCSBConfig.read_update(
        50, record_count=400, operation_count=800, seed=7
    )
    # The tiny workload spans only a few simulated ms; sample finely so
    # the timeline actually has rows.
    return run_experiment(
        config,
        workload,
        label="artifact-test",
        sample_interval_ms=0.2,
        attribution_sample_every=1,
    )


class TestRunResultRoundTrip:
    def test_round_trip_is_bit_exact(self, sampled_result):
        blob = json.dumps(sampled_result.to_json(), allow_nan=False)
        rebuilt = RunResult.from_json(json.loads(blob))
        assert rebuilt == sampled_result
        # And it survives a second pass (no lossy re-encoding).
        assert json.dumps(rebuilt.to_json(), allow_nan=False) == blob

    def test_infinite_lifetime_encodes_as_string(self, sampled_result):
        assert any(
            math.isinf(v) for v in sampled_result.device_lifetime_years.values()
        ), "expected at least one tier with no write budget (infinite lifetime)"
        encoded = sampled_result.to_json()["device_lifetime_years"]
        assert "inf" in encoded.values()
        rebuilt = RunResult.from_json(sampled_result.to_json())
        assert rebuilt.device_lifetime_years == sampled_result.device_lifetime_years

    def test_per_level_keys_restored_as_ints(self, sampled_result):
        rebuilt = RunResult.from_json(sampled_result.to_json())
        assert rebuilt.per_level_write_bytes == sampled_result.per_level_write_bytes
        assert all(
            isinstance(k, int) for k in rebuilt.per_level_write_bytes
        )

    def test_save_load(self, sampled_result, tmp_path):
        path = tmp_path / "run.json"
        sampled_result.save(path)
        assert RunResult.load(path) == sampled_result

    def test_schema_mismatch_rejected(self, sampled_result):
        data = sampled_result.to_json()
        data["schema"] = 999
        with pytest.raises(ConfigError):
            RunResult.from_json(data)

    def test_timeline_attached_and_json_safe(self, sampled_result):
        timeline = sampled_result.timeline
        assert timeline["interval_ms"] == 0.2
        assert len(timeline["t_ms"]) > 0
        assert "run" in timeline["phase"]
        json.dumps(timeline, allow_nan=False)


class TestSchemaV2:
    def test_artifact_is_schema_v2_with_attribution(self, sampled_result):
        assert sampled_result.schema_version == 2
        attr = sampled_result.attribution
        assert attr["schema"] == 1
        assert attr["ops"]["read"]["count"] > 0
        assert attr["slow_ops"], "worst-K slow-op log must be populated"

    def test_slow_op_round_trips_bit_exact_through_save_load(
        self, sampled_result, tmp_path
    ):
        # Acceptance criterion: a slow-op log entry — span events plus the
        # LSM state snapshot — survives save/load byte-for-byte.
        path = tmp_path / "run.json"
        sampled_result.save(path)
        reloaded = RunResult.load(path)
        original = sampled_result.attribution["slow_ops"]
        assert reloaded.attribution["slow_ops"] == original
        entry = original[0]
        assert entry["events"], "slow op must carry its span tree"
        assert "levels" in entry["state"]
        assert "backlog_bytes" in entry["state"]
        assert json.dumps(reloaded.attribution, sort_keys=True) == json.dumps(
            sampled_result.attribution, sort_keys=True
        )

    def test_v1_artifact_loads_via_shim(self, sampled_result):
        data = sampled_result.to_json()
        data["schema"] = 1
        del data["attribution"]
        legacy = RunResult.from_json(data)
        assert legacy.schema_version == 1
        assert legacy.attribution == {}
        # The shim does not silently upgrade: re-encoding keeps v1 out of
        # equality with the v2 original but the metrics are untouched.
        assert legacy.throughput_kops == sampled_result.throughput_kops

    def test_mixed_schema_compare_exits_two(self, sampled_result, tmp_path):
        base = tmp_path / "v1.json"
        cand = tmp_path / "v2.json"
        data = sampled_result.to_json()
        data["schema"] = 1
        del data["attribution"]
        # Write the v1 JSON verbatim: RunResult.save would re-serialize
        # it at the current schema (that *is* the upgrade path).
        base.write_text(json.dumps(data))
        sampled_result.save(cand)
        assert compare_main([str(base), str(cand)]) == 2

    def test_resaving_v1_artifact_upgrades_it(self, sampled_result, tmp_path):
        data = sampled_result.to_json()
        data["schema"] = 1
        del data["attribution"]
        path = tmp_path / "upgraded.json"
        RunResult.from_json(data).save(path)
        assert RunResult.load(path).schema_version == 2

    def test_attribution_is_deterministic(self):
        def one_run():
            config = SystemConfig(system="prismdb", layout_code="NNNTQ", seed=13)
            workload = YCSBConfig.read_update(
                50, record_count=300, operation_count=600, seed=13
            )
            return run_experiment(
                config, workload, label="det", attribution_sample_every=1
            )

        first, second = one_run(), one_run()
        assert first.attribution == second.attribution


class TestRegistrySnapshotRoundTrip:
    def test_snapshot_round_trips_bit_exactly(self):
        registry = MetricsRegistry()
        registry.counter("device.write_bytes", tier="nvm").inc(12345)
        registry.gauge("tracker.occupancy").set(17.5)
        registry.histogram("op.latency_usec", op="read").observe(42.0)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot, allow_nan=False)) == snapshot


class TestCompare:
    def test_compare_self_zero_drift(self, sampled_result):
        other = RunResult.from_json(sampled_result.to_json())
        diffs = compare_results(sampled_result, other, tolerance_pct=0.0)
        assert diffs and not regressions(diffs)
        assert all(d.drift_pct == 0.0 and d.status == "ok" for d in diffs)

    def test_perturbed_p99_regresses(self, sampled_result):
        data = sampled_result.to_json()
        data["read_latency"]["p99"] *= 1.2
        perturbed = RunResult.from_json(data)
        diffs = compare_results(sampled_result, perturbed, tolerance_pct=5.0)
        bad = regressions(diffs)
        assert [d.metric for d in bad] == ["read_latency.p99"]
        assert bad[0].drift_pct == pytest.approx(20.0)

    def test_drift_within_tolerance_passes(self, sampled_result):
        data = sampled_result.to_json()
        data["read_latency"]["p99"] *= 1.02
        perturbed = RunResult.from_json(data)
        assert not regressions(
            compare_results(sampled_result, perturbed, tolerance_pct=5.0)
        )

    def test_improvement_is_not_regression(self, sampled_result):
        data = sampled_result.to_json()
        data["throughput_kops"] *= 2.0
        improved = RunResult.from_json(data)
        diffs = compare_results(sampled_result, improved, tolerance_pct=5.0)
        assert not regressions(diffs)
        by_name = {d.metric: d for d in diffs}
        assert by_name["throughput_kops"].status == "improved"

    def test_comparison_table_regressions_first(self, sampled_result):
        data = sampled_result.to_json()
        data["read_latency"]["p99"] *= 1.5
        perturbed = RunResult.from_json(data)
        diffs = compare_results(sampled_result, perturbed, tolerance_pct=5.0)
        headers, rows = comparison_table(diffs)
        assert rows[0][0] == "read_latency.p99"
        assert "REGRESSION" in rows[0][-1]

    def test_cli_exit_codes(self, sampled_result, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        sampled_result.save(base)
        sampled_result.save(cand)
        assert compare_main([str(base), str(cand)]) == 0
        data = sampled_result.to_json()
        data["read_latency"]["p99"] *= 1.2
        RunResult.from_json(data).save(cand)
        assert compare_main([str(base), str(cand), "--tolerance", "5"]) == 1
        assert compare_main([str(base), str(tmp_path / "missing.json")]) == 2


class TestDeterminism:
    def test_same_seed_identical_timeline(self):
        def one_run():
            config = SystemConfig(system="prismdb", layout_code="NNNTQ", seed=11)
            workload = YCSBConfig.read_update(
                50, record_count=300, operation_count=600, seed=11
            )
            return run_experiment(
                config, workload, label="det", sample_interval_ms=0.2
            )

        first, second = one_run(), one_run()
        assert first.timeline == second.timeline
        assert first == second
