"""Integration tests: the metrics registry agrees with the stat objects.

The registry counters are incremented at different sites than the legacy
stats dataclasses (DeviceStats, CacheStats, DBStats), so equality here is
a real wiring check, not a tautology: every byte the device model moved
must show up, exactly once, in the per-tier registry series.
"""

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.harness import SystemConfig, WorkloadRunner, build_system
from repro.bench.report import build_parser, run_report
from repro.bench.reporting import format_metrics_snapshot, latency_breakdown_table
from repro.lsm.block_cache import BlockType
from repro.workloads import YCSBConfig, YCSBWorkload

#: Fixed YCSB-A mini-run (50/50 read/update, zipfian) per the issue.
YCSB_A = YCSBConfig(
    record_count=2_000,
    operation_count=4_000,
    read_proportion=0.50,
    update_proportion=0.50,
    seed=7,
)


@pytest.fixture(scope="module", params=["prismdb", "rocksdb"])
def finished_run(request):
    """One completed mini-run: (db, RunResult)."""
    workload = YCSBWorkload(YCSB_A)
    config = SystemConfig(system=request.param, seed=7)
    db = build_system(config, workload)
    runner = WorkloadRunner(db, clients=config.clients)
    runner.load(workload)
    elapsed = runner.run(workload)
    return db, runner.result(request.param, config, elapsed)


class TestByteConservation:
    def test_per_tier_write_bytes_match_device_model(self, finished_run):
        db, _ = finished_run
        for tier in db.layout.tiers:
            registry_bytes = db.metrics.total("device.write_bytes", tier=tier.name)
            assert registry_bytes == tier.device.stats.bytes_written, tier.name

    def test_per_tier_read_bytes_match_device_model(self, finished_run):
        db, _ = finished_run
        for tier in db.layout.tiers:
            registry_bytes = db.metrics.total("device.read_bytes", tier=tier.name)
            assert registry_bytes == tier.device.stats.bytes_read, tier.name

    def test_total_write_bytes_match_run_result(self, finished_run):
        db, result = finished_run
        assert db.metrics.total("device.write_bytes") == result.total_io_write_bytes
        assert db.metrics.total("device.read_bytes") == result.total_io_read_bytes

    def test_io_counts_match_device_model(self, finished_run):
        db, _ = finished_run
        for tier in db.layout.tiers:
            assert db.metrics.value("device.reads", tier=tier.name) == (
                tier.device.stats.reads
            )
            assert db.metrics.value("device.writes", tier=tier.name) == (
                tier.device.stats.writes
            )


class TestCacheConservation:
    def test_hits_and_misses_match_cache_stats(self, finished_run):
        db, _ = finished_run
        stats = db.cache.stats
        for block_type in BlockType:
            assert db.metrics.value("cache.hits", type=block_type.value) == (
                stats.hits.get(block_type, 0)
            ), block_type
            assert db.metrics.value("cache.misses", type=block_type.value) == (
                stats.misses.get(block_type, 0)
            ), block_type

    def test_every_block_lookup_is_hit_or_miss(self, finished_run):
        db, _ = finished_run
        lookups = db.metrics.total("cache.hits") + db.metrics.total("cache.misses")
        assert lookups == sum(db.cache.stats.hits.values()) + sum(
            db.cache.stats.misses.values()
        )
        assert lookups > 0


class TestDbAndCompactionConservation:
    def test_reads_by_source_match_db_stats(self, finished_run):
        db, _ = finished_run
        by_source = db.stats.reads_by_source.as_dict()
        for source, count in by_source.items():
            assert db.metrics.value("db.reads", source=source) == count, source
        assert db.metrics.total("db.reads") == db.stats.user_reads

    def test_user_write_bytes_match(self, finished_run):
        db, _ = finished_run
        assert db.metrics.value("db.write_bytes") == db.stats.user_write_bytes
        assert db.metrics.value("db.flush.bytes") == db.stats.flush_bytes
        assert db.metrics.value("db.flush.count") == db.stats.flush_count

    def test_compaction_bytes_match(self, finished_run):
        db, _ = finished_run
        stats = db.executor.stats
        for level, n_bytes in stats.per_level_write_bytes.items():
            assert db.metrics.total("compaction.write_bytes", level=level) == n_bytes
        # Flush (level 0) is included in per-level writes; totals line up.
        assert db.metrics.total("compaction.write_bytes") == sum(
            stats.per_level_write_bytes.values()
        )
        assert db.metrics.total("compaction.read_bytes") == stats.bytes_read

    def test_op_histograms_cover_every_measured_op(self, finished_run):
        db, result = finished_run
        assert db.metrics.total("op.latency_usec") == result.operations
        assert db.metrics.total("read.latency_usec") == db.metrics.total(
            "op.latency_usec", op="read"
        )


class TestTrackerConservation:
    def test_tracker_counters_match_stats(self):
        workload = YCSBWorkload(YCSB_A)
        db = build_system(SystemConfig(system="prismdb", seed=7), workload)
        runner = WorkloadRunner(db, clients=8)
        runner.load(workload)
        runner.run(workload)
        stats = db.tracker.stats
        pairs = {
            "insert": stats.inserts,
            "version_hit": stats.version_hits,
            "version_mismatch": stats.version_mismatches,
            "eviction": stats.evictions,
            "decrement": stats.decrements,
            "hand_step": stats.hand_steps,
        }
        for kind, expected in pairs.items():
            assert db.metrics.value("tracker.events", kind=kind) == expected, kind
        assert db.metrics.value("tracker.occupancy") == len(db.tracker)
        assert db.metrics.value("prism.tracked_reads") == db.stats.user_reads


class TestReportViews:
    def test_breakdown_table_from_snapshot_alone(self, finished_run):
        _, result = finished_run
        headers, rows = latency_breakdown_table(result.metrics)
        assert headers[0] == "phase"
        phases = [row[0] for row in rows]
        assert any(p.startswith("op:") for p in phases)
        assert any(p.startswith("read from ") for p in phases)
        # Op shares sum to ~100 %.
        op_rows = [row for row in rows if row[0].startswith("op:")]
        total_share = sum(float(row[2].rstrip("%")) for row in op_rows)
        assert total_share == pytest.approx(100.0, abs=0.2)

    def test_snapshot_formats_without_error(self, finished_run):
        _, result = finished_run
        text = format_metrics_snapshot(result.metrics)
        assert "device.write_bytes" in text
        assert "op.latency_usec" in text

    def test_report_command_smoke(self, capsys, tmp_path):
        trace_path = str(tmp_path / "run.trace.jsonl")
        args = build_parser().parse_args(
            [
                "--records", "500",
                "--ops", "800",
                "--metrics",
                "--breakdown",
                "--trace", trace_path,
            ]
        )
        assert run_report(args) == 0
        out = capsys.readouterr().out
        assert "Latency breakdown" in out
        assert "Metrics registry" in out
        assert "trace events" in out
        with open(trace_path) as handle:
            assert sum(1 for line in handle if line.strip()) > 0

    def test_report_via_bench_cli(self, capsys):
        assert bench_main(["report", "--records", "300", "--ops", "400"]) == 0
        assert "Latency breakdown" in capsys.readouterr().out
