"""Tests for the design-space sweep subcommand and its artifacts."""

import argparse
import json
import os

from repro.bench.cli import main
from repro.bench.harness import RunResult
from repro.bench.sweep import (
    add_sweep_arguments,
    cell_label,
    render_sweep_table,
    run_sweep_cell,
)

#: Tiny grid: fast enough for the unit pass, big enough to compact.
TINY = ["--records", "600", "--ops", "500"]


def parse_sweep(extra):
    parser = argparse.ArgumentParser()
    add_sweep_arguments(parser)
    return parser.parse_args(TINY + extra)


class TestSweepCells:
    def test_same_seed_cells_are_identical(self):
        args = parse_sweep([])
        first = run_sweep_cell(args, "NNNTQ", "tiering", 90)
        second = run_sweep_cell(args, "NNNTQ", "tiering", 90)
        assert first.to_json() == second.to_json()

    def test_seed_changes_the_run(self):
        base = parse_sweep([])
        reseeded = parse_sweep(["--seed", "1"])
        a = run_sweep_cell(base, "NNNTQ", "leveling", 90)
        b = run_sweep_cell(reseeded, "NNNTQ", "leveling", 90)
        assert a.elapsed_usec != b.elapsed_usec

    def test_shapes_actually_differ(self):
        args = parse_sweep([])
        leveled = run_sweep_cell(args, "NNNTQ", "leveling", 50)
        tiered = run_sweep_cell(args, "NNNTQ", "tiering", 50)
        assert leveled.to_json() != tiered.to_json()

    def test_pinned_router_runs_under_every_shape(self):
        args = parse_sweep([])
        for shape in ("leveling", "tiering", "lazy-leveling"):
            result = run_sweep_cell(args, "NNNTQ", shape, 50)
            assert result.system == "prismdb"
            assert result.label == cell_label("prismdb", "NNNTQ", shape, 50)


class TestSweepTable:
    def test_winner_column_marks_max_throughput(self):
        args = parse_sweep([])
        shapes = ["leveling", "tiering"]
        results = {
            ("NNNTQ", 90, shape): run_sweep_cell(args, "NNNTQ", shape, 90)
            for shape in shapes
        }
        headers, rows = render_sweep_table(results, ["NNNTQ"], [90], shapes)
        assert headers[-1] == "winner"
        assert len(rows) == 1
        winner = rows[0][-1]
        assert winner in shapes
        best = max(shapes, key=lambda s: results[("NNNTQ", 90, s)].throughput_kops)
        assert winner == best


class TestSweepCli:
    def test_cli_writes_artifacts_and_index(self, tmp_path, capsys):
        out = str(tmp_path / "sweep")
        code = main(
            ["sweep", *TINY, "--shapes", "leveling", "tiering", "lazy-leveling",
             "--mixes", "90", "40", "--out", out]
        )
        assert code == 0
        table = capsys.readouterr().out
        assert "Design-space sweep" in table
        assert "lazy-leveling" in table
        index = json.load(open(os.path.join(out, "sweep.json")))
        assert len(index["grid"]) == 6  # 3 shapes x 2 mixes
        for entry in index["grid"]:
            artifact = RunResult.load(os.path.join(out, entry["artifact"]))
            assert artifact.throughput_kops == entry["throughput_kops"]
            assert artifact.operations > 0

    def test_cli_rejects_unknown_shape(self, capsys):
        assert main(["sweep", "--shapes", "spiral"]) == 2

    def test_jobs_do_not_change_the_artifacts(self, tmp_path, capsys):
        # Cells are independent seeded runs, so fanning them over a
        # process pool must leave sweep.json and every cell artifact
        # byte-identical to the inline run.
        grids = {}
        for jobs in ("1", "2"):
            out = str(tmp_path / f"jobs{jobs}")
            code = main(
                ["sweep", *TINY, "--shapes", "leveling", "tiering",
                 "--mixes", "90", "--jobs", jobs, "--out", out]
            )
            assert code == 0
            capsys.readouterr()
            grids[jobs] = {
                "index": open(os.path.join(out, "sweep.json")).read(),
                "cells": {
                    name: open(os.path.join(out, name)).read()
                    for name in sorted(os.listdir(out))
                    if name != "sweep.json"
                },
            }
        assert grids["1"] == grids["2"]
