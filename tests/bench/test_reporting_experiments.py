"""Tests for reporting and the analytic experiment functions."""

import pytest

from repro.bench.experiments import (
    ExperimentScale,
    fig4_cost_latency,
    fig6_clock_distribution,
    table1_devices,
    table3_storage_costs,
)
from repro.bench.reporting import fmt, format_experiment, format_table, pct


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long_header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_format_experiment_has_title_and_notes(self):
        text = format_experiment("My Title", ["x"], [[1]], notes="a note")
        assert "== My Title ==" in text
        assert "a note" in text

    def test_fmt_and_pct(self):
        assert fmt(1.234) == "1.2"
        assert fmt(1.234, 2) == "1.23"
        assert pct(0.5) == "50.0%"


class TestAnalyticExperiments:
    def test_table1_rows(self):
        headers, rows = table1_devices()
        assert headers == ["", "NVM", "TLC", "QLC"]
        assert len(rows) == 4
        assert rows[0][1:] == [18_000, 540, 200]

    def test_table3_rows(self):
        headers, rows = table3_storage_costs()
        assert "QQQQQ" in headers
        assert rows[0][0] == "Storage Cost"
        assert all(cell.startswith("$") for cell in rows[0][1:])

    def test_fig4_rows(self):
        headers, rows = fig4_cost_latency()
        assert len(rows) == 243
        pareto_marks = [row for row in rows if row[3] == "*"]
        assert pareto_marks
        # Sorted by latency.
        latencies = [float(row[1]) for row in rows]
        assert latencies == sorted(latencies)

    def test_fig6_rows_converge(self):
        headers, rows = fig6_clock_distribution(
            n_keys=2_000, snapshots=(500, 2_000, 8_000)
        )
        assert len(rows) == 3
        assert rows[-1][-1] == "yes"  # tracker fills
        fractions = [float(cell.rstrip("%")) for cell in rows[-1][1:5]]
        assert sum(fractions) == pytest.approx(100.0, abs=1.0)


class TestScale:
    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        quick = ExperimentScale.from_env()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        full = ExperimentScale.from_env()
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        default = ExperimentScale.from_env()
        assert quick.record_count < default.record_count < full.record_count
