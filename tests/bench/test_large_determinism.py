"""Million-key determinism smoke, pinned to a committed digest.

The always-on smoke determinism test covers 3k records / 5k ops; this
slow-marked companion loads a million-key keyspace and runs 100k ops on
each of the three systems with the same seed, then hashes every
comparable scalar metric of all three runs into one digest. Any change
to simulated behaviour that only manifests at scale — level-spill
patterns, compaction cascades, cache churn the small run never reaches —
shows up as a digest mismatch here.

Run it explicitly (several minutes of wall-clock):

    PYTHONPATH=src python -m pytest -m slow tests/bench/test_large_determinism.py

If a change to simulated behaviour is *intentional*, recompute the
digest by running the test and copying the value from the assertion
message into ``EXPECTED_DIGEST``.
"""

import hashlib
import json

import pytest

from repro.bench.compare import comparable_scalars
from repro.bench.harness import SystemConfig, run_experiment
from repro.workloads.ycsb import YCSBConfig

LARGE_RECORDS = 1_000_000
LARGE_OPS = 100_000
LARGE_SEED = 0

#: sha256 over the sorted-key JSON of {system: comparable_scalars(run)}.
EXPECTED_DIGEST = "89a3085e1068f94f6d6c4c66cafcc986000c0bd39b30ff50bb0033c3c0b2326d"


def _digest(scalars_by_system: dict[str, dict[str, float]]) -> str:
    payload = json.dumps(scalars_by_system, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@pytest.mark.slow
def test_million_key_runs_match_committed_digest():
    scalars_by_system = {}
    for system in ("rocksdb", "prismdb", "mutant"):
        config = SystemConfig(system=system, layout_code="NNNTQ", seed=LARGE_SEED)
        workload = YCSBConfig.read_update(
            50,
            record_count=LARGE_RECORDS,
            operation_count=LARGE_OPS,
            seed=LARGE_SEED,
        )
        result = run_experiment(config, workload, label=f"large/{system}")
        scalars_by_system[system] = comparable_scalars(result)
    digest = _digest(scalars_by_system)
    assert digest == EXPECTED_DIGEST, (
        "million-key simulated metrics drifted from the committed digest "
        f"(got {digest}); if the behaviour change is intentional, update "
        "EXPECTED_DIGEST in this test"
    )
