"""Tests for the memoizing experiment runner (quick scale)."""

import pytest

from repro.bench.experiments import ExperimentScale, ExperimentRunner


@pytest.fixture(scope="module")
def tiny_runner():
    scale = ExperimentScale(
        record_count=1_500,
        operation_count=1_200,
        aging_operations=1_200,
        settle_operations=600,
    )
    return ExperimentRunner(scale)


class TestMemoization:
    def test_same_key_returns_same_object(self, tiny_runner):
        a = tiny_runner.run("rocksdb", "NNNTQ")
        b = tiny_runner.run("rocksdb", "NNNTQ")
        assert a is b

    def test_different_layout_is_a_new_run(self, tiny_runner):
        a = tiny_runner.run("rocksdb", "NNNTQ")
        b = tiny_runner.run("rocksdb", "QQQQQ")
        assert a is not b
        assert b.layout_code == "QQQQQ"

    def test_prism_overrides_key_separately(self, tiny_runner):
        a = tiny_runner.run("prismdb", "NNNTQ")
        b = tiny_runner.run("prismdb", "NNNTQ", prism_overrides={"up_compaction": False})
        assert a is not b

    def test_row_cache_share_keys_separately(self, tiny_runner):
        a = tiny_runner.run("rocksdb", "NNNTQ")
        b = tiny_runner.run("rocksdb", "NNNTQ", row_cache_share=0.5)
        assert a is not b

    def test_results_carry_metrics(self, tiny_runner):
        result = tiny_runner.run("rocksdb", "NNNTQ")
        assert result.operations == 1_200
        assert result.throughput_kops > 0
        assert result.read_latency.count > 0


class TestWorkloadConfigBuilder:
    def test_mix_translation(self, tiny_runner):
        config = tiny_runner.workload_config(read_pct=80)
        assert config.read_proportion == pytest.approx(0.8)
        assert config.update_proportion == pytest.approx(0.2)

    def test_distribution_passthrough(self, tiny_runner):
        config = tiny_runner.workload_config(distribution="latest", zipf_theta=0.8)
        assert config.distribution == "latest"
        assert config.zipf_theta == 0.8
