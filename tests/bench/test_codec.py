"""Binary artifact codec: exact round-trips vs the JSON path.

The codec's contract (see ``repro.bench.codec``) is that
``decode_tree(encode_tree(tree)) == tree`` *exactly* for every JSON-safe
tree: types preserved (``True`` is not ``1``, ``1`` is not ``1.0``),
floats bit-for-bit, dict insertion order kept. That is what lets the
fleet ship shard results as one bytes blob while the committed digests
stay oblivious to the wire format. The property test here generates
random JSON-safe trees and checks the codec round-trip against the
``json`` module's round-trip on the same tree.
"""

import json
import math
import random

import pytest

from repro.bench.codec import (
    MAGIC,
    VERSION,
    decode_result,
    decode_tree,
    encode_result,
    encode_tree,
)
from repro.bench.harness import SystemConfig, run_experiment
from repro.errors import CorruptionError
from repro.fleet.runner import FleetConfig, default_tenants, run_fleet
from repro.workloads.ycsb import YCSBConfig


def assert_exact(original, rebuilt):
    """Equality plus exact types, recursively (1 != 1.0, True != 1)."""
    assert type(rebuilt) is type(original)
    if type(original) is list:
        assert len(rebuilt) == len(original)
        for item, back in zip(original, rebuilt):
            assert_exact(item, back)
    elif type(original) is dict:
        # Insertion order is part of the contract: to_json() order feeds
        # the digests via json.dumps without sort_keys.
        assert list(rebuilt.keys()) == list(original.keys())
        for key in original:
            assert_exact(original[key], rebuilt[key])
    elif type(original) is float:
        if math.isnan(original):
            assert math.isnan(rebuilt)
        else:
            assert rebuilt == original
            assert math.copysign(1.0, rebuilt) == math.copysign(1.0, original)
    else:
        assert rebuilt == original


def round_trip(tree):
    rebuilt = decode_tree(encode_tree(tree))
    assert_exact(tree, rebuilt)
    return rebuilt


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**62, -(2**62),
        (1 << 63) - 1, -(1 << 63),          # int64 edges, array-packable
        1 << 63, -(1 << 63) - 1, 2**80, -(2**80),  # bigint fallback
        0.0, -0.0, 1.5, -2.25e300, 5e-324, float("inf"), float("-inf"),
        "", "plain", "unicode: µs ∆ ☃", "embedded \x00 nul",
    ])
    def test_scalar_round_trip(self, value):
        round_trip(value)

    def test_nan_round_trips(self):
        assert math.isnan(decode_tree(encode_tree(float("nan"))))

    def test_float_bit_exact(self):
        # A value that loses precision through repr-based paths at
        # lower digit counts; struct <d keeps every bit.
        value = 0.1 + 0.2
        assert decode_tree(encode_tree(value)) == value


class TestContainers:
    def test_bool_list_not_packed_as_ints(self):
        round_trip([True, False, True])

    def test_int_list_packs_and_restores(self):
        round_trip(list(range(-5, 2000, 7)))

    def test_float_list_packs_and_restores(self):
        round_trip([0.5 * i for i in range(500)] + [-0.0])

    def test_mixed_list(self):
        round_trip([1, 1.0, True, None, "x", [2], {"k": 3}])

    def test_big_int_list_falls_back_to_tagged(self):
        round_trip([1, 2**70, 3])

    def test_dict_insertion_order(self):
        tree = {"z": 1, "a": 2, "m": {"q": 1, "b": 2}}
        rebuilt = round_trip(tree)
        assert json.dumps(rebuilt) == json.dumps(tree)

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            encode_tree({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            encode_tree({"x": object()})


def random_tree(rng, depth=0):
    """One random JSON-safe tree; leans numeric like real artifacts."""
    roll = rng.random()
    if depth >= 4 or roll < 0.55:
        return rng.choice([
            lambda: None,
            lambda: rng.random() < 0.5,
            lambda: rng.randint(-(2**70), 2**70),
            lambda: rng.randint(-(2**31), 2**31),
            lambda: rng.uniform(-1e12, 1e12),
            lambda: rng.choice([0.0, -0.0, float("inf"), 1e-300]),
            lambda: "".join(
                rng.choice("abc µ∆ xyz_0123") for _ in range(rng.randrange(12))
            ),
        ])()
    if roll < 0.70:  # homogeneous numeric list (timeline-shaped)
        n = rng.randrange(30)
        if rng.random() < 0.5:
            return [rng.uniform(-1e9, 1e9) for _ in range(n)]
        return [rng.randint(-(2**40), 2**40) for _ in range(n)]
    if roll < 0.85:
        return [random_tree(rng, depth + 1) for _ in range(rng.randrange(8))]
    return {
        f"k{i}_{rng.randrange(100)}": random_tree(rng, depth + 1)
        for i in range(rng.randrange(8))
    }


class TestProperty:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_trees_round_trip(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng)
        rebuilt = round_trip(tree)
        # Cross-check against the JSON path: both round-trips must agree
        # wherever JSON itself is lossless (i.e. on everything here but
        # non-finite floats, which JSON cannot carry).
        try:
            via_json = json.loads(json.dumps(tree, allow_nan=False))
        except ValueError:
            return
        assert json.dumps(rebuilt, allow_nan=False) == json.dumps(via_json, allow_nan=False)


class TestCorruption:
    def test_truncated_tree(self):
        blob = encode_tree({"a": [1.5] * 10})
        for cut in (0, 1, 5, len(blob) - 1):
            with pytest.raises(CorruptionError):
                decode_tree(blob[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(CorruptionError):
            decode_tree(encode_tree(1) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(CorruptionError):
            decode_tree(b"\xff")

    def test_bad_magic(self):
        with pytest.raises(CorruptionError):
            decode_result(b"XXXX\x01" + encode_tree({}))

    def test_bad_version(self):
        blob = bytearray(MAGIC)
        blob.append(VERSION + 1)
        blob += encode_tree({})
        with pytest.raises(CorruptionError):
            decode_result(bytes(blob))


@pytest.fixture(scope="module")
def attributed_result():
    """A schema-2 artifact with timeline + attribution blocks."""
    config = SystemConfig(system="prismdb", layout_code="NNNTQ", seed=7)
    workload = YCSBConfig.read_update(
        50, record_count=400, operation_count=800, seed=7
    )
    return run_experiment(
        config,
        workload,
        label="codec-test",
        sample_interval_ms=0.2,
        attribution_sample_every=1,
    )


@pytest.fixture(scope="module")
def fleet_result():
    """A merged fleet artifact with the fleet provenance block."""
    config = FleetConfig(
        shards=2,
        tenants=default_tenants(2, keys_per_tenant=600),
        total_operations=2_000,
        seed=3,
        sample_interval_ms=0.5,
    )
    return run_fleet(config, jobs=1)


class TestRunResultRoundTrip:
    def test_attributed_artifact(self, attributed_result):
        rebuilt = decode_result(encode_result(attributed_result))
        assert rebuilt == attributed_result
        assert_exact(attributed_result.to_json(), rebuilt.to_json())

    def test_attributed_artifact_json_bytes_identical(self, attributed_result):
        # The property the fleet digests rely on: the artifact's JSON
        # bytes cannot tell whether the result crossed the binary wire.
        rebuilt = decode_result(encode_result(attributed_result))
        assert (
            json.dumps(rebuilt.to_json(), indent=2)
            == json.dumps(attributed_result.to_json(), indent=2)
        )

    def test_fleet_artifact(self, fleet_result):
        assert fleet_result.fleet, "fixture should carry a fleet block"
        rebuilt = decode_result(encode_result(fleet_result))
        assert rebuilt == fleet_result
        assert_exact(fleet_result.to_json(), rebuilt.to_json())
