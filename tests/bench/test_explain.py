"""Tests for ``repro.bench explain`` (attribution render and diff)."""

import json

import pytest

from repro.bench.explain import main as explain_main
from repro.bench.harness import RunResult, SystemConfig, run_experiment
from repro.workloads.ycsb import YCSBConfig


def make_result(seed, cache_fraction=0.10):
    return run_experiment(
        SystemConfig(system="prismdb", seed=seed, cache_fraction=cache_fraction),
        YCSBConfig.read_update(50, record_count=400, operation_count=800, seed=seed),
        label=f"explain-test-{seed}",
        attribution_sample_every=1,
    )


@pytest.fixture(scope="module")
def artifact_pair(tmp_path_factory):
    """Two seeded smoke artifacts with attribution, saved to disk."""
    root = tmp_path_factory.mktemp("explain")
    paths = []
    # A starved cache in the candidate forces more device reads, so the
    # pair exhibits a real p99 delta for the diff to decompose.
    for seed, cache in ((7, 0.10), (21, 0.02)):
        result = make_result(seed, cache)
        path = str(root / f"run_{seed}.json")
        result.save(path)
        paths.append(path)
    return paths


class TestSingleArtifact:
    def test_renders_non_empty_table(self, artifact_pair, capsys):
        assert explain_main([artifact_pair[0]]) == 0
        out = capsys.readouterr().out
        assert "Latency attribution" in out
        assert "component/tier" in out
        assert "p99" in out
        # At least one attributed component row is present.
        assert any(key in out for key in ("data/", "memtable/", "cpu/"))

    def test_json_dump_matches_artifact(self, artifact_pair, capsys):
        assert explain_main([artifact_pair[0], "--json"]) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert dumped == RunResult.load(artifact_pair[0]).attribution

    def test_output_is_deterministic(self, artifact_pair, capsys):
        explain_main([artifact_pair[0]])
        first = capsys.readouterr().out
        explain_main([artifact_pair[0]])
        assert capsys.readouterr().out == first


class TestDiff:
    def test_diff_renders_and_exits_zero(self, artifact_pair, capsys):
        assert explain_main(artifact_pair) == 0
        out = capsys.readouterr().out
        assert "Attribution diff" in out
        assert "of the delta is explained" in out

    def test_p99_delta_at_least_90_percent_explained(self, artifact_pair, capsys):
        # Acceptance criterion: the p99 read-latency delta between two
        # seeded smokes is >= 90% attributed to named component/tier
        # buckets (exhaustive residual accounting makes it ~100%).
        assert explain_main(artifact_pair + ["--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["op"] == "read"
        assert diff["band"] == "p99"
        assert diff["delta_usec"] != 0.0
        assert diff["explained_fraction"] >= 0.90
        assert all("/" in c["key"] for c in diff["contributors"])

    def test_diff_is_deterministic(self, artifact_pair, capsys):
        explain_main(artifact_pair)
        first = capsys.readouterr().out
        explain_main(artifact_pair)
        assert capsys.readouterr().out == first

    def test_band_and_top_flags(self, artifact_pair, capsys):
        assert explain_main(artifact_pair + ["--band", "p50", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_unattributed_op_exits_two(self, artifact_pair, capsys):
        assert explain_main(artifact_pair + ["--op", "nope"]) == 2
        assert "no 'nope' ops attributed" in capsys.readouterr().err


class TestInputValidation:
    def test_artifact_without_attribution_exits_two(self, tmp_path, capsys):
        result = run_experiment(
            SystemConfig(system="rocksdb", seed=3),
            YCSBConfig.read_update(50, record_count=200, operation_count=200, seed=3),
        )
        path = str(tmp_path / "plain.json")
        result.save(path)
        assert explain_main([path]) == 2
        err = capsys.readouterr().err
        assert "no attribution data" in err
        assert "--attribution" in err  # upgrade hint names the flag

    def test_v1_artifact_exits_two_with_hint(self, artifact_pair, tmp_path, capsys):
        with open(artifact_pair[0]) as handle:
            data = json.load(handle)
        data["schema"] = 1
        data.pop("attribution", None)
        path = str(tmp_path / "v1.json")
        with open(path, "w") as handle:
            json.dump(data, handle)
        assert explain_main([path]) == 2
        err = capsys.readouterr().err
        assert "schema v1" in err
        assert "--attribution" in err

    def test_three_artifacts_rejected(self, artifact_pair, capsys):
        assert explain_main(artifact_pair + [artifact_pair[0]]) == 2
        assert "one or two artifacts" in capsys.readouterr().err

    def test_missing_file_exits_two(self, capsys):
        assert explain_main(["/nonexistent/run.json"]) == 2
        assert "error" in capsys.readouterr().err
