"""Tests for the benchmark harness (small scales)."""

import pytest

from repro.baselines.mutant import MutantDB
from repro.baselines.rocksdb import RocksDBLike
from repro.bench.harness import (
    RunResult,
    SystemConfig,
    WorkloadRunner,
    build_system,
    run_experiment,
)
from repro.core.prismdb import PrismDB
from repro.errors import ConfigError
from repro.workloads import YCSBConfig, YCSBWorkload

SMALL = YCSBConfig(record_count=2_000, operation_count=3_000)


class TestSystemConfig:
    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(system="leveldb")

    def test_bad_clients_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(clients=0)


class TestBuildSystem:
    def test_builds_each_system(self):
        workload = YCSBWorkload(SMALL)
        assert isinstance(build_system(SystemConfig(system="rocksdb"), workload), RocksDBLike)
        assert isinstance(build_system(SystemConfig(system="prismdb"), workload), PrismDB)
        assert isinstance(build_system(SystemConfig(system="mutant"), workload), MutantDB)

    def test_layout_follows_config(self):
        workload = YCSBWorkload(SMALL)
        db = build_system(SystemConfig(system="rocksdb", layout_code="QQQQQ"), workload)
        assert db.layout.code == "QQQQQ"

    def test_cache_disabled(self):
        workload = YCSBWorkload(SMALL)
        db = build_system(SystemConfig(system="rocksdb", cache_disabled=True), workload)
        assert db.cache.capacity_bytes == 0

    def test_tracker_sized_from_keyspace(self):
        workload = YCSBWorkload(SMALL)
        db = build_system(SystemConfig(system="prismdb", tracker_fraction=0.10), workload)
        assert db.tracker.capacity == 200


class TestWorkloadRunner:
    def test_load_advances_clock(self):
        workload = YCSBWorkload(SMALL)
        db = build_system(SystemConfig(system="rocksdb"), workload)
        runner = WorkloadRunner(db, clients=8)
        elapsed = runner.load(workload)
        assert elapsed > 0
        assert db.clock.now == pytest.approx(elapsed)

    def test_run_records_latencies(self):
        workload = YCSBWorkload(SMALL)
        db = build_system(SystemConfig(system="rocksdb"), workload)
        runner = WorkloadRunner(db, clients=8)
        runner.load(workload)
        runner.run(workload)
        assert len(runner.read_latency) > 0
        assert len(runner.update_latency) > 0
        assert len(runner.read_latency) + len(runner.update_latency) == SMALL.operation_count

    def test_warmup_not_measured(self):
        config = YCSBConfig(record_count=2_000, operation_count=100, warmup_operations=500)
        workload = YCSBWorkload(config)
        db = build_system(SystemConfig(system="rocksdb"), workload)
        runner = WorkloadRunner(db, clients=8)
        runner.load(workload)
        runner.warmup(workload)
        assert len(runner.read_latency) == 0
        runner.run(workload)
        assert len(runner.read_latency) + len(runner.update_latency) == 100

    def test_bad_clients_rejected(self):
        workload = YCSBWorkload(SMALL)
        db = build_system(SystemConfig(system="rocksdb"), workload)
        with pytest.raises(ConfigError):
            WorkloadRunner(db, clients=0)

    def test_scan_latency_recorded_separately(self):
        config = YCSBConfig(
            record_count=2_000, operation_count=2_000,
            read_proportion=0.5, update_proportion=0.3, scan_proportion=0.2,
        )
        workload = YCSBWorkload(config)
        db = build_system(SystemConfig(system="rocksdb"), workload)
        runner = WorkloadRunner(db, clients=8)
        runner.load(workload)
        runner.run(workload)
        assert len(runner.scan_latency) > 0
        total = (
            len(runner.read_latency)
            + len(runner.update_latency)
            + len(runner.scan_latency)
        )
        assert total == config.operation_count
        # Scans touch many records, so they must not drag point-read
        # percentiles: the populations are disjoint.
        result = runner.result("scan-split", SystemConfig(system="rocksdb"), 1.0)
        assert result.scan_latency.count == len(runner.scan_latency)
        assert result.scan_latency.mean > result.read_latency.mean


class TestRunExperiment:
    def test_end_to_end_result(self):
        result = run_experiment(SystemConfig(system="rocksdb"), SMALL)
        assert isinstance(result, RunResult)
        assert result.operations == SMALL.operation_count
        assert result.throughput_kops > 0
        assert result.read_latency.count > 0
        assert result.elapsed_usec > 0
        assert result.storage_cost_dollars > 0
        assert sum(result.reads_by_source.values()) > 0

    def test_mutant_reports_migrations(self):
        result = run_experiment(SystemConfig(system="mutant"), SMALL)
        assert result.migrations >= 0  # field present and non-negative

    def test_prism_reports_pins(self):
        result = run_experiment(
            SystemConfig(system="prismdb", pinning_threshold=0.5),
            YCSBConfig(record_count=2_000, operation_count=6_000, warmup_operations=4_000,
                       read_proportion=0.7, update_proportion=0.3),
        )
        assert result.pinned_records + result.pulled_up_records >= 0

    def test_device_io_accounted(self):
        result = run_experiment(SystemConfig(system="rocksdb"), SMALL)
        assert result.total_io_write_bytes > 0
        assert result.total_io_read_bytes >= 0
        assert result.write_amplification > 1.0
