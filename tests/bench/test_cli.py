"""Tests for the command-line entry point."""

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig9a", "fig14"):
            assert name in out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_analytic_experiments_run(self, capsys):
        assert main(["table1", "table3"]) == 0
        out = capsys.readouterr().out
        assert "P/E cycles" in out
        assert "QQQQQ" in out

    def test_registry_covers_every_artifact(self):
        # Every table and figure in the paper's evaluation is present.
        expected = {
            "table1", "table2", "table3", "table4",
            "fig2a", "fig3", "fig4", "fig6",
            "fig9a", "fig9b", "fig10ab", "fig10cd",
            "fig11", "fig12", "fig13", "fig14",
        }
        assert expected <= set(EXPERIMENTS)

    def test_fig6_via_cli(self, capsys):
        assert main(["fig6"]) == 0
        assert "clock3" in capsys.readouterr().out
