"""Tests for the command-line entry point."""

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig9a", "fig14"):
            assert name in out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_analytic_experiments_run(self, capsys):
        assert main(["table1", "table3"]) == 0
        out = capsys.readouterr().out
        assert "P/E cycles" in out
        assert "QQQQQ" in out

    def test_registry_covers_every_artifact(self):
        # Every table and figure in the paper's evaluation is present.
        expected = {
            "table1", "table2", "table3", "table4",
            "fig2a", "fig3", "fig4", "fig6",
            "fig9a", "fig9b", "fig10ab", "fig10cd",
            "fig11", "fig12", "fig13", "fig14",
        }
        assert expected <= set(EXPERIMENTS)

    def test_fig6_via_cli(self, capsys):
        assert main(["fig6"]) == 0
        assert "clock3" in capsys.readouterr().out


WORKLOAD_ARGS = [
    "--records", "300", "--ops", "600", "--seed", "3",
    "--system", "prismdb", "--layout", "NNNTQ",
]


class TestSubcommands:
    def test_run_subcommand_explicit(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "P/E cycles" in capsys.readouterr().out

    def test_run_unknown_is_usage_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for sub in ("run", "report", "timeline", "compare", "list"):
            assert sub in out

    def test_subcommand_help_exits_zero(self, capsys):
        for sub in ("run", "report", "timeline", "compare", "list"):
            assert main([sub, "--help"]) == 0
            capsys.readouterr()

    def test_timeline_sparkline(self, capsys):
        code = main(["timeline", *WORKLOAD_ARGS, "--interval-ms", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput_kops" in out
        assert "samples" in out

    def test_timeline_list_series(self, capsys):
        code = main(
            ["timeline", *WORKLOAD_ARGS, "--interval-ms", "0.2", "--list-series"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput_kops" in out.splitlines()

    def test_timeline_unknown_series(self, capsys):
        code = main(
            ["timeline", *WORKLOAD_ARGS, "--interval-ms", "0.2",
             "--series", "bogus_series"]
        )
        assert code == 2
        assert "unknown series" in capsys.readouterr().err

    def test_timeline_csv_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "t.csv"
        code = main(
            ["timeline", *WORKLOAD_ARGS, "--interval-ms", "0.2",
             "--format", "csv", "--out", str(out_file)]
        )
        capsys.readouterr()
        assert code == 0
        header = out_file.read_text().splitlines()[0]
        assert header.startswith("t_ms,phase,")

    def test_timeline_save_then_compare_self(self, tmp_path, capsys):
        artifact = tmp_path / "run.json"
        code = main(
            ["timeline", *WORKLOAD_ARGS, "--interval-ms", "0.2",
             "--format", "json", "--out", str(tmp_path / "t.json"),
             "--save", str(artifact)]
        )
        capsys.readouterr()
        assert code == 0
        assert artifact.exists()
        # Re-render the saved artifact without running a fresh workload.
        assert main(["timeline", "--artifact", str(artifact)]) == 0
        capsys.readouterr()
        # Deterministic run compared against itself: zero drift, exit 0.
        assert main(["compare", str(artifact), str(artifact)]) == 0
        assert "REGRESSION" not in capsys.readouterr().out

    def test_compare_missing_file_is_error(self, tmp_path, capsys):
        code = main(["compare", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_report_save_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        code = main(
            ["report", *WORKLOAD_ARGS, "--save", str(artifact),
             "--sample-interval-ms", "0.2"]
        )
        capsys.readouterr()
        assert code == 0
        assert artifact.exists()


class TestMicroSubcommand:
    def test_micro_filter_runs_and_prints_table(self, capsys):
        code = main(["micro", "--filter", "metrics", "--repeats", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics.counter_inc" in out
        assert "ops/sec" in out

    def test_micro_unknown_filter_is_usage_error(self, capsys):
        assert main(["micro", "--filter", "nosuchbench"]) == 2

    def test_micro_json_output(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "micro.json"
        code = main(
            ["micro", "--filter", "zipfian.sample", "--repeats", "1",
             "--json", str(out_file)]
        )
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == 1
        names = [bench["name"] for bench in payload["benchmarks"]]
        assert names == ["zipfian.sample"]
        assert payload["benchmarks"][0]["ops_per_sec"] > 0

    def test_run_with_profile_prints_report(self, capsys):
        code = main(["run", "table1", "--profile", "--profile-limit", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cProfile" in out
        assert "cumulative" in out
