"""Same-seed smoke runs must match the committed baselines exactly.

The perf gate (``scripts/perf_gate.py``) compares smoke artifacts with a
tolerance band; this test is the stricter, always-on version: a fresh
run of each system with the gate's exact parameters must show *zero
drift* against ``benchmarks/results/baseline_<system>.json``. Any
unintentional change to simulated behavior — block format, cache
accounting, merge order, RNG draw order — shows up here as a failing
metric diff, with the offending metrics named.
"""

import os

import pytest

from repro.bench.compare import compare_results
from repro.bench.harness import RunResult, SystemConfig, run_experiment
from repro.workloads.ycsb import YCSBConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

#: Mirrors scripts/perf_gate.py::smoke_run — keep in sync.
SMOKE_RECORDS = 3000
SMOKE_OPS = 5000
SMOKE_SEED = 0


def smoke_run(system: str) -> RunResult:
    config = SystemConfig(system=system, layout_code="NNNTQ", seed=SMOKE_SEED)
    workload = YCSBConfig.read_update(
        50, record_count=SMOKE_RECORDS, operation_count=SMOKE_OPS, seed=SMOKE_SEED
    )
    return run_experiment(
        config, workload, label=f"smoke/{system}", sample_interval_ms=5.0
    )


@pytest.mark.parametrize("system", ["rocksdb", "prismdb", "mutant"])
def test_smoke_run_matches_committed_baseline_exactly(system):
    baseline_path = os.path.join(RESULTS_DIR, f"baseline_{system}.json")
    if not os.path.exists(baseline_path):
        pytest.skip(f"no committed baseline for {system}")
    baseline = RunResult.load(baseline_path)
    candidate = smoke_run(system)
    drifted = [
        f"{diff.metric}: {diff.baseline} -> {diff.candidate}"
        for diff in compare_results(baseline, candidate, tolerance_pct=0.0)
        if diff.drift_pct != 0.0
    ]
    assert not drifted, (
        "simulated metrics drifted from committed baseline "
        "(regenerate with scripts/perf_gate.py --rebaseline if intentional):\n"
        + "\n".join(drifted)
    )
