"""The placer: read-aware compaction policy (§4.3).

Two pieces plug into the engine's compaction seams:

* :class:`ReadAwareRouter` — the pinned-compaction merge router. For each
  winning (newest) version in a merge it consults the tracker and mapper:
  popular keys are *retained* in the upper level or *pulled up* from the
  lower level ("up-compaction"); everything else, including tombstones
  and untracked keys, compacts down. Pinning is suspended until the
  tracker is full, as the CLOCK distribution is meaningless before then
  (§4.2, Fig. 6).
* :class:`LowestScorePicker` — the SST selection criterion: files are
  ranked by popularity score (Σ clockⁿ assigned at build time) and the
  *least popular* file is compacted first, keeping hot files in place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.mapper import ClockDistributionMapper
from repro.core.tracker import ClockTracker
from repro.errors import ConfigError
from repro.lsm.compaction import CompactionPicker, MergeRouter
from repro.lsm.record import Record, ValueKind

_DELETE = ValueKind.DELETE
from repro.lsm.sstable import SSTable
from repro.lsm.version import LevelManifest


@dataclass
class PlacerStats:
    """Routing decisions, split by reason."""

    considered: int = 0
    pinned: int = 0
    pulled_up: int = 0
    rejected_untracked: int = 0
    rejected_by_threshold: int = 0
    rejected_tombstone: int = 0
    rejected_budget_exhausted: int = 0
    rejected_pull_disabled: int = 0
    suspended_tracker_not_full: int = 0


class ReadAwareRouter(MergeRouter):
    """Pinned-compaction routing driven by tracker + mapper."""

    #: Never trivially move a file down: that would skip the pinning
    #: pass and bury hot keys (§4.3).
    supports_trivial_move = False

    #: Routing consults only the key, kind, encoded size, and source
    #: level — all available without a Record — so the encoded-domain
    #: merge may call :meth:`route_up_key` directly.
    supports_encoded_routing = True

    def __init__(
        self,
        tracker: ClockTracker,
        mapper: ClockDistributionMapper,
        *,
        pinning_threshold: float = 0.10,
        seed: int = 0,
        require_full_tracker: bool = True,
        allow_pull_up: bool = True,
    ) -> None:
        if not 0.0 <= pinning_threshold <= 1.0:
            raise ConfigError(f"pinning threshold out of range: {pinning_threshold}")
        self._tracker = tracker
        self._mapper = mapper
        self._allow_pull_up = allow_pull_up
        self.pinning_threshold = pinning_threshold
        self._rng = random.Random(seed)
        self._require_full_tracker = require_full_tracker
        self._budget_bytes = 0
        self._pull_budget_bytes = 0
        self._upper_level = 0
        self.stats = PlacerStats()

    def allows_trivial_move(self, table: SSTable) -> bool:
        """Cold files (no tracked keys -> non-positive score) may move
        down without a rewrite: there is nothing in them to pin, so the
        pinning pass would be a no-op at full rewrite cost."""
        return table.popularity_score <= 0.0

    def begin_job(
        self,
        upper_level: int,
        lower_level: int,
        upper_lo: bytes,
        upper_hi: bytes,
        upper_budget_bytes: int,
        pull_budget_bytes: int = 0,
    ) -> None:
        # The level-sizing constraint (§4.3): never retain more data in
        # the upper level than its target leaves room for, otherwise the
        # level stays over-full and compaction churns. Pulls (records
        # rising from below) get only genuine headroom.
        self._budget_bytes = upper_budget_bytes
        self._pull_budget_bytes = min(pull_budget_bytes, upper_budget_bytes)
        self._upper_level = upper_level

    def route_up(self, record: Record, source_level: int) -> bool:
        return self.route_up_key(
            record.user_key,
            0 if record.kind is _DELETE else 1,
            record.encoded_size(),
            source_level,
        )

    def route_up_key(
        self, user_key: bytes, kind_code: int, encoded_size: int, source_level: int
    ) -> bool:
        self.stats.considered += 1
        if self._upper_level == 0:
            # Pinning into L0 buys nothing: every L0 compaction takes all
            # L0 files, so a pinned record would just be rewritten on the
            # next job. Hot keys get pinned from L1 down instead.
            return False
        if kind_code == 0:
            # Tombstones are never read; pinning them would waste fast
            # storage and delay space reclamation.
            self.stats.rejected_tombstone += 1
            return False
        if self._require_full_tracker and not self._tracker.is_full:
            self.stats.suspended_tracker_not_full += 1
            return False
        clock = self._tracker.clock_value(user_key)
        if clock < 0:
            self.stats.rejected_untracked += 1
            return False
        size = encoded_size
        is_pull = source_level != self._upper_level
        if is_pull and not self._allow_pull_up:
            # Ablation knob: retention-only pinning, no up-compaction.
            self.stats.rejected_pull_disabled += 1
            return False
        if size > (self._pull_budget_bytes if is_pull else self._budget_bytes):
            self.stats.rejected_budget_exhausted += 1
            return False
        if not self._mapper.should_pin_key(user_key, clock, self.pinning_threshold):
            self.stats.rejected_by_threshold += 1
            return False
        if is_pull:
            self.stats.pulled_up += 1
            self._pull_budget_bytes -= size
        else:
            self.stats.pinned += 1
        self._budget_bytes -= size
        return True

    def clock_value_fn(self):
        """Key -> CLOCK value for output-file popularity scoring."""
        return self._tracker.clock_value


class LowestScorePicker(CompactionPicker):
    """Pick the file with the lowest popularity score (§4.3).

    Ties (common early on, when scores are all zero) break toward the
    oldest file so cold data still drains down.
    """

    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        files = manifest.files(level)
        if not files:
            return []
        victim = min(files, key=lambda table: (table.popularity_score, table.file_id))
        return [victim]
