"""PrismDB's contribution: tracker, mapper, placer, and the PrismDB store."""

from repro.core.mapper import ClockDistributionMapper
from repro.core.placer import LowestScorePicker, PlacerStats, ReadAwareRouter
from repro.core.prismdb import PrismDB, PrismOptions
from repro.core.tracker import UNTRACKED, ClockTracker, TrackerStats

__all__ = [
    "ClockDistributionMapper",
    "LowestScorePicker",
    "PlacerStats",
    "ReadAwareRouter",
    "PrismDB",
    "PrismOptions",
    "UNTRACKED",
    "ClockTracker",
    "TrackerStats",
]
