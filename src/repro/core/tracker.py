"""The tracker: lightweight CLOCK-based popularity tracking (§4.1, §5).

The tracker maps recently-read keys to a multi-bit CLOCK value. Faithful
to the paper's implementation:

* Each tracked key stores one byte: the CLOCK value in the top bits and a
  6-bit hash of the key's *version* in the bottom bits. A read whose
  version tag matches bumps the CLOCK to its maximum; a mismatched
  version is treated as a brand-new key (CLOCK = 1), so stale popularity
  does not survive updates.
* New keys are inserted with CLOCK = 1, not the maximum — the paper notes
  that starting at 3 would let one-hit wonders linger through three full
  decrement sweeps.
* Eviction is deferred off the read path: a CLOCK hand sweeps the table
  in the "background" (here: an explicitly budgeted
  :meth:`ClockTracker.run_evictions` call), decrementing values and
  evicting zeros, and reports every change to the mapper so the CLOCK
  value distribution stays current.

The hand is implemented as a lazily-compacted ring of keys, which mirrors
the paper's approximate concurrent iteration: keys may be visited
slightly out of insertion order after churn, which — as the paper argues
— does not affect behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import fnv1a_64
from repro.core.mapper import ClockDistributionMapper
from repro.errors import ConfigError

#: CLOCK value for keys the tracker does not know (§4.3).
UNTRACKED = -1

#: version -> 6-bit tag. The tag is a pure function of the version and
#: hot workloads re-read the same recent versions constantly, so the
#: hash runs once per distinct version instead of once per read. Capped
#: like the bloom hash cache; versions are dense small ints in practice.
_TAG_CACHE: dict[int, int] = {}
_TAG_CACHE_MAX = 1 << 20


@dataclass
class TrackerStats:
    """Counters describing tracker activity."""

    inserts: int = 0
    version_hits: int = 0
    version_mismatches: int = 0
    evictions: int = 0
    decrements: int = 0
    hand_steps: int = 0


class ClockTracker:
    """Multi-bit CLOCK over the most recently read keys."""

    def __init__(
        self,
        capacity: int,
        mapper: ClockDistributionMapper,
        *,
        clock_bits: int = 2,
        eviction_batch: int = 8,
    ) -> None:
        if capacity <= 0:
            raise ConfigError(f"tracker capacity must be positive: {capacity}")
        if not 1 <= clock_bits <= 8:
            raise ConfigError(f"clock_bits out of range: {clock_bits}")
        if eviction_batch < 1:
            raise ConfigError(f"eviction_batch must be >= 1: {eviction_batch}")
        self.capacity = capacity
        self.max_clock = (1 << clock_bits) - 1
        self._mapper = mapper
        self._eviction_batch = eviction_batch
        # key -> (clock_value, version_tag)
        self._entries: dict[bytes, tuple[int, int]] = {}
        # CLOCK ring with lazy deletion: evicted keys linger until the
        # hand passes them.
        self._ring: list[bytes] = []
        self._hand = 0
        self.stats = TrackerStats()
        self._obs: dict[str, object] | None = None
        self._obs_occupancy = None

    def bind_observability(self, registry) -> None:
        """Mirror tracker activity into ``registry`` (tracker.* series).

        Registers ``tracker.events{kind=...}`` counters for inserts,
        version hits/mismatches, evictions, decrements, and hand steps,
        plus a ``tracker.occupancy`` gauge. Counters start at zero at
        bind time; :class:`TrackerStats` remains the tracker-lifetime
        record.
        """
        self._obs = {
            kind: registry.counter("tracker.events", kind=kind)
            for kind in (
                "insert",
                "version_hit",
                "version_mismatch",
                "eviction",
                "decrement",
                "hand_step",
            )
        }
        self._obs_occupancy = registry.gauge("tracker.occupancy")
        self._obs_occupancy.set(len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Pinning only starts once the tracker has filled up (§4.2)."""
        return len(self._entries) >= self.capacity

    @staticmethod
    def _version_tag(version: int) -> int:
        """The bottom 6 bits of the version hash (§5), memoized."""
        tag = _TAG_CACHE.get(version)
        if tag is None:
            tag = fnv1a_64(version.to_bytes(8, "little")) & 0x3F
            if len(_TAG_CACHE) < _TAG_CACHE_MAX:
                _TAG_CACHE[version] = tag
        return tag

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def on_read(self, user_key: bytes, version: int) -> None:
        """Record a read of ``user_key`` at ``version`` (a seqno)."""
        tag = self._version_tag(version)
        entry = self._entries.get(user_key)
        if entry is None:
            self._entries[user_key] = (1, tag)
            self._ring.append(user_key)
            self._mapper.on_insert(1)
            self.stats.inserts += 1
            if self._obs is not None:
                self._obs["insert"].inc()
                self._obs_occupancy.set(len(self._entries))
            return
        clock, old_tag = entry
        if old_tag == tag:
            # Same version read again: promote to maximum popularity.
            self.stats.version_hits += 1
            if self._obs is not None:
                self._obs["version_hit"].inc()
            if clock != self.max_clock:
                self._mapper.on_change(clock, self.max_clock)
            self._entries[user_key] = (self.max_clock, tag)
        else:
            # The key was updated since we last saw it: treat as new.
            self.stats.version_mismatches += 1
            if self._obs is not None:
                self._obs["version_mismatch"].inc()
            if clock != 1:
                self._mapper.on_change(clock, 1)
            self._entries[user_key] = (1, tag)

    # ------------------------------------------------------------------
    # Background eviction (the CLOCK hand)
    # ------------------------------------------------------------------
    def run_evictions(self, max_steps: int | None = None) -> int:
        """Advance the CLOCK hand until occupancy fits; returns evictions.

        Each overflowing entry requires one or more hand steps; the
        optional ``max_steps`` bounds work per call (the "background
        thread" budget). Without it the hand runs until occupancy is
        back at capacity.
        """
        if len(self._entries) <= self.capacity:
            # Nothing overflows; the hand would not move. Skip straight
            # to the occupancy gauge the full path ends with.
            if self._obs is not None:
                self._obs_occupancy.set(len(self._entries))
            return 0
        budget = max_steps if max_steps is not None else self._eviction_batch * max(
            1, len(self._entries) - self.capacity
        ) * (self.max_clock + 2)
        evicted = 0
        while len(self._entries) > self.capacity and budget > 0:
            budget -= 1
            if not self._ring:
                break
            if self._hand >= len(self._ring):
                self._hand = 0
                self._compact_ring()
                if not self._ring:
                    break
            key = self._ring[self._hand]
            entry = self._entries.get(key)
            self.stats.hand_steps += 1
            if self._obs is not None:
                self._obs["hand_step"].inc()
            if entry is None:
                # Lazy-deleted slot; drop it in place.
                self._ring[self._hand] = self._ring[-1]
                self._ring.pop()
                continue
            clock, tag = entry
            if clock == 0:
                del self._entries[key]
                self._ring[self._hand] = self._ring[-1]
                self._ring.pop()
                self._mapper.on_evict(0)
                self.stats.evictions += 1
                evicted += 1
                if self._obs is not None:
                    self._obs["eviction"].inc()
            else:
                self._entries[key] = (clock - 1, tag)
                self._mapper.on_change(clock, clock - 1)
                self.stats.decrements += 1
                if self._obs is not None:
                    self._obs["decrement"].inc()
                self._hand += 1
        if self._obs is not None:
            self._obs_occupancy.set(len(self._entries))
        return evicted

    def _compact_ring(self) -> None:
        """Drop lazily-deleted slots so the ring does not grow unbounded."""
        if len(self._ring) > 2 * max(1, len(self._entries)):
            self._ring = [key for key in self._ring if key in self._entries]
            self._hand = 0

    # ------------------------------------------------------------------
    # Queries (the placer's view)
    # ------------------------------------------------------------------
    def clock_value(self, user_key: bytes) -> int:
        """The key's CLOCK value, or :data:`UNTRACKED` (-1) if absent."""
        entry = self._entries.get(user_key)
        return UNTRACKED if entry is None else entry[0]

    def contains(self, user_key: bytes) -> bool:
        return user_key in self._entries

    def snapshot_distribution(self) -> dict[int, int]:
        """Ground-truth CLOCK histogram (tests compare mapper vs. this)."""
        histogram: dict[int, int] = {}
        for clock, _ in self._entries.values():
            histogram[clock] = histogram.get(clock, 0) + 1
        return histogram
