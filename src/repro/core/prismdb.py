"""PrismDB: the read-aware LSM key-value store (§4-§5).

:class:`PrismDB` is the engine with the paper's three components wired
in: the *tracker* observes every read, the *mapper* maintains the CLOCK
distribution, and the *placer* (router + picker) drives pinned
compactions. Reads additionally pay the tracker-insert overhead the
paper microbenchmarks (< 2 us), which is why very skewed, fully-cached
workloads slightly favour vanilla RocksDB (Fig. 11's zipf >= 1.4 regime).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapper import ClockDistributionMapper
from repro.core.placer import LowestScorePicker, ReadAwareRouter
from repro.core.tracker import ClockTracker
from repro.errors import ConfigError
from repro.lsm.db import LsmDB, ReadResult
from repro.lsm.layout import StorageLayout
from repro.lsm.options import DBOptions


@dataclass
class PrismOptions:
    """PrismDB-specific knobs (defaults follow §6's configuration)."""

    #: Number of keys the tracker holds; the paper uses 10 % of the
    #: database key space.
    tracker_capacity: int = 10_000
    #: Fraction of tracked keys to pin during compactions.
    pinning_threshold: float = 0.10
    #: CLOCK bits per key (2 bits -> values 0..3).
    clock_bits: int = 2
    #: Whether pinning waits for the tracker to fill (§4.2).
    require_full_tracker: bool = True
    #: Hand-steps budget per read for deferred eviction; None lets the
    #: sweep run until occupancy fits.
    eviction_steps_per_read: int | None = None
    #: Enable up-compaction (keys rising from the lower level, §4.3).
    #: Disable for the retention-only ablation.
    up_compaction: bool = True
    #: Select SST files by lowest popularity score (§4.3). Disable for
    #: the selection ablation (falls back to RocksDB's largest-file rule).
    score_based_selection: bool = True

    def __post_init__(self) -> None:
        if self.tracker_capacity <= 0:
            raise ConfigError("tracker_capacity must be positive")
        if not 0.0 <= self.pinning_threshold <= 1.0:
            raise ConfigError("pinning_threshold must be in [0, 1]")

    @staticmethod
    def for_keyspace(n_keys: int, **overrides) -> "PrismOptions":
        """The paper's sizing rule: tracker = 10 % of the key space."""
        capacity = max(1, n_keys // 10)
        return PrismOptions(tracker_capacity=capacity, **overrides)


class PrismDB(LsmDB):
    """Read-aware LSM tree over heterogeneous storage."""

    def __init__(
        self,
        layout: StorageLayout,
        options: DBOptions | None = None,
        prism_options: PrismOptions | None = None,
        **kwargs,
    ) -> None:
        options = options or DBOptions()
        self.prism_options = prism_options or PrismOptions()
        self.mapper = ClockDistributionMapper(
            max_clock=(1 << self.prism_options.clock_bits) - 1
        )
        self.tracker = ClockTracker(
            self.prism_options.tracker_capacity,
            self.mapper,
            clock_bits=self.prism_options.clock_bits,
        )
        self.placer = ReadAwareRouter(
            self.tracker,
            self.mapper,
            pinning_threshold=self.prism_options.pinning_threshold,
            seed=options.seed,
            require_full_tracker=self.prism_options.require_full_tracker,
            allow_pull_up=self.prism_options.up_compaction,
        )
        kwargs.setdefault("name", "prismdb")
        if (
            self.prism_options.score_based_selection
            and options.compaction_picker == "default"
        ):
            # §4.3 lowest-score picking is PrismDB's default; an explicit
            # compaction_picker name in the options overrides it.
            kwargs.setdefault("picker", LowestScorePicker())
        super().__init__(
            layout,
            options,
            router=self.placer,
            **kwargs,
        )
        self.tracker.bind_observability(self.metrics)
        self._obs_tracked_reads = self.metrics.counter("prism.tracked_reads")

    @classmethod
    def create(
        cls,
        layout_code: str = "NNNTQ",
        options: DBOptions | None = None,
        prism_options: PrismOptions | None = None,
        **kwargs,
    ) -> "PrismDB":
        """Build a PrismDB with a layout from a code string."""
        from repro.common.clock import SimClock
        from repro.lsm.layout import build_layout

        options = options or DBOptions()
        clock = kwargs.pop("clock", None) or SimClock()
        layout = build_layout(layout_code, options, clock)
        return cls(layout, options, prism_options, clock=clock, **kwargs)

    def _fresh_instance(self) -> "PrismDB":
        """Restart: tracker/mapper/placer are volatile and start empty."""
        return type(self)(
            self.layout,
            self.options,
            self.prism_options,
            clock=self.clock,
            backend=self.backend,
            name=self.name,
        )

    def get(self, user_key: bytes, *, ctx=None) -> ReadResult:
        """Point lookup; feeds the tracker on the way out (§5, Fig. 8)."""
        result = super().get(user_key, ctx=ctx)
        # Tracker insertion sits on the read critical path; eviction is
        # deferred to the "background" sweep right after.
        latency = result.latency_usec + self.options.tracker_overhead_usec
        if ctx is not None and self.options.tracker_overhead_usec:
            ctx.add("tracker", "-", self.options.tracker_overhead_usec)
        self._obs_tracked_reads.inc()
        self.tracker.on_read(user_key, result.seqno or 0)
        self.tracker.run_evictions(self.prism_options.eviction_steps_per_read)
        # Direct construction instead of dataclasses.replace(): replace()
        # re-walks the field list on every read.
        return ReadResult(result.value, latency, result.served_by, result.seqno)

    def read_lane(self):
        """The base read lane plus the tracker tail of :meth:`get`."""
        if type(self).get is not PrismDB.get:
            return self.get
        base = self._build_read_lane()
        tracker_overhead = self.options.tracker_overhead_usec
        obs_tracked_inc = self._obs_tracked_reads.inc
        on_read = self.tracker.on_read
        run_evictions = self.tracker.run_evictions
        eviction_steps = self.prism_options.eviction_steps_per_read

        def lookup(user_key):
            result = base(user_key)
            latency = result.latency_usec + tracker_overhead
            obs_tracked_inc()
            on_read(user_key, result.seqno or 0)
            run_evictions(eviction_steps)
            return ReadResult(result.value, latency, result.served_by, result.seqno)

        return lookup
