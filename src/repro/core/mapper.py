"""The mapper: CLOCK-value distribution and the pinning threshold (§4.2).

The mapper maintains an array of counters — how many tracked keys
currently hold each CLOCK value — updated incrementally by the tracker on
every insert, promotion, decrement and eviction. From that distribution
it converts the operator's *pinning threshold* (a fraction of tracked
keys to pin, default 10 %) into a per-CLOCK-value pin probability:

* CLOCK values are consumed from the highest rank down;
* values whose cumulative share fits under the threshold pin always;
* the value straddling the threshold pins probabilistically (the paper's
  coin flip), with weight sized so the expected pinned fraction equals
  the threshold exactly;
* everything below — including untracked keys — compacts down.
"""

from __future__ import annotations

import random

from repro.common.rng import fnv1a_64
from repro.errors import ConfigError


class ClockDistributionMapper:
    """Tracks the CLOCK histogram and answers pin/no-pin queries."""

    def __init__(self, max_clock: int = 3) -> None:
        if max_clock < 1:
            raise ConfigError(f"max_clock must be >= 1: {max_clock}")
        self.max_clock = max_clock
        self._counts = [0] * (max_clock + 1)

    # ------------------------------------------------------------------
    # Distribution maintenance (driven by the tracker)
    # ------------------------------------------------------------------
    def _check(self, clock: int) -> None:
        if not 0 <= clock <= self.max_clock:
            raise ValueError(f"clock value out of range: {clock}")

    def on_insert(self, clock: int) -> None:
        self._check(clock)
        self._counts[clock] += 1

    def on_evict(self, clock: int) -> None:
        self._check(clock)
        if self._counts[clock] == 0:
            raise ValueError(f"evicting from empty bucket {clock}")
        self._counts[clock] -= 1

    def on_change(self, old_clock: int, new_clock: int) -> None:
        self.on_evict(old_clock)
        self.on_insert(new_clock)

    @property
    def total_tracked(self) -> int:
        return sum(self._counts)

    def counts(self) -> list[int]:
        """Histogram indexed by CLOCK value (a copy)."""
        return list(self._counts)

    def fractions(self) -> list[float]:
        """Normalized histogram; all zeros when nothing is tracked."""
        total = self.total_tracked
        if total == 0:
            return [0.0] * (self.max_clock + 1)
        return [count / total for count in self._counts]

    # ------------------------------------------------------------------
    # Pinning threshold algorithm (§4.2)
    # ------------------------------------------------------------------
    def pin_probability(self, clock: int, threshold: float) -> float:
        """Probability that a key with ``clock`` should be pinned.

        ``threshold`` is the desired pinned fraction of *tracked* keys.
        Untracked keys (clock < 0) never pin.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold out of range: {threshold}")
        if clock < 0:
            return 0.0
        self._check(clock)
        total = self.total_tracked
        if total == 0 or threshold == 0.0:
            return 0.0
        cumulative_above = 0.0
        for value in range(self.max_clock, -1, -1):
            fraction = self._counts[value] / total
            if value == clock:
                if cumulative_above >= threshold:
                    return 0.0
                if fraction == 0.0:
                    return 0.0
                if cumulative_above + fraction <= threshold:
                    return 1.0
                return (threshold - cumulative_above) / fraction
            cumulative_above += fraction
        raise AssertionError("unreachable")  # pragma: no cover

    def should_pin(self, clock: int, threshold: float, rng: random.Random) -> bool:
        """The coin flip: pin a key given its CLOCK value."""
        probability = self.pin_probability(clock, threshold)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return rng.random() < probability

    def should_pin_key(self, user_key: bytes, clock: int, threshold: float) -> bool:
        """Deterministic variant of the coin flip, sampled by key hash.

        The paper samples the threshold-straddling CLOCK class randomly;
        an independent coin per *encounter* would make the pinned set
        churn (a key pinned in one compaction gets dropped in the next,
        bouncing between tiers). Hashing the key against the probability
        keeps the expected pinned fraction identical while making the
        sample *consistent*: the same keys stay pinned until the CLOCK
        distribution itself shifts.
        """
        probability = self.pin_probability(clock, threshold)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return (fnv1a_64(user_key) & 0xFFFFFFFF) / 2**32 < probability
