"""Deterministic random-number helpers.

Every stochastic component (workload generators, the mapper's
probabilistic pinning coin flip) takes an explicit seed or
:class:`random.Random` instance so runs are reproducible. This module
centralizes seed derivation so that two components seeded from the same
root seed do not accidentally share a stream.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a stable 63-bit child seed from a root seed and labels.

    The derivation hashes ``root_seed`` together with the label path, so
    ``derive_seed(s, "ycsb", "keys")`` and ``derive_seed(s, "mapper")``
    produce independent streams that are stable across runs and platforms.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode("ascii"))
    for label in labels:
        h.update(b"/")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & ((1 << 63) - 1)


def make_rng(root_seed: int, *labels: str) -> random.Random:
    """Create a :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(root_seed, *labels))


#: Memo for :func:`fnv1a_64`. The hash is byte-serial Python — the
#: single hottest function in an end-to-end profile — and its inputs
#: repeat constantly: zipfian draws hammer the hot keys and every
#: compaction re-blooms the same user keys at the next level. Bounded
#: insert-only (no eviction bookkeeping); once full, new keys just pay
#: the loop. Memoization of a pure function cannot affect results.
_FNV_CACHE: dict[bytes, int] = {}
_FNV_CACHE_MAX = 1 << 18


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash, used for key scrambling and bloom filters.

    Pure-Python but cheap; chosen because it is deterministic across
    processes (unlike :func:`hash` with string randomization).
    """
    acc = _FNV_CACHE.get(data)
    if acc is None:
        acc = 0xCBF29CE484222325
        for byte in data:
            acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        if len(_FNV_CACHE) < _FNV_CACHE_MAX:
            _FNV_CACHE[data] = acc
    return acc
