"""Metric collection: latency percentiles, counters, throughput.

The harness records one latency sample per operation, split by operation
kind (read / update / insert / scan). Percentiles use the nearest-rank
method on the sorted sample vector, matching what YCSB reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def nearest_rank(ordered: list[float], pct: float) -> float:
    """Deterministic nearest-rank percentile of a sorted population.

    Uses the textbook rank ``ceil(pct/100 * n)`` (1-based, clamped to
    [1, n]). ``round()`` is *not* used: banker's rounding made small
    populations inconsistent (p25 of 10 samples landed on rank 2 instead
    of 3 because ``round(2.5) == 2``).
    """
    n = len(ordered)
    rank = min(n, max(1, math.ceil(pct / 100.0 * n)))
    return ordered[rank - 1]


@dataclass
class LatencySummary:
    """Summary statistics of one latency population (microseconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0)


class LatencyRecorder:
    """Accumulates latency samples and computes percentile summaries.

    The hot path (:meth:`record`) is a bare list append — no sorting, no
    invalidation flag, no per-record work at all. Sorting happens lazily
    at summary time and the sorted vector is reused until the population
    grows: samples are append-only, so ``len(sorted) != len(samples)``
    is a complete staleness check. Repeated ``percentile()`` /
    ``summary()`` calls on an unchanged recorder (report tables ask for
    several percentiles of the same population) sort exactly once.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._ordered: list[float] | None = None

    def record(self, latency_usec: float) -> None:
        """Add one sample. Negative latencies indicate a simulator bug."""
        if latency_usec < 0:
            raise ValueError(f"negative latency recorded: {latency_usec}")
        self._samples.append(latency_usec)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one.

        Used to combine per-phase populations (e.g. warmup + measured, or
        per-client recorders) into one summary without re-recording.
        """
        if other is self:
            raise ValueError("cannot merge a recorder into itself")
        self._samples.extend(other._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        """The raw sample list (not copied; treat as read-only)."""
        return self._samples

    def _sorted_samples(self) -> list[float]:
        ordered = self._ordered
        if ordered is None or len(ordered) != len(self._samples):
            ordered = self._ordered = sorted(self._samples)
        return ordered

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        return nearest_rank(self._sorted_samples(), pct)

    def summary(self) -> LatencySummary:
        """Compute count/mean/p50/p95/p99/max from the lazily sorted vector."""
        if not self._samples:
            return LatencySummary.empty()
        ordered = self._sorted_samples()
        n = len(ordered)
        return LatencySummary(
            count=n,
            mean=sum(ordered) / n,
            p50=nearest_rank(ordered, 50.0),
            p95=nearest_rank(ordered, 95.0),
            p99=nearest_rank(ordered, 99.0),
            maximum=ordered[-1],
        )


@dataclass
class CounterSet:
    """A bag of named monotonically increasing counters."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative: {amount}")
        self.counts[name] = self.counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)


def throughput_kops(op_count: int, elapsed_usec: float) -> float:
    """Operations per second, in thousands, given simulated elapsed time."""
    if elapsed_usec <= 0:
        return 0.0
    return op_count / (elapsed_usec / 1_000_000.0) / 1_000.0
