"""Simulated clock.

All components that need to know "what time it is" (device queues, the
Mutant optimizer epoch, the tracker's convergence window, the workload
runner) share one :class:`SimClock`. Time is a float in microseconds and
only moves forward.

Observers: a component that must *react* to the passage of simulated
time (the timeline sampler, a rate limiter) subscribes a callback with
:meth:`SimClock.subscribe`; it is invoked with the new time whenever the
clock actually moves. With no observers the hot path pays a single
truthiness check.
"""

from __future__ import annotations

from typing import Callable

#: An observer receives the new simulated time (usec) after each move.
ClockObserver = Callable[[float], None]


class SimClock:
    """A monotonically non-decreasing simulated clock (microseconds)."""

    __slots__ = ("_now", "_observers")

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)
        self._observers: list[ClockObserver] = []

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def subscribe(self, observer: ClockObserver) -> ClockObserver:
        """Register ``observer(new_time_usec)`` to fire when time moves.

        Returns the observer so call sites can keep the handle for
        :meth:`unsubscribe`. Observers fire in subscription order and
        must not advance the clock themselves (guarded by reentrancy of
        the ``_now`` update: the new time is committed before they run,
        but re-advancing from inside an observer raises recursion depth
        quickly and is a bug).
        """
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: ClockObserver) -> None:
        """Remove a previously subscribed observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def _notify(self) -> None:
        for observer in self._observers:
            observer(self._now)

    def advance(self, delta_usec: float) -> float:
        """Move the clock forward by ``delta_usec`` and return the new time.

        Negative deltas are rejected: simulated time never rewinds.
        """
        if delta_usec < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta_usec}")
        if delta_usec > 0:
            self._now += delta_usec
            if self._observers:
                self._notify()
        return self._now

    def advance_to(self, timestamp_usec: float) -> float:
        """Move the clock forward to ``timestamp_usec`` if it is in the future.

        A timestamp in the past is a no-op (never an error) so that
        independent event sources can race benignly.
        """
        if timestamp_usec > self._now:
            self._now = timestamp_usec
            if self._observers:
                self._notify()
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.1f}us)"
