"""Simulated clock.

All components that need to know "what time it is" (device queues, the
Mutant optimizer epoch, the tracker's convergence window, the workload
runner) share one :class:`SimClock`. Time is a float in microseconds and
only moves forward.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing simulated clock (microseconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def advance(self, delta_usec: float) -> float:
        """Move the clock forward by ``delta_usec`` and return the new time.

        Negative deltas are rejected: simulated time never rewinds.
        """
        if delta_usec < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta_usec}")
        self._now += delta_usec
        return self._now

    def advance_to(self, timestamp_usec: float) -> float:
        """Move the clock forward to ``timestamp_usec`` if it is in the future.

        A timestamp in the past is a no-op (never an error) so that
        independent event sources can race benignly.
        """
        if timestamp_usec > self._now:
            self._now = timestamp_usec
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.1f}us)"
