"""Byte and time unit helpers.

The simulator measures time in **microseconds** (float) and data in
**bytes** (int). These helpers keep magic numbers out of the rest of the
code base and make configuration literals readable, e.g. ``4 * KIB`` or
``MILLISECONDS(2)``.
"""

from __future__ import annotations

#: Binary byte units.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: The block size used by data blocks and the device models (a flash page).
BLOCK_SIZE = 4 * KIB


def microseconds(value: float) -> float:
    """Identity helper — the native simulator time unit."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to simulator microseconds."""
    return float(value) * 1_000.0


def seconds(value: float) -> float:
    """Convert seconds to simulator microseconds."""
    return float(value) * 1_000_000.0


def usec_to_seconds(usec: float) -> float:
    """Convert simulator microseconds back to seconds."""
    return usec / 1_000_000.0


def bytes_to_gib(n_bytes: float) -> float:
    """Convert a byte count to (fractional) GiB."""
    return n_bytes / GIB


def format_bytes(n_bytes: float) -> str:
    """Render a byte count with a human-readable binary suffix.

    >>> format_bytes(2048)
    '2.0 KiB'
    """
    value = float(n_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_usec(usec: float) -> str:
    """Render a microsecond duration with an adaptive unit.

    >>> format_usec(2500)
    '2.50 ms'
    """
    if usec < 1_000.0:
        return f"{usec:.1f} us"
    if usec < 1_000_000.0:
        return f"{usec / 1_000.0:.2f} ms"
    return f"{usec / 1_000_000.0:.2f} s"
