"""Shared infrastructure: simulated clock, units, RNG, metrics."""

from repro.common.clock import SimClock
from repro.common.rng import derive_seed, fnv1a_64, make_rng
from repro.common.stats import (
    CounterSet,
    LatencyRecorder,
    LatencySummary,
    nearest_rank,
    throughput_kops,
)
from repro.common.units import (
    BLOCK_SIZE,
    GIB,
    KIB,
    MIB,
    TIB,
    bytes_to_gib,
    format_bytes,
    format_usec,
    microseconds,
    milliseconds,
    seconds,
    usec_to_seconds,
)

__all__ = [
    "SimClock",
    "derive_seed",
    "fnv1a_64",
    "make_rng",
    "CounterSet",
    "LatencyRecorder",
    "LatencySummary",
    "nearest_rank",
    "throughput_kops",
    "BLOCK_SIZE",
    "GIB",
    "KIB",
    "MIB",
    "TIB",
    "bytes_to_gib",
    "format_bytes",
    "format_usec",
    "microseconds",
    "milliseconds",
    "seconds",
    "usec_to_seconds",
]
