"""``repro-bench fleet``: run a sharded fleet and report the merged view.

Usage::

    python -m repro.bench fleet                          # 4-shard smoke
    python -m repro.bench fleet --shards 16 --ops 10000000 --jobs 4
    python -m repro.bench fleet --jobs 4 --out fleet.json
    python -m repro.bench fleet --system rocksdb --group-commit 1

The merged artifact saved by ``--out`` is an ordinary schema-2
``RunResult`` (plus a ``fleet`` provenance block), so every existing
tool works on it unchanged::

    python -m repro.bench timeline --artifact fleet.json
    python -m repro.bench compare fleet_a.json fleet_b.json
    python -m repro.bench explain fleet.json

The artifact's bytes are a pure function of the fleet configuration —
``--jobs`` changes wall-clock time only (pinned by
``tests/fleet/test_fleet_determinism.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.harness import SYSTEM_NAMES
from repro.bench.reporting import fmt, format_experiment
from repro.errors import ConfigError
from repro.fleet.runner import FleetConfig, run_fleet
from repro.fleet.workload import TenantSpec


def add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--system", default="prismdb", choices=SYSTEM_NAMES,
                        help="system under test on every shard (default: prismdb)")
    parser.add_argument("--layout", default="NNNTQ", metavar="CODE",
                        help="storage layout code per shard (default: NNNTQ)")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of shards behind the router (default: 4)")
    parser.add_argument("--tenants", type=int, default=2,
                        help="number of tenants striped across the fleet "
                             "(default: 2)")
    parser.add_argument("--keys-per-tenant", type=int, default=20_000,
                        metavar="N",
                        help="key-space size of each tenant (default: 20000)")
    parser.add_argument("--theta", type=float, default=0.99,
                        help="per-tenant Zipfian theta (default: 0.99)")
    parser.add_argument("--read-pct", type=int, default=95, metavar="PCT",
                        help="read percentage of each tenant's mix "
                             "(default: 95; the rest are updates)")
    parser.add_argument("--scan-pct", type=int, default=0, metavar="PCT",
                        help="scan percentage, carved out of the read share "
                             "(default: 0)")
    parser.add_argument("--ops", type=int, default=100_000,
                        help="fleet-total measured operations, split across "
                             "shards by key ownership (default: 100000)")
    parser.add_argument("--warmup", type=int, default=0, metavar="OPS",
                        help="fleet-total unmeasured warm-up operations "
                             "(default: 0)")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop clients per shard (default: 8)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fleet root seed; shard seeds derive from it "
                             "(default: 0)")
    parser.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per shard on the hash ring "
                             "(default: 64)")
    parser.add_argument("--group-commit", type=int, default=8, metavar="N",
                        help="router-side WAL group commit: shards sync every "
                             "N-th append (default: 8; 1 = per-op sync)")
    parser.add_argument("--oversubscription", type=float, default=2.0,
                        metavar="X",
                        help="shards per pooled flash device (default: 2.0)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes; results are bit-identical "
                             "for any value (default: 1)")
    parser.add_argument("--sample-interval-ms", type=float, default=None,
                        metavar="MS",
                        help="timeline sampling interval in simulated ms; the "
                             "device-pool overlay is computed from the merged "
                             "timeline (default: auto — scales with --ops so "
                             "smoke-scale runs still produce timeline rows; "
                             "see auto_sample_interval_ms)")
    parser.add_argument("--attribution", action="store_true",
                        help="record per-request latency attribution on every "
                             "shard (merged into the fleet artifact; makes "
                             "`repro.bench explain` work on it)")
    parser.add_argument("--attr-sample-every", type=int, default=1, metavar="N",
                        help="attribute every N-th request (default: 1)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="save the merged fleet RunResult JSON here")


def auto_sample_interval_ms(total_operations: int) -> float:
    """Default timeline sampling interval for a fleet of ``total_operations``.

    A fleet's simulated duration grows with its op count, so a fixed
    10 ms default left smoke-scale runs (a few simulated ms per shard)
    with *empty* merged timelines unless the caller remembered to pass
    a sub-ms interval by hand. Scale the interval with the op count —
    one simulated ms per 10k fleet ops — so every run keeps a usable
    row count out of the box, clamped to [0.5, 50] ms so tiny runs
    still sample sub-ms and huge runs do not drown in rows.
    """
    return max(0.5, min(50.0, total_operations / 10_000))


def build_fleet_config(args: argparse.Namespace) -> FleetConfig:
    """Translate CLI arguments into a picklable :class:`FleetConfig`."""
    if not 0 <= args.read_pct <= 100:
        raise ConfigError(f"read-pct out of range: {args.read_pct}")
    if not 0 <= args.scan_pct <= args.read_pct:
        raise ConfigError(
            f"scan-pct must be within the read share: {args.scan_pct}"
        )
    update = (100 - args.read_pct) / 100.0
    scan = args.scan_pct / 100.0
    read = 1.0 - update - scan
    tenants = tuple(
        TenantSpec(
            name=f"t{index:02d}",
            key_count=args.keys_per_tenant,
            zipf_theta=args.theta,
            read_proportion=read,
            update_proportion=update,
            scan_proportion=scan,
        )
        for index in range(args.tenants)
    )
    return FleetConfig(
        system=args.system,
        layout_code=args.layout,
        shards=args.shards,
        tenants=tenants,
        total_operations=args.ops,
        warmup_operations=args.warmup,
        clients=args.clients,
        seed=args.seed,
        vnodes=args.vnodes,
        group_commit=args.group_commit,
        oversubscription=args.oversubscription,
        sample_interval_ms=(
            args.sample_interval_ms
            if args.sample_interval_ms is not None
            else auto_sample_interval_ms(args.ops)
        ),
        attribution_sample_every=(
            args.attr_sample_every if args.attribution else None
        ),
    )


def run_fleet_command(args: argparse.Namespace) -> int:
    config = build_fleet_config(args)
    print(
        f"fleet: {config.shards} shards x {config.system}/{config.layout_code}, "
        f"{len(config.tenants)} tenants, {config.total_operations} ops, "
        f"jobs={args.jobs}",
        file=sys.stderr,
    )
    started = time.perf_counter()
    result = run_fleet(config, jobs=args.jobs)
    wall_clock_sec = time.perf_counter() - started

    headers = ["shard", "ops", "kops", "read p99 (us)", "update p99 (us)", "WA"]
    rows = [
        [
            str(shard["shard"]),
            str(shard["operations"]),
            fmt(shard["throughput_kops"]),
            fmt(shard["read_p99_usec"]),
            fmt(shard["update_p99_usec"]),
            fmt(shard["write_amplification"]),
        ]
        for shard in result.fleet["per_shard"]
    ]
    rows.append(
        [
            "fleet",
            str(result.operations),
            fmt(result.throughput_kops),
            fmt(result.read_latency.p99),
            fmt(result.update_latency.p99),
            fmt(result.write_amplification),
        ]
    )
    title = (
        f"Fleet: {config.shards} shards, group-commit {config.group_commit}, "
        f"oversubscription {config.oversubscription:g}"
    )
    print(format_experiment(title, headers, rows))

    pool = result.fleet["pool"]
    penalty = pool["penalty"]
    print(
        "device pool: "
        + ", ".join(
            f"{tech} peak backlog {fmt(stats['peak_backlog_bytes'])} B"
            for tech, stats in sorted(pool["tiers"].items())
        )
    )
    print(
        f"pool read penalty (us): mean {fmt(penalty['mean'])}, "
        f"p99 {fmt(penalty['p99'])}, max {fmt(penalty['max'])}"
    )
    print(f"wall clock: {wall_clock_sec:.2f} s", file=sys.stderr)

    if args.out:
        result.save(args.out)
        print(f"saved fleet artifact to {args.out}", file=sys.stderr)
    return 0
