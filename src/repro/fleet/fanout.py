"""Process fan-out shared by the fleet runner and ``sweep --jobs``.

One function, one contract: ``fan_out(worker, payloads, jobs)`` returns
``[worker(p) for p in payloads]`` — always in payload order, regardless
of how many processes executed them or in what order they finished.
``jobs == 1`` runs inline (no pool, no pickling, easiest to debug);
``jobs > 1`` uses a ``spawn`` pool, the start method that works the same
on every platform and never inherits dirty parent state (fork would
silently share the parent's fnv/zeta memo caches — harmless for
results, but a fork/spawn behaviour split is exactly the kind of
asymmetry the determinism tests exist to rule out).

Requirements on callers (enforced by pickle, documented here):

* ``worker`` must be a module-level function — spawn imports it by
  qualified name in each child.
* payloads and results must be picklable; the fleet passes plain
  dataclasses in and JSON-safe dicts out.
* ``worker`` must be a pure function of its payload. Results come back
  via ``Pool.map``, which preserves order, so the merged output is a
  function of the payload list alone — that is the whole worker-count
  invariance argument, and the tests pin it.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Sequence, TypeVar

from repro.errors import ConfigError

_P = TypeVar("_P")
_R = TypeVar("_R")


def fan_out(
    worker: Callable[[_P], _R], payloads: Sequence[_P], jobs: int = 1
) -> list[_R]:
    """Run ``worker`` over ``payloads`` with up to ``jobs`` processes."""
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1: {jobs}")
    payloads = list(payloads)
    if jobs == 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(jobs, len(payloads))) as pool:
        # chunksize=1: payloads are coarse (a whole shard / sweep cell),
        # so letting the pool batch them would only serialize stragglers.
        return pool.map(worker, payloads, chunksize=1)
