"""Process fan-out shared by the fleet runner and ``sweep --jobs``.

One contract, two shapes: ``stream_fan_out(worker, payloads, jobs)``
yields ``worker(p) for p in payloads`` — always in payload order,
regardless of how many processes executed them or in what order they
finished — and ``fan_out`` collects the same stream into a list.
``jobs == 1`` runs inline (no pool, no pickling, easiest to debug);
``jobs > 1`` uses a ``spawn`` pool, the start method that works the same
on every platform and never inherits dirty parent state (fork would
silently share the parent's fnv/zeta memo caches — harmless for
results, but a fork/spawn behaviour split is exactly the kind of
asymmetry the determinism tests exist to rule out).

The streaming shape exists for the fleet router: ``Pool.imap`` hands
each result over the moment its payload-order turn comes up, so the
router decodes and folds shard artifacts while later shards are still
simulating, instead of buffering every result behind a ``Pool.map``
barrier. Order is still payload order — ``imap`` (unlike
``imap_unordered``) never reorders — so consumers see exactly the
sequence ``fan_out`` would have returned.

Requirements on callers (enforced by pickle, documented here):

* ``worker`` must be a module-level function — spawn imports it by
  qualified name in each child.
* payloads and results must be picklable; the fleet passes plain
  dataclasses in and encoded artifact bytes out.
* ``worker`` must be a pure function of its payload. Results come back
  in payload order, so the merged output is a function of the payload
  list alone — that is the whole worker-count invariance argument, and
  the tests pin it.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterator, Sequence, TypeVar

from repro.errors import ConfigError

_P = TypeVar("_P")
_R = TypeVar("_R")


def stream_fan_out(
    worker: Callable[[_P], _R], payloads: Sequence[_P], jobs: int = 1
) -> Iterator[_R]:
    """Yield ``worker(p)`` per payload, in payload order, as they finish."""
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1: {jobs}")
    payloads = list(payloads)
    if jobs == 1 or len(payloads) <= 1:
        for payload in payloads:
            yield worker(payload)
        return
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(jobs, len(payloads))) as pool:
        # chunksize=1: payloads are coarse (a whole shard / sweep cell),
        # so letting the pool batch them would only serialize stragglers.
        yield from pool.imap(worker, payloads, chunksize=1)


def fan_out(
    worker: Callable[[_P], _R], payloads: Sequence[_P], jobs: int = 1
) -> list[_R]:
    """Run ``worker`` over ``payloads`` with up to ``jobs`` processes."""
    return list(stream_fan_out(worker, payloads, jobs))
