"""Multi-tenant sharded workload: each shard drives its routed slice.

A fleet workload is a set of :class:`TenantSpec` key spaces striped
across shards by the :class:`~repro.fleet.router.ConsistentHashRouter`.
Each shard process builds a :class:`ShardWorkload` that generates
exactly the requests the router would deliver to that shard:

* **Ownership** — for every tenant, the shard enumerates the tenant's
  key space and keeps the keys the router assigns to it. Ownership
  depends only on (tenants, shards, vnodes), never on worker count or
  process identity, because the router hashes with fnv1a-64.
* **Skew** — each tenant draws from its own Zipfian (or uniform /
  latest) generator over its *owned* keys. The scrambled-Zipfian rank
  hash spreads a tenant's hot set uniformly over its key space, so the
  restriction to an owned subset preserves the tenant's skew profile on
  every shard.
* **Traffic share** — tenants are picked per-op with probability
  proportional to ``weight * owned_fraction``: a router in front of the
  fleet delivers each tenant's traffic to shards in proportion to the
  keys they own.

The workload is insert-free (reads, updates, scans): an insert would
grow a tenant's key space, which requires a fleet-global cursor and
would couple shards. Every RNG derives from the shard's seed via
:func:`~repro.common.rng.make_rng`, so a shard's stream is a pure
function of (fleet config, shard id) — the foundation of the fleet's
worker-count invariance.

:class:`ShardWorkload` implements the batched workload protocol
(``load_batches`` / ``warmup_batches`` / ``run_batches`` plus
``total_data_bytes`` and a ``config`` view), so the existing
:class:`~repro.bench.harness.WorkloadRunner` drives it unchanged.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.errors import ConfigError
from repro.fleet.router import ConsistentHashRouter
from repro.workloads.interning import KeyInterner
from repro.workloads.ycsb import (
    DEFAULT_BATCH_OPS,
    OP_INSERT,
    OP_READ,
    OP_SCAN,
    OP_UPDATE,
    RequestBatch,
)
from repro.workloads.zipfian import make_generator


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's key space and traffic profile."""

    name: str
    key_count: int
    #: Relative share of fleet traffic (normalized across tenants).
    weight: float = 1.0
    distribution: str = "zipfian"
    zipf_theta: float = 0.99
    read_proportion: float = 0.95
    update_proportion: float = 0.05
    scan_proportion: float = 0.0
    value_bytes: int = 100
    max_scan_length: int = 100

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in " /{}"):
            raise ConfigError(f"invalid tenant name {self.name!r}")
        if self.key_count <= 0:
            raise ConfigError(f"{self.name}: key_count must be positive")
        if self.weight <= 0:
            raise ConfigError(f"{self.name}: weight must be positive")
        total = self.read_proportion + self.update_proportion + self.scan_proportion
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"{self.name}: read+update+scan proportions must sum to 1.0, got {total}"
            )
        if self.value_bytes <= 0:
            raise ConfigError(f"{self.name}: value_bytes must be positive")
        if self.max_scan_length <= 0:
            raise ConfigError(f"{self.name}: max_scan_length must be positive")

    @property
    def key_format(self) -> str:
        """Interner format; the tenant name prefix keeps key spaces disjoint."""
        return f"{self.name}-%010d"


@dataclass(frozen=True)
class _ShardConfigView:
    """The slice of :class:`~repro.workloads.ycsb.YCSBConfig` the harness reads."""

    record_count: int
    operation_count: int
    warmup_operations: int
    seed: int


class _TenantState:
    """Per-tenant ownership and generators on one shard."""

    __slots__ = ("spec", "interner", "owned", "key_len")

    def __init__(self, spec: TenantSpec, router: ConsistentHashRouter, shard_id: int):
        self.spec = spec
        self.interner = KeyInterner(spec.key_format)
        key = self.interner.key
        shard_for_key = router.shard_for_key
        self.owned = [
            index
            for index in range(spec.key_count)
            if shard_for_key(key(index)) == shard_id
        ]
        self.key_len = len(key(0))


class ShardWorkload:
    """The request stream one shard receives from the fleet router."""

    def __init__(
        self,
        tenants: tuple[TenantSpec, ...],
        router: ConsistentHashRouter,
        shard_id: int,
        *,
        operations: int,
        warmup_operations: int = 0,
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise ConfigError("fleet workload needs at least one tenant")
        if len({t.name for t in tenants}) != len(tenants):
            raise ConfigError("tenant names must be unique")
        if not 0 <= shard_id < router.num_shards:
            raise ConfigError(f"shard_id out of range: {shard_id}")
        if operations < 0 or warmup_operations < 0:
            raise ConfigError("operation counts must be non-negative")
        self.tenants = tenants
        self.router = router
        self.shard_id = shard_id
        self.seed = seed
        self._states = [_TenantState(spec, router, shard_id) for spec in tenants]
        record_count = sum(len(state.owned) for state in self._states)
        if record_count == 0:
            raise ConfigError(
                f"shard {shard_id} owns no keys; raise vnodes or key counts"
            )
        self.config = _ShardConfigView(
            record_count=record_count,
            operation_count=operations,
            warmup_operations=warmup_operations,
            seed=seed,
        )
        # Tenant pick weights: traffic share * fraction of the tenant's
        # keys this shard owns (what a front-end router delivers here).
        weights = [
            state.spec.weight * len(state.owned) / state.spec.key_count
            for state in self._states
        ]
        total = sum(weights)
        self._tenant_cuts: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._tenant_cuts.append(acc)
        self._tenant_cuts[-1] = 1.0  # guard float drift at the top end

    def owned_counts(self) -> dict[str, int]:
        """Keys owned on this shard, per tenant (fleet provenance block)."""
        return {state.spec.name: len(state.owned) for state in self._states}

    def total_data_bytes(self) -> int:
        """Approximate serialized size of this shard's loaded data."""
        return sum(
            len(state.owned) * (state.key_len + state.spec.value_bytes + 15)
            for state in self._states
        )

    # ------------------------------------------------------------------
    # Phases (batched workload protocol)
    # ------------------------------------------------------------------
    def load_batches(self, batch_ops: int = DEFAULT_BATCH_OPS):
        """Insert every owned key once, tenant by tenant, in key order."""
        for state in self._states:
            rng = make_rng(self.seed, "load", state.spec.name)
            randbytes = rng.randbytes
            key = state.interner.key
            value_bytes = state.spec.value_bytes
            owned = state.owned
            for start in range(0, len(owned), batch_ops):
                chunk = owned[start : start + batch_ops]
                n = len(chunk)
                yield RequestBatch(
                    [OP_INSERT] * n,
                    [key(index) for index in chunk],
                    [randbytes(value_bytes) for _ in range(n)],
                    [0] * n,
                )

    def warmup_batches(self, batch_ops: int = DEFAULT_BATCH_OPS):
        """Unmeasured steady-state traffic (same mix, own RNG streams)."""
        return self._op_batches("warmup", self.config.warmup_operations, batch_ops)

    def run_batches(self, batch_ops: int = DEFAULT_BATCH_OPS):
        """The measured phase: the shard's routed multi-tenant stream."""
        return self._op_batches("ops", self.config.operation_count, batch_ops)

    def _op_batches(self, phase: str, count: int, batch_ops: int):
        op_rng = make_rng(self.seed, phase, "ops")
        value_rng = make_rng(self.seed, phase, "values")
        generators = [
            make_generator(
                state.spec.distribution,
                len(state.owned),
                state.spec.zipf_theta,
                make_rng(self.seed, phase, "keys", state.spec.name),
            )
            if state.owned
            else None
            for state in self._states
        ]
        cuts = self._tenant_cuts
        states = self._states
        dice_fn = op_rng.random
        randrange = op_rng.randrange
        randbytes = value_rng.randbytes
        empty = b""
        remaining = count
        while remaining > 0:
            n = batch_ops if batch_ops < remaining else remaining
            remaining -= n
            kinds: list[int] = []
            keys: list[bytes] = []
            values: list[bytes] = []
            lengths: list[int] = []
            append_kind = kinds.append
            append_key = keys.append
            append_value = values.append
            append_length = lengths.append
            for _ in range(n):
                tenant = bisect_right(cuts, dice_fn())
                if tenant == len(cuts):  # dice == 1.0 edge
                    tenant -= 1
                state = states[tenant]
                spec = state.spec
                generator = generators[tenant]
                key = state.interner.key(state.owned[generator.next_index()])
                dice = dice_fn()
                if dice < spec.read_proportion:
                    append_kind(OP_READ)
                    append_key(key)
                    append_value(empty)
                    append_length(0)
                elif dice < spec.read_proportion + spec.update_proportion:
                    append_kind(OP_UPDATE)
                    append_key(key)
                    append_value(randbytes(spec.value_bytes))
                    append_length(0)
                else:
                    append_kind(OP_SCAN)
                    append_key(key)
                    append_value(empty)
                    append_length(1 + randrange(spec.max_scan_length))
            yield RequestBatch(kinds, keys, values, lengths)
