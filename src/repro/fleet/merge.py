"""Merge per-shard run artifacts into one fleet-level ``RunResult``.

The merge is the linchpin of the fleet's determinism contract: it must
be a *pure, order-insensitive* function of the shard results, because
worker processes may compute them in any interleaving. Every rule below
either merges exactly (sums of counters, histogram-bucket addition,
global top-K) or is a documented deterministic approximation:

* **operations / bytes / counts** — exact sums.
* **elapsed** — max of shard clocks (shards run concurrently);
  **throughput** — sum of per-shard throughputs (each shard is an
  independent server contributing its own ops/sec).
* **latency summaries** — rebuilt from the merged ``op.latency_usec``
  histograms: count/mean/max are exact, percentiles are bucket-resolution
  (<= 2x relative error with the default powers-of-two bounds). This is
  the same representation ``repro-bench report`` already reads.
* **cache hit rates** — recomputed from merged hit/miss counters (exact).
* **write amplification** — recomputed from merged byte totals (exact).
* **wear** — per-tier mean across shards (each shard wrote its own
  device image); **lifetime** — min (the fleet replaces a tier when its
  worst device dies); **cost** — sum.
* **metrics / timeline / attribution** — the dedicated merge functions
  in ``repro.obs`` (see their docstrings for exact-vs-approximate).

``tests/fleet/test_merge_properties.py`` pins the exactness claims
against a single recorder fed the combined stream.
"""

from __future__ import annotations

from repro.bench.harness import RunResult
from repro.common.stats import LatencySummary
from repro.errors import ConfigError
from repro.obs.attribution import merge_attributions
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import merge_timelines


def _summary_from_row(row: dict | None) -> LatencySummary:
    if row is None or row["count"] == 0:
        return LatencySummary.empty()
    return LatencySummary(
        count=row["count"],
        mean=row["mean"],
        p50=row["p50"],
        p95=row["p95"],
        p99=row["p99"],
        maximum=row["max"],
    )


def _find_row(metrics: dict, name: str, **labels) -> dict | None:
    metric = metrics.get(name)
    if metric is None:
        return None
    for row in metric["series"]:
        if row["labels"] == labels:
            return row
    return None


def _sum_rows(metrics: dict, name: str, label: str | None = None) -> float:
    """Total of a counter metric, optionally only rows matching a label value."""
    metric = metrics.get(name)
    if metric is None:
        return 0.0
    total = 0.0
    for row in metric["series"]:
        if label is None or row["labels"].get("type") == label:
            total += row["value"]
    return total


def _sum_dicts(dicts: list[dict]) -> dict:
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + value
    return out


def merge_run_results(
    results: list[RunResult], *, label: str = "fleet"
) -> RunResult:
    """Fold per-shard :class:`RunResult` artifacts into one fleet result."""
    if not results:
        raise ConfigError("cannot merge an empty result list")
    first = results[0]
    for result in results:
        if result.system != first.system or result.layout_code != first.layout_code:
            raise ConfigError(
                "fleet shards must share system and layout: "
                f"{result.system}/{result.layout_code} vs "
                f"{first.system}/{first.layout_code}"
            )

    metrics = MetricsRegistry.merge_snapshots([r.metrics for r in results])

    # Latency populations from the merged registry histograms.
    read = _summary_from_row(_find_row(metrics, "op.latency_usec", op="read"))
    update = _summary_from_row(_find_row(metrics, "op.latency_usec", op="update"))
    scan = _summary_from_row(_find_row(metrics, "op.latency_usec", op="scan"))
    by_source: dict[str, LatencySummary] = {}
    source_metric = metrics.get("read.latency_usec")
    if source_metric is not None:
        for row in source_metric["series"]:
            by_source[row["labels"]["source"]] = _summary_from_row(row)

    cache_hits = _sum_rows(metrics, "cache.hits")
    cache_misses = _sum_rows(metrics, "cache.misses")
    data_hits = _sum_rows(metrics, "cache.hits", label="data")
    data_misses = _sum_rows(metrics, "cache.misses", label="data")

    flush_bytes = sum(r.flush_bytes for r in results)
    wal_bytes = sum(r.wal_bytes for r in results)
    user_write_bytes = sum(r.user_write_bytes for r in results)
    compaction_write_bytes = sum(r.compaction_write_bytes for r in results)

    wear_sums = _sum_dicts([r.device_wear_cycles for r in results])
    lifetimes: dict[str, float] = {}
    for result in results:
        for tier, years in result.device_lifetime_years.items():
            current = lifetimes.get(tier)
            lifetimes[tier] = years if current is None else min(current, years)

    return RunResult(
        label=label,
        system=first.system,
        layout_code=first.layout_code,
        operations=sum(r.operations for r in results),
        elapsed_usec=max(r.elapsed_usec for r in results),
        throughput_kops=sum(r.throughput_kops for r in results),
        read_latency=read,
        update_latency=update,
        scan_latency=scan,
        reads_by_source=_sum_dicts([r.reads_by_source for r in results]),
        read_latency_by_source=by_source,
        cache_hit_rate=(
            cache_hits / (cache_hits + cache_misses)
            if cache_hits + cache_misses
            else 0.0
        ),
        cache_hit_rate_data=(
            data_hits / (data_hits + data_misses)
            if data_hits + data_misses
            else 0.0
        ),
        compactions=sum(r.compactions for r in results),
        compaction_read_bytes=sum(r.compaction_read_bytes for r in results),
        compaction_write_bytes=compaction_write_bytes,
        flush_bytes=flush_bytes,
        wal_bytes=wal_bytes,
        user_write_bytes=user_write_bytes,
        write_amplification=(
            (flush_bytes + compaction_write_bytes + wal_bytes) / user_write_bytes
            if user_write_bytes
            else 0.0
        ),
        per_level_write_bytes=_sum_dicts(
            [r.per_level_write_bytes for r in results]
        ),
        pinned_records=sum(r.pinned_records for r in results),
        pulled_up_records=sum(r.pulled_up_records for r in results),
        migrations=sum(r.migrations for r in results),
        migration_bytes=sum(r.migration_bytes for r in results),
        device_read_bytes=_sum_dicts([r.device_read_bytes for r in results]),
        device_write_bytes=_sum_dicts([r.device_write_bytes for r in results]),
        device_wear_cycles={
            tier: total / len(results) for tier, total in wear_sums.items()
        },
        device_lifetime_years=lifetimes,
        storage_cost_dollars=sum(r.storage_cost_dollars for r in results),
        metrics=metrics,
        timeline=merge_timelines([r.timeline for r in results]),
        attribution=merge_attributions([r.attribution for r in results]),
    )
