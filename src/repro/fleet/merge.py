"""Merge per-shard run artifacts into one fleet-level ``RunResult``.

The merge is the linchpin of the fleet's determinism contract: it must
be a *pure, order-insensitive* function of the shard results, because
worker processes may compute them in any interleaving. Every rule below
either merges exactly (sums of counters, histogram-bucket addition,
global top-K) or is a documented deterministic approximation:

* **operations / bytes / counts** — exact sums.
* **elapsed** — max of shard clocks (shards run concurrently);
  **throughput** — sum of per-shard throughputs (each shard is an
  independent server contributing its own ops/sec).
* **latency summaries** — rebuilt from the merged ``op.latency_usec``
  histograms: count/mean/max are exact, percentiles are bucket-resolution
  (<= 2x relative error with the default powers-of-two bounds). This is
  the same representation ``repro-bench report`` already reads.
* **cache hit rates** — recomputed from merged hit/miss counters (exact).
* **write amplification** — recomputed from merged byte totals (exact).
* **wear** — per-tier mean across shards (each shard wrote its own
  device image); **lifetime** — min (the fleet replaces a tier when its
  worst device dies); **cost** — sum.
* **metrics / timeline / attribution** — the dedicated merge functions
  in ``repro.obs`` (see their docstrings for exact-vs-approximate).

``tests/fleet/test_merge_properties.py`` pins the exactness claims
against a single recorder fed the combined stream.

The merge is exposed two ways: :class:`ShardAccumulator` folds results
one at a time — the fleet router feeds it each shard artifact as the
worker pool streams them back, so decoded shards are consumed on
arrival instead of piling up behind a barrier — and
:func:`merge_run_results` wraps the accumulator for callers that
already hold the full list. Both reduce in shard order, so they produce
bit-identical artifacts.
"""

from __future__ import annotations

from repro.bench.harness import RunResult
from repro.common.stats import LatencySummary
from repro.errors import ConfigError
from repro.obs.attribution import merge_attributions
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import merge_timelines


def _summary_from_row(row: dict | None) -> LatencySummary:
    if row is None or row["count"] == 0:
        return LatencySummary.empty()
    return LatencySummary(
        count=row["count"],
        mean=row["mean"],
        p50=row["p50"],
        p95=row["p95"],
        p99=row["p99"],
        maximum=row["max"],
    )


def _find_row(metrics: dict, name: str, **labels) -> dict | None:
    metric = metrics.get(name)
    if metric is None:
        return None
    for row in metric["series"]:
        if row["labels"] == labels:
            return row
    return None


def _sum_rows(metrics: dict, name: str, label: str | None = None) -> float:
    """Total of a counter metric, optionally only rows matching a label value."""
    metric = metrics.get(name)
    if metric is None:
        return 0.0
    total = 0.0
    for row in metric["series"]:
        if label is None or row["labels"].get("type") == label:
            total += row["value"]
    return total


class ShardAccumulator:
    """Fold shard :class:`RunResult` artifacts into one fleet result.

    ``add`` consumes one shard at a time; the fleet router calls it as
    each worker's artifact streams back from the pool, so the merge
    overlaps the slowest shard's simulation instead of waiting behind a
    barrier. All scalar/dict accumulators are left-to-right reductions
    in ``add`` order — exactly the ``sum()``/``max()``/first-seen-key
    folds the list-based merge performed — so feeding shards in shard
    order produces a bit-identical artifact. Only the three blocks whose
    merge functions need the full collection (metrics registry,
    timeline, attribution) are deferred to :meth:`finish`.
    """

    def __init__(self) -> None:
        self._first: RunResult | None = None
        self._count = 0
        self._operations = 0
        self._elapsed_usec = 0.0
        self._throughput_kops = 0.0
        self._compactions = 0
        self._compaction_read_bytes = 0
        self._compaction_write_bytes = 0
        self._flush_bytes = 0
        self._wal_bytes = 0
        self._user_write_bytes = 0
        self._pinned_records = 0
        self._pulled_up_records = 0
        self._migrations = 0
        self._migration_bytes = 0
        self._storage_cost_dollars = 0.0
        self._reads_by_source: dict = {}
        self._per_level_write_bytes: dict = {}
        self._device_read_bytes: dict = {}
        self._device_write_bytes: dict = {}
        self._wear_sums: dict = {}
        self._lifetimes: dict[str, float] = {}
        self._metrics: list[dict] = []
        self._timelines: list[dict] = []
        self._attributions: list[dict] = []

    def __len__(self) -> int:
        return self._count

    @staticmethod
    def _fold_dict(into: dict, more: dict) -> None:
        for key, value in more.items():
            into[key] = into.get(key, 0) + value

    def add(self, result: RunResult) -> None:
        """Fold one shard's result in (shards must share system/layout)."""
        first = self._first
        if first is None:
            self._first = first = result
        elif (
            result.system != first.system
            or result.layout_code != first.layout_code
        ):
            raise ConfigError(
                "fleet shards must share system and layout: "
                f"{result.system}/{result.layout_code} vs "
                f"{first.system}/{first.layout_code}"
            )
        self._count += 1
        self._operations += result.operations
        if result.elapsed_usec > self._elapsed_usec:
            self._elapsed_usec = result.elapsed_usec
        self._throughput_kops += result.throughput_kops
        self._compactions += result.compactions
        self._compaction_read_bytes += result.compaction_read_bytes
        self._compaction_write_bytes += result.compaction_write_bytes
        self._flush_bytes += result.flush_bytes
        self._wal_bytes += result.wal_bytes
        self._user_write_bytes += result.user_write_bytes
        self._pinned_records += result.pinned_records
        self._pulled_up_records += result.pulled_up_records
        self._migrations += result.migrations
        self._migration_bytes += result.migration_bytes
        self._storage_cost_dollars += result.storage_cost_dollars
        self._fold_dict(self._reads_by_source, result.reads_by_source)
        self._fold_dict(self._per_level_write_bytes, result.per_level_write_bytes)
        self._fold_dict(self._device_read_bytes, result.device_read_bytes)
        self._fold_dict(self._device_write_bytes, result.device_write_bytes)
        self._fold_dict(self._wear_sums, result.device_wear_cycles)
        for tier, years in result.device_lifetime_years.items():
            current = self._lifetimes.get(tier)
            self._lifetimes[tier] = (
                years if current is None else min(current, years)
            )
        self._metrics.append(result.metrics)
        self._timelines.append(result.timeline)
        self._attributions.append(result.attribution)

    def finish(self, *, label: str = "fleet") -> RunResult:
        """Merge the deferred blocks and build the fleet-level result."""
        first = self._first
        if first is None:
            raise ConfigError("cannot merge an empty result list")

        metrics = MetricsRegistry.merge_snapshots(self._metrics)

        # Latency populations from the merged registry histograms.
        read = _summary_from_row(_find_row(metrics, "op.latency_usec", op="read"))
        update = _summary_from_row(
            _find_row(metrics, "op.latency_usec", op="update")
        )
        scan = _summary_from_row(_find_row(metrics, "op.latency_usec", op="scan"))
        by_source: dict[str, LatencySummary] = {}
        source_metric = metrics.get("read.latency_usec")
        if source_metric is not None:
            for row in source_metric["series"]:
                by_source[row["labels"]["source"]] = _summary_from_row(row)

        cache_hits = _sum_rows(metrics, "cache.hits")
        cache_misses = _sum_rows(metrics, "cache.misses")
        data_hits = _sum_rows(metrics, "cache.hits", label="data")
        data_misses = _sum_rows(metrics, "cache.misses", label="data")

        flush_bytes = self._flush_bytes
        wal_bytes = self._wal_bytes
        user_write_bytes = self._user_write_bytes
        compaction_write_bytes = self._compaction_write_bytes

        return RunResult(
            label=label,
            system=first.system,
            layout_code=first.layout_code,
            operations=self._operations,
            elapsed_usec=self._elapsed_usec,
            throughput_kops=self._throughput_kops,
            read_latency=read,
            update_latency=update,
            scan_latency=scan,
            reads_by_source=self._reads_by_source,
            read_latency_by_source=by_source,
            cache_hit_rate=(
                cache_hits / (cache_hits + cache_misses)
                if cache_hits + cache_misses
                else 0.0
            ),
            cache_hit_rate_data=(
                data_hits / (data_hits + data_misses)
                if data_hits + data_misses
                else 0.0
            ),
            compactions=self._compactions,
            compaction_read_bytes=self._compaction_read_bytes,
            compaction_write_bytes=compaction_write_bytes,
            flush_bytes=flush_bytes,
            wal_bytes=wal_bytes,
            user_write_bytes=user_write_bytes,
            write_amplification=(
                (flush_bytes + compaction_write_bytes + wal_bytes)
                / user_write_bytes
                if user_write_bytes
                else 0.0
            ),
            per_level_write_bytes=self._per_level_write_bytes,
            pinned_records=self._pinned_records,
            pulled_up_records=self._pulled_up_records,
            migrations=self._migrations,
            migration_bytes=self._migration_bytes,
            device_read_bytes=self._device_read_bytes,
            device_write_bytes=self._device_write_bytes,
            device_wear_cycles={
                tier: total / self._count
                for tier, total in self._wear_sums.items()
            },
            device_lifetime_years=self._lifetimes,
            storage_cost_dollars=self._storage_cost_dollars,
            metrics=metrics,
            timeline=merge_timelines(self._timelines),
            attribution=merge_attributions(self._attributions),
        )


def merge_run_results(
    results: list[RunResult], *, label: str = "fleet"
) -> RunResult:
    """Fold per-shard :class:`RunResult` artifacts into one fleet result."""
    accumulator = ShardAccumulator()
    for result in results:
        accumulator.add(result)
    return accumulator.finish(label=label)
