"""The shared device pool: tiers as a fleet resource, not per-shard silos.

In the paper's single-node setup each PrismDB instance owns its devices.
A fleet deployment provisions flash as a *pool*: ``shards /
oversubscription`` devices' worth of each technology serve all shards,
so one shard's compaction storm steals drain bandwidth from its
neighbours and inflates their read tails.

The pool is an **analytic overlay**, deliberately not a live shared
object. Shards simulate fully independently (that independence is what
makes fleet results bit-identical for any ``--jobs`` value); the pool
then recomputes contention from the *merged* fleet timeline, which is
itself a pure function of the per-shard results:

1. Per technology (NVM / TLC / QLC), sum every shard's per-interval
   device write bytes — the fleet's write pressure on the pool.
2. Evolve a pool backlog: inflow minus drain at the pool's sustained
   write bandwidth (``per-device sustained bw * background_share *
   shards / oversubscription``), clamped at zero — the same backlog
   model :class:`~repro.storage.device.Device` applies per instance.
3. Convert each interval's backlog to a queueing penalty exactly as
   ``Device.queue_penalty_usec`` does: ``min(max_penalty, drain_time *
   interference_factor)``.
4. Weight each interval's penalty by the fleet's foreground-visible
   read bytes in that interval and report the weighted penalty
   distribution; the merge adds it comonotonically (percentile to
   percentile) onto the merged read/scan latency summaries.

The overlay is additive on top of the per-shard queueing penalties the
shards already simulated against their own devices — an upper-bound
style composition, documented as such in docs/FLEET.md. With
``oversubscription == 1.0`` the pool has one device per shard and the
overlay reflects only cross-shard phase alignment (everyone compacting
at once), which a dedicated-device fleet also experiences at the rack's
shared power/firmware limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import LatencySummary
from repro.errors import ConfigError
from repro.storage.device import SPECS_BY_NAME


@dataclass(frozen=True)
class PoolParams:
    """Pool sizing and interference knobs (defaults mirror ``Device``)."""

    #: Shards per pooled device: 2.0 means two shards share one device's
    #: worth of each flash technology. 1.0 = dedicated devices.
    oversubscription: float = 2.0
    background_share: float = 0.6
    interference_factor: float = 0.35
    max_penalty_usec: float = 5_000.0

    def __post_init__(self) -> None:
        if self.oversubscription < 1.0:
            raise ConfigError(
                f"oversubscription must be >= 1.0: {self.oversubscription}"
            )
        if not 0.0 < self.background_share <= 1.0:
            raise ConfigError(
                f"background_share must be in (0, 1]: {self.background_share}"
            )
        if self.interference_factor < 0.0:
            raise ConfigError("interference_factor must be non-negative")
        if self.max_penalty_usec < 0.0:
            raise ConfigError("max_penalty_usec must be non-negative")


def _weighted_percentile(
    pairs: list[tuple[float, float]], pct: float
) -> float:
    """Nearest-rank percentile of a (value, weight) population."""
    if not pairs:
        return 0.0
    ordered = sorted(pairs)
    total = sum(weight for _, weight in ordered)
    if total <= 0:
        return 0.0
    target = pct / 100.0 * total
    acc = 0.0
    for value, weight in ordered:
        acc += weight
        if acc >= target:
            return value
    return ordered[-1][0]


class DevicePool:
    """Fleet-level tier contention computed from the merged timeline."""

    def __init__(self, num_shards: int, params: PoolParams | None = None) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1: {num_shards}")
        self.num_shards = num_shards
        self.params = params or PoolParams()

    # ------------------------------------------------------------------
    # Overlay computation
    # ------------------------------------------------------------------
    def contention(self, merged_timeline: dict) -> dict:
        """Per-technology pool contention from a merged fleet timeline.

        Returns a JSON-safe dict: per-tech totals plus the fleet-wide
        read-weighted penalty distribution (``penalty`` block) the merge
        adds onto read/scan summaries. Empty timeline -> zero overlay.
        """
        params = self.params
        empty = {
            "schema": 1,
            "shards": self.num_shards,
            "params": {
                "oversubscription": params.oversubscription,
                "background_share": params.background_share,
                "interference_factor": params.interference_factor,
                "max_penalty_usec": params.max_penalty_usec,
            },
            "tiers": {},
            "penalty": {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0},
        }
        series = merged_timeline.get("series") if merged_timeline else None
        if not series:
            return empty
        interval_sec = merged_timeline["interval_ms"] / 1_000.0
        rows = len(merged_timeline["t_ms"])

        # Group the per-tier byte series by technology ("nvm-L0-L2" -> NVM).
        write_by_tech: dict[str, list[float]] = {}
        read_by_tech: dict[str, list[float]] = {}
        for name, values in series.items():
            for prefix, sink in (
                ("device.write_bytes{tier=", write_by_tech),
                ("device.read_bytes{tier=", read_by_tech),
            ):
                if name.startswith(prefix):
                    tier = name[len(prefix) : -1]
                    tech = tier.split("-")[0].upper()
                    if tech == "DRAM":
                        continue  # DRAM is per-shard memory, never pooled
                    acc = sink.setdefault(tech, [0.0] * rows)
                    for k, v in enumerate(values):
                        acc[k] += v

        tiers: dict[str, dict] = {}
        penalty_pop: list[tuple[float, float]] = []
        weighted_sum = 0.0
        weight_total = 0.0
        for tech in sorted(write_by_tech):
            spec = SPECS_BY_NAME.get(tech)
            if spec is None:
                continue
            devices = self.num_shards / params.oversubscription
            pool_bw = spec.sustained_write_bandwidth_bps * devices
            drain_per_interval = pool_bw * params.background_share * interval_sec
            writes = write_by_tech[tech]
            reads = read_by_tech.get(tech, [0.0] * rows)
            backlog = 0.0
            peak_backlog = 0.0
            tech_weighted = 0.0
            tech_weight = 0.0
            tech_max = 0.0
            for k in range(rows):
                backlog = max(0.0, backlog + writes[k] - drain_per_interval)
                peak_backlog = max(peak_backlog, backlog)
                if backlog > 0.0:
                    drain_usec = backlog / pool_bw * 1_000_000.0
                    penalty = min(
                        params.max_penalty_usec,
                        drain_usec * params.interference_factor,
                    )
                else:
                    penalty = 0.0
                weight = reads[k] if k < len(reads) else 0.0
                penalty_pop.append((penalty, weight))
                tech_weighted += penalty * weight
                tech_weight += weight
                weighted_sum += penalty * weight
                weight_total += weight
                if weight > 0.0:
                    tech_max = max(tech_max, penalty)
            tiers[tech] = {
                "pool_devices": devices,
                "pool_sustained_bw_bps": pool_bw,
                "write_bytes": sum(writes),
                "read_bytes": sum(reads),
                "peak_backlog_bytes": peak_backlog,
                "mean_penalty_usec": (
                    tech_weighted / tech_weight if tech_weight else 0.0
                ),
                "max_penalty_usec": tech_max,
            }
        out = dict(empty)
        out["tiers"] = tiers
        out["penalty"] = {
            "mean": weighted_sum / weight_total if weight_total else 0.0,
            "p50": _weighted_percentile(penalty_pop, 50.0),
            "p95": _weighted_percentile(penalty_pop, 95.0),
            "p99": _weighted_percentile(penalty_pop, 99.0),
            "max": max(
                (value for value, weight in penalty_pop if weight > 0.0),
                default=0.0,
            ),
        }
        return out

    @staticmethod
    def apply_penalty(summary: LatencySummary, penalty: dict) -> LatencySummary:
        """Add the pool penalty distribution onto a latency summary.

        Comonotonic addition — percentile onto percentile — the standard
        upper-bound composition for two positively associated latencies
        (slow intervals are slow for both reasons at once). Empty
        summaries stay empty.
        """
        if summary.count == 0:
            return summary
        return LatencySummary(
            count=summary.count,
            mean=summary.mean + penalty["mean"],
            p50=summary.p50 + penalty["p50"],
            p95=summary.p95 + penalty["p95"],
            p99=summary.p99 + penalty["p99"],
            maximum=summary.maximum + penalty["max"],
        )
