"""Consistent-hash request router over a fleet of shards.

The router is the fleet's single source of truth for key placement: the
workload generator uses it to decide which keys a shard owns, and the
fleet CLI uses it to report balance. It must therefore be *process
stable* — every worker process, every run, every platform must map a key
to the same shard. Python's ``hash()`` is salted per process, so both
the ring points and the key hashes use :func:`~repro.common.rng.fnv1a_64`.

Standard construction (Karger-style ring with virtual nodes): each shard
contributes ``vnodes`` points at ``fnv1a_64(b"shard<i>#<v>")``; a key
lands on the first ring point clockwise from ``fnv1a_64(key)``. More
virtual nodes flatten the ownership imbalance at O(shards * vnodes)
setup cost; the default 64 keeps the max/mean key-count ratio within a
few percent for the fleet sizes the harness runs (tested in
``tests/fleet/test_router.py``).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.common.rng import fnv1a_64
from repro.errors import ConfigError

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(value: int) -> int:
    """Murmur3's 64-bit finalizer: full-avalanche mix of an fnv hash.

    Raw fnv1a-64 over short structured inputs (``shard3#17``,
    ``t00-0000000042``) clusters badly in the high bits — measured arc
    imbalance of 9x on a 4-shard/64-vnode ring. One multiply-xorshift
    finalizer restores uniformity while staying pure-Python,
    deterministic and process-stable. Router-local on purpose:
    :func:`fnv1a_64` itself also feeds bloom filters and the zipfian
    scrambler, whose committed baselines must not move.
    """
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def ring_hash(data: bytes) -> int:
    """The router's position hash: finalized fnv1a-64 (process-stable)."""
    return _mix64(fnv1a_64(data))


class ConsistentHashRouter:
    """Maps keys to shard ids via an fnv1a-64 hash ring."""

    def __init__(self, num_shards: int, *, vnodes: int = 64) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1: {num_shards}")
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1: {vnodes}")
        self.num_shards = num_shards
        self.vnodes = vnodes
        ring: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(vnodes):
                point = ring_hash(f"shard{shard}#{vnode}".encode("ascii"))
                ring.append((point, shard))
        # Ties (two vnode labels hashing to one 64-bit point) resolve to
        # the lower shard id; sorting the pairs makes that deterministic.
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    def shard_for_key(self, key: bytes) -> int:
        """The shard owning ``key``: first ring point clockwise of its hash."""
        position = bisect_right(self._points, ring_hash(key))
        if position == len(self._points):
            position = 0  # wrap past the top of the ring
        return self._owners[position]

    def shard_counts(self, keys) -> list[int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = [0] * self.num_shards
        for key in keys:
            counts[self.shard_for_key(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConsistentHashRouter(shards={self.num_shards}, vnodes={self.vnodes})"
