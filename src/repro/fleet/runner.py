"""Fleet runner: fan shards out over processes, merge deterministically.

``run_fleet(config, jobs=N)`` is the fleet's one entry point. Its
determinism contract, which ``tests/fleet/test_fleet_determinism.py``
pins to committed digests:

* Every shard's simulation is a pure function of ``(config, shard_id)``
  — its seed is ``derive_seed(config.seed, "fleet", "shard<i>")``, its
  workload is the router-partitioned slice, and nothing it computes
  depends on which process ran it or when.
* Workers return their artifact as one binary blob
  (:func:`repro.bench.codec.encode_result` — a length-prefixed encoding
  of the same tree ``to_json()`` builds, with an exact-round-trip
  guarantee), and :func:`stream_fan_out` yields the blobs in shard
  order regardless of completion order. ``jobs == 1`` rides the same
  encode/decode path, so a single-process run cannot diverge from a
  pooled one.
* The router decodes each blob as it streams back and folds it into a
  :class:`~repro.fleet.merge.ShardAccumulator`; the accumulator and the
  device-pool overlay (:mod:`repro.fleet.pool`) are pure functions of
  the ordered result sequence.

Therefore the merged fleet artifact is **bit-identical for any
``--jobs`` value** — ``--jobs`` buys wall-clock time and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.codec import decode_result, encode_result
from repro.bench.harness import RunResult, SystemConfig, WorkloadRunner, build_system
from repro.common.rng import derive_seed
from repro.errors import ConfigError
from repro.fleet.fanout import stream_fan_out
from repro.fleet.merge import ShardAccumulator
from repro.fleet.pool import DevicePool, PoolParams
from repro.fleet.router import ConsistentHashRouter
from repro.fleet.workload import ShardWorkload, TenantSpec
from repro.workloads.interning import KeyInterner


def default_tenants(
    count: int = 2, *, keys_per_tenant: int = 20_000, zipf_theta: float = 0.99
) -> tuple[TenantSpec, ...]:
    """A homogeneous tenant set for smokes and CLI defaults."""
    if count < 1:
        raise ConfigError(f"tenant count must be >= 1: {count}")
    return tuple(
        TenantSpec(
            name=f"t{index:02d}",
            key_count=keys_per_tenant,
            zipf_theta=zipf_theta,
        )
        for index in range(count)
    )


@dataclass(frozen=True)
class FleetConfig:
    """Everything a worker process needs to run one shard (picklable)."""

    system: str = "prismdb"
    layout_code: str = "NNNTQ"
    shards: int = 4
    tenants: tuple[TenantSpec, ...] = field(default_factory=default_tenants)
    #: Fleet-total measured operations, split across shards in
    #: proportion to the keys each owns (largest-remainder rounding).
    total_operations: int = 100_000
    warmup_operations: int = 0
    clients: int = 8
    seed: int = 0
    vnodes: int = 64
    #: Router-side group commit: the router batches WAL appends before
    #: acknowledging, so each shard syncs every N-th append.
    group_commit: int = 8
    oversubscription: float = 2.0
    cache_fraction: float = 0.10
    pinning_threshold: float = 0.10
    sample_interval_ms: float = 10.0
    attribution_sample_every: int | None = None
    slow_op_k: int = 8

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1: {self.shards}")
        if self.total_operations < 0 or self.warmup_operations < 0:
            raise ConfigError("operation counts must be non-negative")
        if self.group_commit < 1:
            raise ConfigError(f"group_commit must be >= 1: {self.group_commit}")

    def shard_seed(self, shard_id: int) -> int:
        return derive_seed(self.seed, "fleet", f"shard{shard_id}")


def _split_by_owned(config: FleetConfig, total: int) -> list[int]:
    """Split an op count across shards proportional to owned keys.

    Largest-remainder apportionment (ties to the lower shard id): exact
    total, deterministic, and independent of execution order.
    """
    router = ConsistentHashRouter(config.shards, vnodes=config.vnodes)
    owned = [0] * config.shards
    for tenant in config.tenants:
        interner = KeyInterner(tenant.key_format)
        for index in range(tenant.key_count):
            owned[router.shard_for_key(interner.key(index))] += 1
    total_keys = sum(owned)
    if total_keys == 0:
        raise ConfigError("fleet owns no keys")
    quotas = [total * count / total_keys for count in owned]
    floors = [int(q) for q in quotas]
    shortfall = total - sum(floors)
    order = sorted(
        range(config.shards), key=lambda s: (-(quotas[s] - floors[s]), s)
    )
    for shard in order[:shortfall]:
        floors[shard] += 1
    return floors


def run_shard(config: FleetConfig, shard_id: int) -> RunResult:
    """Simulate one shard of the fleet (pure in ``(config, shard_id)``)."""
    router = ConsistentHashRouter(config.shards, vnodes=config.vnodes)
    run_split = _split_by_owned(config, config.total_operations)
    warmup_split = _split_by_owned(config, config.warmup_operations)
    workload = ShardWorkload(
        config.tenants,
        router,
        shard_id,
        operations=run_split[shard_id],
        warmup_operations=warmup_split[shard_id],
        seed=config.shard_seed(shard_id),
    )
    system_config = SystemConfig(
        system=config.system,
        layout_code=config.layout_code,
        cache_fraction=config.cache_fraction,
        pinning_threshold=config.pinning_threshold,
        wal_sync_every=config.group_commit,
        clients=config.clients,
        seed=config.shard_seed(shard_id),
    )
    db = build_system(system_config, workload)
    runner = WorkloadRunner(
        db,
        clients=config.clients,
        sample_interval_ms=config.sample_interval_ms,
        attribution_sample_every=config.attribution_sample_every,
        slow_op_k=config.slow_op_k,
    )
    runner.load(workload)
    if workload.config.warmup_operations > 0:
        runner.warmup(workload)
    elapsed = runner.run(workload)
    result = runner.result(
        f"fleet/{config.system}/shard{shard_id}", system_config, elapsed
    )
    result.fleet = {
        "shard": shard_id,
        "seed": config.shard_seed(shard_id),
        "owned_keys": workload.owned_counts(),
        "operations": run_split[shard_id],
    }
    return result


def _shard_worker(payload: tuple[FleetConfig, int]) -> bytes:
    """Spawn-safe pool entrypoint: run one shard, return its encoded artifact.

    The result crosses the process boundary as one binary blob instead
    of a deep JSON dict — pickle moves a single ``bytes`` object rather
    than re-walking thousands of timeline/metric nodes per shard.
    """
    config, shard_id = payload
    return encode_result(run_shard(config, shard_id))


def run_fleet(config: FleetConfig, *, jobs: int = 1) -> RunResult:
    """Run every shard (``jobs`` processes) and merge into one result.

    Wall-clock timing is deliberately the *caller's* job (the CLI and
    the perf gate wrap this call): the returned result — including its
    JSON artifact bytes — must be a pure function of ``config``, never
    of ``jobs`` or elapsed real time.
    """
    payloads = [(config, shard_id) for shard_id in range(config.shards)]
    accumulator = ShardAccumulator()
    keys_per_shard: list[int] = []
    operations_per_shard: list[int] = []
    per_shard: list[dict] = []
    # Decode and fold each artifact the moment its (payload-order) turn
    # streams back, so merge work overlaps the still-running shards and
    # full shard results never accumulate behind a barrier.
    for blob in stream_fan_out(_shard_worker, payloads, jobs):
        result = decode_result(blob)
        accumulator.add(result)
        keys_per_shard.append(sum(result.fleet["owned_keys"].values()))
        operations_per_shard.append(result.fleet["operations"])
        per_shard.append(
            {
                "shard": result.fleet["shard"],
                "operations": result.operations,
                "throughput_kops": result.throughput_kops,
                "read_p99_usec": result.read_latency.p99,
                "update_p99_usec": result.update_latency.p99,
                "write_amplification": result.write_amplification,
            }
        )
    merged = accumulator.finish(
        label=f"fleet/{config.system}/{config.shards}shards"
    )

    pool = DevicePool(
        config.shards, PoolParams(oversubscription=config.oversubscription)
    )
    contention = pool.contention(merged.timeline)
    penalty = contention["penalty"]
    merged.read_latency = DevicePool.apply_penalty(merged.read_latency, penalty)
    merged.scan_latency = DevicePool.apply_penalty(merged.scan_latency, penalty)
    merged.read_latency_by_source = {
        source: DevicePool.apply_penalty(summary, penalty)
        for source, summary in merged.read_latency_by_source.items()
    }

    merged.fleet = {
        "schema": 1,
        "shards": config.shards,
        "vnodes": config.vnodes,
        "group_commit": config.group_commit,
        "tenants": [
            {
                "name": tenant.name,
                "key_count": tenant.key_count,
                "weight": tenant.weight,
                "distribution": tenant.distribution,
                "zipf_theta": tenant.zipf_theta,
            }
            for tenant in config.tenants
        ],
        "keys_per_shard": keys_per_shard,
        "operations_per_shard": operations_per_shard,
        "pool": contention,
        "per_shard": per_shard,
    }
    return merged
