"""Sharded fleet harness: router, shared device pool, process fan-out.

The paper's evaluation is one PrismDB instance on one machine; the fleet
harness scales that out the way a key-value *service* deploys it — many
single-node shards behind a consistent-hash router, multi-tenant key
spaces striped across them, and flash tiers provisioned as a shared pool
rather than per-shard silos:

* :class:`ConsistentHashRouter` — an fnv1a-64 hash ring with virtual
  nodes; process-stable (no ``hash()``), so key ownership is identical
  in every worker process.
* :class:`TenantSpec` / :class:`ShardWorkload` — per-tenant Zipfian key
  spaces partitioned by the router; each shard drives exactly the
  requests the router would send it.
* :class:`DevicePool` — tiers as a fleet resource: per-interval write
  pressure summed across shards feeds a pool-level backlog whose
  queueing penalty inflates every shard's read tail (one shard's
  compaction storm is its neighbours' problem).
* :func:`run_fleet` / :class:`FleetConfig` — fans shards out across a
  ``multiprocessing`` pool and merges the per-shard
  :class:`~repro.bench.harness.RunResult` artifacts into one fleet
  result whose bytes are identical for any ``--jobs`` value.

See ``docs/FLEET.md`` for the contracts and the determinism rules.
"""

from repro.fleet.fanout import fan_out
from repro.fleet.merge import merge_run_results
from repro.fleet.pool import DevicePool, PoolParams
from repro.fleet.router import ConsistentHashRouter
from repro.fleet.runner import FleetConfig, run_fleet, run_shard
from repro.fleet.workload import ShardWorkload, TenantSpec

__all__ = [
    "ConsistentHashRouter",
    "DevicePool",
    "FleetConfig",
    "PoolParams",
    "ShardWorkload",
    "TenantSpec",
    "fan_out",
    "merge_run_results",
    "run_fleet",
    "run_shard",
]
