"""Endurance provisioning math (the paper's 3-year lifetime rule).

The paper sizes each storage technology so it survives a minimum device
lifetime (3 years) at the workload's write rate: if a level's write
traffic would wear out the nominally-sized device sooner, spare capacity
is added until total program/erase wear over the lifetime fits within the
device's cycle budget — the same over-provisioning principle enterprise
SSDs use. This module implements that rule; the Fig. 4 / Table 3 cost
model builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GIB
from repro.storage.device import DeviceSpec

#: The paper's minimum device lifetime: three years, in seconds.
DEFAULT_LIFETIME_SECONDS = 3 * 365 * 24 * 3600


@dataclass(frozen=True)
class ProvisioningResult:
    """Outcome of provisioning one level/tier on one device technology."""

    spec_name: str
    data_bytes: int
    provisioned_bytes: int
    cost_dollars: float
    lifetime_limited: bool

    @property
    def spare_fraction(self) -> float:
        """Spare capacity as a fraction of the data size (0 = none)."""
        if self.data_bytes == 0:
            return 0.0
        return self.provisioned_bytes / self.data_bytes - 1.0


def provision_capacity(
    spec: DeviceSpec,
    data_bytes: int,
    write_bytes_per_second: float,
    *,
    lifetime_seconds: float = DEFAULT_LIFETIME_SECONDS,
) -> ProvisioningResult:
    """Capacity and cost to hold ``data_bytes`` for ``lifetime_seconds``.

    The device must absorb ``write_bytes_per_second * lifetime_seconds``
    total program traffic; with ``pe_cycles`` full-capacity cycles
    available, the minimum endurance-safe capacity is that total divided
    by the cycle budget. The provisioned capacity is the larger of the
    data size and the endurance minimum.
    """
    if data_bytes < 0:
        raise ValueError(f"negative data size: {data_bytes}")
    if write_bytes_per_second < 0:
        raise ValueError(f"negative write rate: {write_bytes_per_second}")
    lifetime_writes = write_bytes_per_second * lifetime_seconds
    endurance_min = lifetime_writes / spec.pe_cycles
    provisioned = max(float(data_bytes), endurance_min)
    cost = provisioned / GIB * spec.cost_per_gb
    return ProvisioningResult(
        spec_name=spec.name,
        data_bytes=data_bytes,
        provisioned_bytes=int(round(provisioned)),
        cost_dollars=cost,
        lifetime_limited=endurance_min > data_bytes,
    )


def device_lifetime_seconds(
    spec: DeviceSpec,
    capacity_bytes: int,
    write_bytes_per_second: float,
) -> float:
    """How long a device of ``capacity_bytes`` lasts at a given write rate.

    Returns ``inf`` when there is no write traffic.
    """
    if capacity_bytes <= 0:
        raise ValueError(f"capacity must be positive: {capacity_bytes}")
    if write_bytes_per_second <= 0:
        return float("inf")
    total_write_budget = capacity_bytes * spec.pe_cycles
    return total_write_budget / write_bytes_per_second
