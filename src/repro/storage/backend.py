"""Simulated file storage backend.

Files hold real bytes in memory but every access is charged to the tier's
device model, producing simulated latency. The backend supports the three
access patterns the systems above it need:

* **SSTable / WAL writes** — whole-file sequential writes
  (:meth:`StorageBackend.create_file`), charged at write bandwidth;
  compaction outputs are background I/O.
* **Block reads** — random reads of an aligned byte range
  (:meth:`StorageBackend.read`), charged one device access per call.
* **Migration** — Mutant's whole-file moves between tiers
  (:meth:`StorageBackend.migrate_file`), which lock the file: foreground
  reads that arrive mid-migration stall until the move completes,
  reproducing the paper's report of order-of-magnitude read spikes during
  Mutant migrations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.errors import StorageError
from repro.storage.tier import StorageTier


class SimFile:
    """One immutable simulated file resident on a tier."""

    __slots__ = ("file_id", "tier", "_data", "view", "locked_until_usec", "deleted")

    def __init__(self, file_id: int, tier: StorageTier, data: bytes) -> None:
        self.file_id = file_id
        self.tier = tier
        self._data = data
        #: Reusable zero-copy window over ``data``; block reads slice it
        #: instead of copying the byte range. Kept in sync with ``data``
        #: by the setter (file contents only change under failure
        #: injection, which swaps in corrupted bytes wholesale).
        self.view = memoryview(data)
        self.locked_until_usec = 0.0
        self.deleted = False

    @property
    def data(self) -> bytes:
        return self._data

    @data.setter
    def data(self, data: bytes) -> None:
        self._data = data
        self.view = memoryview(data)

    @property
    def size(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimFile(id={self.file_id}, tier={self.tier.name}, {self.size} B)"


@dataclass
class BackendStats:
    """Aggregate I/O statistics across all tiers, by purpose."""

    foreground_read_bytes: int = 0
    foreground_write_bytes: int = 0
    background_read_bytes: int = 0
    background_write_bytes: int = 0
    files_created: int = 0
    files_deleted: int = 0
    migrations: int = 0
    migration_bytes: int = 0
    lock_stall_usec: float = 0.0
    lock_stalls: int = 0
    per_tier_read_bytes: dict[str, int] = field(default_factory=dict)
    per_tier_write_bytes: dict[str, int] = field(default_factory=dict)


class StorageBackend:
    """Factory and access mediator for :class:`SimFile` objects."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._ids = itertools.count(1)
        self._files: dict[int, SimFile] = {}
        self.stats = BackendStats()

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def live_files(self) -> int:
        return len(self._files)

    def get_file(self, file_id: int) -> SimFile:
        """Look up a live file by id (restart/recovery path)."""
        file = self._files.get(file_id)
        if file is None:
            raise StorageError(f"no live file with id {file_id}")
        return file

    def _tally(self, tier: StorageTier, n_bytes: int, *, is_read: bool, foreground: bool) -> None:
        if is_read:
            bucket = self.stats.per_tier_read_bytes
            if foreground:
                self.stats.foreground_read_bytes += n_bytes
            else:
                self.stats.background_read_bytes += n_bytes
        else:
            bucket = self.stats.per_tier_write_bytes
            if foreground:
                self.stats.foreground_write_bytes += n_bytes
            else:
                self.stats.background_write_bytes += n_bytes
        bucket[tier.name] = bucket.get(tier.name, 0) + n_bytes

    # ------------------------------------------------------------------
    # File lifecycle
    # ------------------------------------------------------------------
    def create_file(self, tier: StorageTier, data: bytes, *, foreground: bool = False) -> tuple[SimFile, float]:
        """Write ``data`` as a new file on ``tier``.

        Returns the file and the simulated write latency (0 for
        background writes, which are charged to the tier's backlog).
        """
        tier.allocate(len(data))
        latency = tier.device.write(len(data), foreground=foreground)
        self._tally(tier, len(data), is_read=False, foreground=foreground)
        file = SimFile(next(self._ids), tier, data)
        self._files[file.file_id] = file
        self.stats.files_created += 1
        return file, latency

    def delete_file(self, file: SimFile) -> None:
        """Delete a file and release its tier capacity. Idempotent."""
        if file.deleted:
            return
        file.deleted = True
        file.tier.release(file.size)
        self._files.pop(file.file_id, None)
        self.stats.files_deleted += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, file: SimFile, offset: int, length: int, *, foreground: bool = True, ctx=None) -> tuple[bytes | memoryview, float]:
        """Read ``length`` bytes at ``offset``; returns (data, latency).

        The returned data is zero-copy: a whole-file read hands back the
        file's own immutable ``bytes`` object, a partial read a
        ``memoryview`` slice of it. Callers that need an independent
        ``bytes`` (rare — decoders slice out exactly the fields they
        keep) must convert explicitly.

        ``ctx`` (an :class:`~repro.obs.attribution.OpContext`) attributes
        the device time to the requesting component and any mid-migration
        lock stall to ``(migration_stall, tier)``.
        """
        if file.deleted:
            raise StorageError(f"read from deleted file {file.file_id}")
        if offset < 0 or length < 0 or offset + length > file.size:
            raise StorageError(
                f"read out of bounds: [{offset}, {offset + length}) of "
                f"{file.size} B file {file.file_id}"
            )
        stall = 0.0
        if foreground and file.locked_until_usec > self._clock.now:
            stall = file.locked_until_usec - self._clock.now
            self.stats.lock_stall_usec += stall
            self.stats.lock_stalls += 1
            if ctx is not None:
                ctx.add("migration_stall", file.tier.name, stall)
        latency = file.tier.device.read(length, foreground=foreground, ctx=ctx) + stall
        self._tally(file.tier, length, is_read=True, foreground=foreground)
        if offset == 0 and length == len(file.data):
            return file.data, latency
        return file.view[offset : offset + length], latency

    def read_all(self, file: SimFile, *, foreground: bool = False) -> tuple[bytes | memoryview, float]:
        """Read an entire file (compaction input scans)."""
        return self.read(file, 0, file.size, foreground=foreground)

    # ------------------------------------------------------------------
    # Migration (Mutant)
    # ------------------------------------------------------------------
    def migrate_file(self, file: SimFile, dst_tier: StorageTier) -> float:
        """Move a file to ``dst_tier``, locking it for the transfer time.

        The move is background I/O (read on the source, write on the
        destination) but the lock duration — the larger of the two
        transfer times — blocks any foreground read arriving before the
        migration finishes. Returns the lock duration in usec.
        """
        if file.deleted:
            raise StorageError(f"migrate deleted file {file.file_id}")
        if dst_tier is file.tier:
            return 0.0
        src_tier = file.tier
        dst_tier.allocate(file.size)
        read_time = src_tier.spec.read_time_usec(file.size)
        write_time = dst_tier.spec.write_time_usec(file.size)
        src_tier.device.read(file.size, foreground=False)
        dst_tier.device.write(file.size, foreground=False)
        self._tally(src_tier, file.size, is_read=True, foreground=False)
        self._tally(dst_tier, file.size, is_read=False, foreground=False)
        src_tier.release(file.size)
        file.tier = dst_tier
        lock_duration = max(read_time, write_time)
        file.locked_until_usec = self._clock.now + lock_duration
        self.stats.migrations += 1
        self.stats.migration_bytes += file.size
        return lock_duration
