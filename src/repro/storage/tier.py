"""Storage tiers: a device instance plus capacity bookkeeping.

A tier is one addressable pool of storage (e.g. "the NVM holding L0-L2" in
the NNNTQ configuration). Files allocate space from a tier; the tier
refuses allocations beyond its capacity (the paper pins LSM levels to
fixed allocations by setting the pending-compaction byte limit to zero, so
capacity is a hard constraint here as well, with a small slack factor for
in-flight compaction outputs).
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.errors import CapacityError, ConfigError
from repro.storage.device import Device, DeviceSpec


class StorageTier:
    """One capacity-limited pool backed by a single device technology."""

    def __init__(
        self,
        name: str,
        spec: DeviceSpec,
        capacity_bytes: int,
        clock: SimClock,
        *,
        slack_factor: float = 2.0,
        nominal_bytes: int | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"tier {name}: capacity must be positive")
        if slack_factor < 1.0:
            raise ConfigError(f"tier {name}: slack_factor must be >= 1.0")
        self.name = name
        self.device = Device(spec, capacity_bytes, clock)
        # Per-request latency attribution names the tier, not the raw
        # technology, so "nvm-L0-L2" and a second NVM tier stay distinct.
        self.device.tier_name = name
        self.capacity_bytes = capacity_bytes
        #: The intended steady-state data volume (sum of level targets);
        #: ``capacity_bytes`` adds headroom for compaction transients.
        #: Placement policies (Mutant's optimizer) budget against this.
        self.nominal_bytes = nominal_bytes if nominal_bytes is not None else capacity_bytes
        self._slack_factor = slack_factor
        self._used_bytes = 0

    @property
    def spec(self) -> DeviceSpec:
        return self.device.spec

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return max(0, self.capacity_bytes - self._used_bytes)

    @property
    def utilization(self) -> float:
        """Used fraction of nominal capacity (can exceed 1.0 within slack)."""
        return self._used_bytes / self.capacity_bytes

    def allocate(self, n_bytes: int) -> None:
        """Reserve ``n_bytes``; raises :class:`CapacityError` past slack.

        The slack factor tolerates transient overshoot while a compaction
        holds both its inputs and outputs; steady-state usage above
        nominal capacity indicates a mis-sized level layout and is
        surfaced via :attr:`utilization`.
        """
        if n_bytes < 0:
            raise ValueError(f"negative allocation: {n_bytes}")
        hard_limit = int(self.capacity_bytes * self._slack_factor)
        if self._used_bytes + n_bytes > hard_limit:
            raise CapacityError(
                f"tier {self.name}: allocating {n_bytes} B would exceed "
                f"hard limit {hard_limit} B (used {self._used_bytes} B)"
            )
        self._used_bytes += n_bytes

    def release(self, n_bytes: int) -> None:
        """Return ``n_bytes`` to the pool (file deletion)."""
        if n_bytes < 0:
            raise ValueError(f"negative release: {n_bytes}")
        if n_bytes > self._used_bytes:
            raise ValueError(
                f"tier {self.name}: releasing {n_bytes} B but only "
                f"{self._used_bytes} B allocated"
            )
        self._used_bytes -= n_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageTier({self.name}, {self.spec.name}, "
            f"{self._used_bytes}/{self.capacity_bytes} B)"
        )
