"""Storage device models.

Each physical device from the paper's testbed (Table 1) is described by a
:class:`DeviceSpec` — its 4 KB random-read latency, program latency,
sequential bandwidth, cost per GB and program/erase endurance — and
instantiated as a :class:`Device` bound to a simulated clock.

A :class:`Device` is the only place simulated I/O time is produced. Every
block the engine touches is charged here, and the device also models
foreground/background interference: compaction and migration traffic is
queued as a background byte backlog that drains at the device's write
bandwidth, and foreground accesses that arrive while a backlog exists pay
a queueing penalty proportional to the backlog's remaining drain time.
That penalty is what reproduces the paper's observations that (a) Mutant's
whole-file migrations spike read tails and (b) PrismDB's reduced
compaction I/O (Fig. 12) translates into higher foreground throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import SimClock
from repro.common.units import BLOCK_SIZE, GIB, MIB
from repro.errors import ConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """Immutable description of one storage technology.

    Latencies are for a single 4 KB access; bandwidths apply to the
    streaming portion of larger transfers. ``pe_cycles`` is the number of
    full-capacity program/erase cycles the medium tolerates (Table 1);
    ``cost_per_gb`` is in dollars.
    """

    name: str
    read_latency_usec: float
    write_latency_usec: float
    read_bandwidth_bps: float
    write_bandwidth_bps: float
    cost_per_gb: float
    pe_cycles: int
    #: Steady-state write bandwidth once any SLC-style write cache is
    #: exhausted. Dense flash sustains far less than its burst rate (the
    #: Intel 660p QLC drops to ~100 MB/s); Optane has no such cliff.
    #: Background (compaction/migration) backlogs drain at this rate.
    sustained_write_bandwidth_bps: float = 0.0

    def __post_init__(self) -> None:
        if self.read_latency_usec < 0 or self.write_latency_usec < 0:
            raise ConfigError(f"{self.name}: latencies must be non-negative")
        if self.read_bandwidth_bps <= 0 or self.write_bandwidth_bps <= 0:
            raise ConfigError(f"{self.name}: bandwidths must be positive")
        if self.pe_cycles <= 0:
            raise ConfigError(f"{self.name}: pe_cycles must be positive")
        if self.sustained_write_bandwidth_bps <= 0:
            object.__setattr__(
                self, "sustained_write_bandwidth_bps", self.write_bandwidth_bps
            )

    def read_time_usec(self, n_bytes: int) -> float:
        """Service time of one read of ``n_bytes`` (no queueing).

        ``read_latency_usec`` is the measured total for a 4 KB random
        read (Table 1), so it already covers the first page's transfer;
        only bytes beyond the first block add streaming time.
        """
        extra = max(0, n_bytes - BLOCK_SIZE)
        transfer = extra / self.read_bandwidth_bps * 1_000_000.0
        return self.read_latency_usec + transfer

    def write_time_usec(self, n_bytes: int) -> float:
        """Service time of one write of ``n_bytes`` (no queueing).

        LSM writes are large and sequential, so the bandwidth term
        dominates; the per-access program latency is paid once.
        """
        transfer = n_bytes / self.write_bandwidth_bps * 1_000_000.0
        return self.write_latency_usec + transfer


def _bps(mb_per_s: float) -> float:
    return mb_per_s * MIB


#: Table 1 of the paper: Optane SSD (Intel 900p). 26 us 4 KB random read.
NVM_SPEC = DeviceSpec(
    name="NVM",
    read_latency_usec=26.0,
    write_latency_usec=12.0,
    read_bandwidth_bps=_bps(2500.0),
    write_bandwidth_bps=_bps(2000.0),
    cost_per_gb=1.30,
    pe_cycles=18_000,
)

#: Table 1: TLC flash (Intel 760p). 195 us 4 KB random read. The write
#: bandwidth preserves the paper's 121:216 NVM:TLC large-write ratio.
TLC_SPEC = DeviceSpec(
    name="TLC",
    read_latency_usec=195.0,
    write_latency_usec=65.0,
    read_bandwidth_bps=_bps(1500.0),
    write_bandwidth_bps=_bps(1120.0),
    cost_per_gb=0.40,
    pe_cycles=540,
    sustained_write_bandwidth_bps=_bps(300.0),
)

#: Table 1: QLC flash (Intel 660p). 391 us 4 KB random read; write
#: bandwidth preserves the 121:456 NVM:QLC ratio.
QLC_SPEC = DeviceSpec(
    name="QLC",
    read_latency_usec=391.0,
    write_latency_usec=130.0,
    read_bandwidth_bps=_bps(800.0),
    write_bandwidth_bps=_bps(530.0),
    cost_per_gb=0.10,
    pe_cycles=200,
    sustained_write_bandwidth_bps=_bps(100.0),
)

#: DRAM, used for the block cache and memtable reads. Endurance is
#: effectively unlimited; the large pe_cycles value keeps the wear math
#: uniform.
DRAM_SPEC = DeviceSpec(
    name="DRAM",
    read_latency_usec=0.2,
    write_latency_usec=0.2,
    read_bandwidth_bps=_bps(20_000.0),
    write_bandwidth_bps=_bps(20_000.0),
    cost_per_gb=5.0,
    pe_cycles=10**9,
)

#: Registry keyed by the single-letter code used in Fig. 4's five-tuples.
SPECS_BY_CODE = {"N": NVM_SPEC, "T": TLC_SPEC, "Q": QLC_SPEC, "D": DRAM_SPEC}
SPECS_BY_NAME = {spec.name: spec for spec in SPECS_BY_CODE.values()}


@dataclass
class DeviceStats:
    """Cumulative I/O accounting of one device instance."""

    bytes_read_foreground: int = 0
    bytes_read_background: int = 0
    bytes_written_foreground: int = 0
    bytes_written_background: int = 0
    reads: int = 0
    writes: int = 0
    busy_usec: float = 0.0

    @property
    def bytes_read(self) -> int:
        return self.bytes_read_foreground + self.bytes_read_background

    @property
    def bytes_written(self) -> int:
        return self.bytes_written_foreground + self.bytes_written_background


class _DeviceObs:
    """Registry handles one bound device increments on every access."""

    __slots__ = (
        "read_fg", "read_bg", "write_fg", "write_bg",
        "reads", "writes", "busy", "queue_penalty",
    )

    def __init__(self, registry, tier: str) -> None:
        self.read_fg = registry.counter("device.read_bytes", tier=tier, mode="foreground")
        self.read_bg = registry.counter("device.read_bytes", tier=tier, mode="background")
        self.write_fg = registry.counter("device.write_bytes", tier=tier, mode="foreground")
        self.write_bg = registry.counter("device.write_bytes", tier=tier, mode="background")
        self.reads = registry.counter("device.reads", tier=tier)
        self.writes = registry.counter("device.writes", tier=tier)
        self.busy = registry.counter("device.busy_usec", tier=tier)
        self.queue_penalty = registry.histogram("device.queue_penalty_usec", tier=tier)


class Device:
    """A device instance: a spec plus capacity, wear and a backlog queue.

    ``background_share`` is the fraction of write bandwidth the device
    dedicates to draining background (compaction/migration) I/O while
    foreground traffic is present; the remainder of the model's queueing
    penalty falls on foreground accesses via :meth:`queue_penalty_usec`.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        capacity_bytes: int,
        clock: SimClock,
        *,
        background_share: float = 0.6,
        interference_factor: float = 0.35,
        max_penalty_usec: float = 5_000.0,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"device capacity must be positive: {capacity_bytes}")
        if not 0.0 < background_share <= 1.0:
            raise ConfigError(f"background_share must be in (0, 1]: {background_share}")
        self.spec = spec
        self.capacity_bytes = capacity_bytes
        #: Attribution label for this device's latency; the owning
        #: :class:`~repro.storage.tier.StorageTier` overwrites it with
        #: the tier name (e.g. ``qlc-L4``) so per-request breakdowns name
        #: the tier, not just the technology.
        self.tier_name = spec.name.lower()
        self.stats = DeviceStats()
        self._clock = clock
        self._background_share = background_share
        self._interference_factor = interference_factor
        self._max_penalty_usec = max_penalty_usec
        self._backlog_bytes = 0.0
        self._last_drain_usec = clock.now
        self._obs: _DeviceObs | None = None

    def bind_observability(self, registry, *, tier: str) -> None:
        """Mirror all I/O accounting into ``registry`` under ``tier``.

        Called by the owning database once the device's tier name is
        known; re-binding (e.g. on :meth:`LsmDB.reopen`) points the
        device at the new instance's registry, whose counters start at
        zero — registry totals are per-database-instance, while
        :attr:`stats` is cumulative for the device's lifetime.
        """
        self._obs = _DeviceObs(registry, tier)

    # ------------------------------------------------------------------
    # Background backlog
    # ------------------------------------------------------------------
    def _drain_backlog(self) -> None:
        """Retire background bytes written since the last drain."""
        now = self._clock.now
        elapsed = now - self._last_drain_usec
        self._last_drain_usec = now
        if elapsed <= 0 or self._backlog_bytes <= 0:
            return
        drain_rate = self.spec.sustained_write_bandwidth_bps * self._background_share
        drained = elapsed / 1_000_000.0 * drain_rate
        self._backlog_bytes = max(0.0, self._backlog_bytes - drained)

    @property
    def backlog_bytes(self) -> float:
        """Current background backlog after draining to the present."""
        self._drain_backlog()
        return self._backlog_bytes

    def queue_penalty_usec(self) -> float:
        """Extra latency a foreground access pays due to background work."""
        backlog = self.backlog_bytes
        if backlog <= 0:
            return 0.0
        drain_usec = backlog / self.spec.sustained_write_bandwidth_bps * 1_000_000.0
        return min(self._max_penalty_usec, drain_usec * self._interference_factor)

    # ------------------------------------------------------------------
    # I/O charging
    # ------------------------------------------------------------------
    def read(self, n_bytes: int, *, foreground: bool = True, ctx=None) -> float:
        """Charge a read and return its simulated latency in usec.

        ``ctx`` is an optional :class:`~repro.obs.attribution.OpContext`:
        when present, the base service time is attributed to
        ``(ctx.component, tier)`` and the queueing penalty — time spent
        behind background compaction/migration backlog — to
        ``(compact_wait, tier)``. Attribution never changes the returned
        latency.
        """
        if n_bytes < 0:
            raise ValueError(f"negative read size: {n_bytes}")
        self.stats.reads += 1
        base = self.spec.read_time_usec(n_bytes)
        penalty = 0.0
        if foreground:
            self.stats.bytes_read_foreground += n_bytes
            penalty = self.queue_penalty_usec()
            latency = base + penalty
            if ctx is not None:
                ctx.add(ctx.component, self.tier_name, base)
                if penalty:
                    ctx.add("compact_wait", self.tier_name, penalty)
        else:
            self.stats.bytes_read_background += n_bytes
            # Background reads contend like background writes do: they
            # occupy the device, so they join the backlog at read cost
            # converted to equivalent write-bandwidth bytes.
            self._drain_backlog()
            self._backlog_bytes += n_bytes * 0.5
            latency = base
        self.stats.busy_usec += base
        if self._obs is not None:
            obs = self._obs
            obs.reads.inc()
            obs.busy.inc(base)
            if foreground:
                obs.read_fg.inc(n_bytes)
                obs.queue_penalty.observe(penalty)
            else:
                obs.read_bg.inc(n_bytes)
        return latency

    def write(self, n_bytes: int, *, foreground: bool = True, ctx=None) -> float:
        """Charge a write and return its simulated latency in usec.

        Background writes (compactions, migrations) return 0 latency to
        the caller — they happen off the critical path — but enqueue
        their bytes in the backlog, which slows later foreground I/O.
        """
        if n_bytes < 0:
            raise ValueError(f"negative write size: {n_bytes}")
        self.stats.writes += 1
        base = self.spec.write_time_usec(n_bytes)
        self.stats.busy_usec += base
        if self._obs is not None:
            obs = self._obs
            obs.writes.inc()
            obs.busy.inc(base)
            (obs.write_fg if foreground else obs.write_bg).inc(n_bytes)
        if foreground:
            penalty = self.queue_penalty_usec()
            if self._obs is not None:
                self._obs.queue_penalty.observe(penalty)
            if ctx is not None:
                ctx.add(ctx.component, self.tier_name, base)
                if penalty:
                    ctx.add("compact_wait", self.tier_name, penalty)
            self.stats.bytes_written_foreground += n_bytes
            return base + penalty
        self.stats.bytes_written_background += n_bytes
        self._drain_backlog()
        self._backlog_bytes += n_bytes
        return 0.0

    # ------------------------------------------------------------------
    # Wear / endurance
    # ------------------------------------------------------------------
    @property
    def wear_cycles(self) -> float:
        """Full-capacity program/erase cycles consumed so far."""
        return self.stats.bytes_written / self.capacity_bytes

    @property
    def life_fraction_used(self) -> float:
        """Fraction of the device's endurance budget consumed (0..)."""
        return self.wear_cycles / self.spec.pe_cycles

    def cost_dollars(self) -> float:
        """Purchase cost of this device instance at its capacity."""
        return self.capacity_bytes / GIB * self.spec.cost_per_gb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Device({self.spec.name}, cap={self.capacity_bytes / GIB:.2f}GiB, "
            f"wear={self.wear_cycles:.2f}cyc)"
        )


def fio_random_read_latency(spec: DeviceSpec, *, block_bytes: int = BLOCK_SIZE) -> float:
    """The fio-style 4 KB random-read figure for Table 1 regeneration."""
    return spec.read_time_usec(block_bytes)


def fio_large_write_latency(spec: DeviceSpec, *, chunk_bytes: int = 64 * MIB, io_bytes: int = 256 * 1024) -> float:
    """Average per-I/O latency while streaming a large sequential write.

    Mirrors the paper's Table 1 "Avg Write Latency (64 MB)" measurement:
    the mean time per ``io_bytes`` submission while writing
    ``chunk_bytes`` sequentially. With the default 256 KiB submissions the
    model lands within a few percent of the paper's 121/216/456 us column.
    """
    total = spec.write_time_usec(chunk_bytes)
    ios = max(1, chunk_bytes // io_bytes)
    return total / ios
