"""Simulated heterogeneous storage substrate.

Device models (Table 1 parameters), capacity-tracked tiers, a simulated
file backend that charges every access to a device, and the endurance
provisioning math behind the paper's cost model.
"""

from repro.storage.backend import BackendStats, SimFile, StorageBackend
from repro.storage.device import (
    DRAM_SPEC,
    NVM_SPEC,
    QLC_SPEC,
    SPECS_BY_CODE,
    SPECS_BY_NAME,
    TLC_SPEC,
    Device,
    DeviceSpec,
    DeviceStats,
    fio_large_write_latency,
    fio_random_read_latency,
)
from repro.storage.endurance import (
    DEFAULT_LIFETIME_SECONDS,
    ProvisioningResult,
    device_lifetime_seconds,
    provision_capacity,
)
from repro.storage.tier import StorageTier

__all__ = [
    "BackendStats",
    "SimFile",
    "StorageBackend",
    "DRAM_SPEC",
    "NVM_SPEC",
    "QLC_SPEC",
    "TLC_SPEC",
    "SPECS_BY_CODE",
    "SPECS_BY_NAME",
    "Device",
    "DeviceSpec",
    "DeviceStats",
    "fio_large_write_latency",
    "fio_random_read_latency",
    "DEFAULT_LIFETIME_SECONDS",
    "ProvisioningResult",
    "device_lifetime_seconds",
    "provision_capacity",
    "StorageTier",
]
