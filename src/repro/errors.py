"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An option object or constructor argument is invalid."""


class StorageError(ReproError):
    """Base class for storage-substrate failures."""


class CapacityError(StorageError):
    """A tier or file would exceed its configured capacity."""


class FileLockedError(StorageError):
    """A simulated file is locked (e.g. by a Mutant migration)."""


class EnduranceExceededError(StorageError):
    """A device has consumed its entire program/erase budget."""


class CorruptionError(ReproError):
    """A serialized structure (block, SSTable, WAL record) failed to parse."""


class DBClosedError(ReproError):
    """An operation was attempted on a closed database."""


class CompactionError(ReproError):
    """A compaction job could not be planned or executed."""


class ObservabilityError(ReproError):
    """Misuse of the metrics registry (type clash, label cardinality)."""
