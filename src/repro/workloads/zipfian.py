"""Key-popularity distributions (the generators YCSB uses).

The paper's workloads are YCSB with Zipfian request distributions
(default theta 0.99, swept 0.6-1.4 in Fig. 11) plus the "latest"
distribution where recently inserted keys are hottest. The Zipfian
generator is the standard Gray et al. incremental sampler YCSB ships:
O(n) setup for the zeta constant, O(1) per sample. The *scrambled*
variant hashes ranks over the key space so popular keys are spread
uniformly across the key range rather than clustered at its start —
essential here, because clustering would let a single SSTable hold the
whole hot set and trivialize hot-cold separation.
"""

from __future__ import annotations

import abc
import random

from repro.common.rng import fnv1a_64
from repro.errors import ConfigError


class KeyIndexGenerator(abc.ABC):
    """Produces key *indexes* in [0, n); key formatting happens upstream."""

    @abc.abstractmethod
    def next_index(self) -> int:
        """Sample one key index."""


class UniformGenerator(KeyIndexGenerator):
    """Every key equally likely."""

    def __init__(self, n_keys: int, rng: random.Random) -> None:
        if n_keys <= 0:
            raise ConfigError(f"n_keys must be positive: {n_keys}")
        self._n = n_keys
        self._rng = rng

    def next_index(self) -> int:
        return self._rng.randrange(self._n)


#: Memoized zeta partial sums. Every ZipfianGenerator construction needs
#: zeta(n, theta) — an O(n) sum that dominated multi-experiment sweeps
#: (the Fig. 11 theta sweep builds a generator per run over the same key
#: space). The cache is tiny in practice: one entry per distinct
#: (n, theta) pair a process ever uses, and the cached value is the exact
#: float the direct sum produces, so sampling is bit-identical.
_ZETA_CACHE: dict[tuple[int, float], float] = {}


def _zeta(n: int, theta: float) -> float:
    """Riemann zeta partial sum: sum_{i=1..n} 1 / i^theta (memoized)."""
    key = (n, theta)
    value = _ZETA_CACHE.get(key)
    if value is None:
        value = float(sum(1.0 / (i**theta) for i in range(1, n + 1)))
        _ZETA_CACHE[key] = value
    return value


class ZipfianGenerator(KeyIndexGenerator):
    """Gray et al. Zipfian sampler over ranks 0..n-1 (rank 0 hottest)."""

    def __init__(self, n_keys: int, theta: float, rng: random.Random) -> None:
        if n_keys <= 0:
            raise ConfigError(f"n_keys must be positive: {n_keys}")
        if not 0.0 < theta < 2.0 or theta == 1.0:
            raise ConfigError(f"theta must be in (0,2) excluding 1.0: {theta}")
        self._n = n_keys
        self._theta = theta
        self._rng = rng
        self._zetan = _zeta(n_keys, theta)
        zeta2 = _zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n_keys) ** (1.0 - theta)) / (1.0 - zeta2 / self._zetan)

    def next_index(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self._theta:
            return 1
        rank = int(self._n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return min(rank, self._n - 1)


class ScrambledZipfianGenerator(KeyIndexGenerator):
    """Zipfian ranks hashed over the key space (YCSB's default)."""

    def __init__(self, n_keys: int, theta: float, rng: random.Random) -> None:
        self._zipf = ZipfianGenerator(n_keys, theta, rng)
        self._n = n_keys

    def next_index(self) -> int:
        rank = self._zipf.next_index()
        return fnv1a_64(rank.to_bytes(8, "little")) % self._n


class LatestGenerator(KeyIndexGenerator):
    """YCSB's "latest": the most recently inserted keys are hottest.

    Rank r maps to index (max_index - r); as inserts grow the key space
    (via :meth:`note_insert`), popularity follows the tail.
    """

    def __init__(self, n_keys: int, theta: float, rng: random.Random) -> None:
        if n_keys <= 0:
            raise ConfigError(f"n_keys must be positive: {n_keys}")
        self._n = n_keys
        self._zipf = ZipfianGenerator(n_keys, theta, rng)

    def note_insert(self) -> None:
        """Grow the key space by one (a new hottest key)."""
        self._n += 1

    def next_index(self) -> int:
        rank = self._zipf.next_index()
        return max(0, self._n - 1 - rank)


def make_generator(name: str, n_keys: int, theta: float, rng: random.Random) -> KeyIndexGenerator:
    """Factory by distribution name: uniform / zipfian / latest."""
    if name == "uniform":
        return UniformGenerator(n_keys, rng)
    if name == "zipfian":
        return ScrambledZipfianGenerator(n_keys, theta, rng)
    if name == "latest":
        return LatestGenerator(n_keys, theta, rng)
    raise ConfigError(f"unknown distribution {name!r}")
