"""YCSB-style workload definition and request streams.

A :class:`YCSBWorkload` mirrors the knobs the paper exercises (§6): record
count, operation count, read/update mix, request distribution (Zipfian
with a parameter, "latest", uniform), and value size. The workload yields
a deterministic request stream given a seed, so every system is measured
against byte-identical traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.rng import make_rng
from repro.errors import ConfigError
from repro.workloads.zipfian import LatestGenerator, make_generator


class OpKind(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"


@dataclass(frozen=True)
class Request:
    """One operation in the stream."""

    kind: OpKind
    key: bytes
    value: bytes = b""
    scan_length: int = 0


@dataclass
class YCSBConfig:
    """Workload parameters (defaults: the paper's 95/5 zipf-0.99 setup)."""

    record_count: int = 100_000
    operation_count: int = 200_000
    read_proportion: float = 0.95
    update_proportion: float = 0.05
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    distribution: str = "zipfian"
    zipf_theta: float = 0.99
    value_bytes: int = 100
    max_scan_length: int = 100
    #: Unmeasured operations run before the measured phase so systems
    #: reach steady state (tracker full, hot set settled). The paper's
    #: 50M-request runs amortize warm-up; short simulated runs must warm
    #: up explicitly.
    warmup_operations: int = 0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.record_count <= 0:
            raise ConfigError("record_count must be positive")
        if self.operation_count < 0:
            raise ConfigError("operation_count must be non-negative")
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"operation proportions must sum to 1.0, got {total}")
        if self.value_bytes <= 0:
            raise ConfigError("value_bytes must be positive")

    @staticmethod
    def read_update(read_pct: int, **overrides) -> "YCSBConfig":
        """Shorthand for the paper's read/update sweeps, e.g. 95 -> 95/5."""
        if not 0 <= read_pct <= 100:
            raise ConfigError(f"read_pct out of range: {read_pct}")
        return YCSBConfig(
            read_proportion=read_pct / 100.0,
            update_proportion=1.0 - read_pct / 100.0,
            **overrides,
        )


class YCSBWorkload:
    """Generates the load phase and the (deterministic) run phase."""

    KEY_FORMAT = "user%012d"

    def __init__(self, config: YCSBConfig) -> None:
        self.config = config
        self._insert_count = config.record_count

    def key(self, index: int) -> bytes:
        """Format a key index the way YCSB does."""
        return (self.KEY_FORMAT % index).encode("ascii")

    def value_for(self, key: bytes, rng) -> bytes:
        """A pseudo-random value of the configured size."""
        return rng.randbytes(self.config.value_bytes)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def load_stream(self) -> Iterator[Request]:
        """Insert every record once, in key order (YCSB's load phase)."""
        rng = make_rng(self.config.seed, "load")
        for index in range(self.config.record_count):
            key = self.key(index)
            yield Request(OpKind.INSERT, key, self.value_for(key, rng))

    def warmup_stream(self) -> Iterator[Request]:
        """Unmeasured steady-state warm-up traffic (same mix, own seed)."""
        return self._op_stream("warmup", self.config.warmup_operations)

    def run_stream(self) -> Iterator[Request]:
        """The transaction phase: a deterministic mixed request stream."""
        return self._op_stream("ops", self.config.operation_count)

    def _op_stream(self, phase: str, count: int) -> Iterator[Request]:
        cfg = self.config
        op_rng = make_rng(cfg.seed, phase, "ops")
        key_rng = make_rng(cfg.seed, phase, "keys")
        value_rng = make_rng(cfg.seed, phase, "values")
        generator = make_generator(cfg.distribution, cfg.record_count, cfg.zipf_theta, key_rng)
        insert_cursor = cfg.record_count
        read_cut = cfg.read_proportion
        update_cut = read_cut + cfg.update_proportion
        insert_cut = update_cut + cfg.insert_proportion
        for _ in range(count):
            dice = op_rng.random()
            if dice < read_cut:
                yield Request(OpKind.READ, self.key(self._bounded(generator.next_index(), insert_cursor)))
            elif dice < update_cut:
                key = self.key(self._bounded(generator.next_index(), insert_cursor))
                yield Request(OpKind.UPDATE, key, self.value_for(key, value_rng))
            elif dice < insert_cut:
                key = self.key(insert_cursor)
                insert_cursor += 1
                if isinstance(generator, LatestGenerator):
                    generator.note_insert()
                yield Request(OpKind.INSERT, key, self.value_for(key, value_rng))
            else:
                start = self.key(self._bounded(generator.next_index(), insert_cursor))
                length = 1 + op_rng.randrange(cfg.max_scan_length)
                yield Request(OpKind.SCAN, start, scan_length=length)

    @staticmethod
    def _bounded(index: int, limit: int) -> int:
        """Clamp generator output to keys that exist (inserts grow it)."""
        return index if index < limit else index % limit

    def total_data_bytes(self) -> int:
        """Approximate serialized size of the loaded data set."""
        key_bytes = len(self.key(0))
        # Record framing overhead: header (15 B) per entry.
        return self.config.record_count * (key_bytes + self.config.value_bytes + 15)
