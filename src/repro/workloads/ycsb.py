"""YCSB-style workload definition and request streams.

A :class:`YCSBWorkload` mirrors the knobs the paper exercises (§6): record
count, operation count, read/update mix, request distribution (Zipfian
with a parameter, "latest", uniform), and value size. The workload yields
a deterministic request stream given a seed, so every system is measured
against byte-identical traffic.

Two stream shapes are offered. The classic per-op iterators
(:meth:`~YCSBWorkload.run_stream` and friends) yield one
:class:`Request` object per operation. The batched form
(:meth:`~YCSBWorkload.run_batches`) yields :class:`RequestBatch` chunks —
parallel arrays of int op codes, interned key bytes, values and scan
lengths — so the harness's hot loop indexes arrays instead of
constructing and destructuring a frozen dataclass per op. Both shapes
draw from the RNGs in exactly the same order, so they describe the
identical operation sequence; the per-op iterators are in fact thin
adapters over the batches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import make_rng
from repro.errors import ConfigError
from repro.workloads.interning import KeyInterner
from repro.workloads.zipfian import LatestGenerator, make_generator


class OpKind(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"


#: Integer op codes used inside :class:`RequestBatch`; array-friendly
#: stand-ins for :class:`OpKind` on the batched hot path.
OP_READ, OP_UPDATE, OP_INSERT, OP_SCAN = 0, 1, 2, 3
#: code -> OpKind (index = code).
OP_KINDS = (OpKind.READ, OpKind.UPDATE, OpKind.INSERT, OpKind.SCAN)
#: OpKind -> code.
OP_CODES = {kind: code for code, kind in enumerate(OP_KINDS)}

#: Operations per RequestBatch. Large enough to amortize per-batch
#: bookkeeping, small enough that a batch of 100-byte values stays cache
#: friendly.
DEFAULT_BATCH_OPS = 1024


@dataclass(frozen=True)
class Request:
    """One operation in the stream."""

    kind: OpKind
    key: bytes
    value: bytes = b""
    scan_length: int = 0


class RequestBatch:
    """A chunk of operations as parallel arrays (struct-of-arrays form).

    ``kinds[i]`` is an :data:`OP_READ`-style int code; ``keys[i]`` the
    interned key; ``values[i]`` the payload (``b""`` for reads/scans);
    ``scan_lengths[i]`` the scan length (0 for non-scans).
    """

    __slots__ = ("kinds", "keys", "values", "scan_lengths")

    def __init__(
        self,
        kinds: list[int],
        keys: list[bytes],
        values: list[bytes],
        scan_lengths: list[int],
    ) -> None:
        self.kinds = kinds
        self.keys = keys
        self.values = values
        self.scan_lengths = scan_lengths

    def __len__(self) -> int:
        return len(self.kinds)

    def requests(self) -> Iterator[Request]:
        """Adapt the arrays back into per-op :class:`Request` objects."""
        op_kinds = OP_KINDS
        for kind, key, value, length in zip(
            self.kinds, self.keys, self.values, self.scan_lengths
        ):
            yield Request(op_kinds[kind], key, value, length)


def batches_from_requests(
    requests: Iterator[Request], batch_ops: int = DEFAULT_BATCH_OPS
) -> Iterator[RequestBatch]:
    """Chunk any per-op Request stream into :class:`RequestBatch` form.

    Lets the batched runner drive workloads that only implement the
    per-op protocol (e.g. replayed traces) through its one hot loop.
    """
    op_codes = OP_CODES
    kinds: list[int] = []
    keys: list[bytes] = []
    values: list[bytes] = []
    lengths: list[int] = []
    for request in requests:
        kinds.append(op_codes[request.kind])
        keys.append(request.key)
        values.append(request.value)
        lengths.append(request.scan_length)
        if len(kinds) >= batch_ops:
            yield RequestBatch(kinds, keys, values, lengths)
            kinds, keys, values, lengths = [], [], [], []
    if kinds:
        yield RequestBatch(kinds, keys, values, lengths)


@dataclass
class YCSBConfig:
    """Workload parameters (defaults: the paper's 95/5 zipf-0.99 setup)."""

    record_count: int = 100_000
    operation_count: int = 200_000
    read_proportion: float = 0.95
    update_proportion: float = 0.05
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    distribution: str = "zipfian"
    zipf_theta: float = 0.99
    value_bytes: int = 100
    max_scan_length: int = 100
    #: Unmeasured operations run before the measured phase so systems
    #: reach steady state (tracker full, hot set settled). The paper's
    #: 50M-request runs amortize warm-up; short simulated runs must warm
    #: up explicitly.
    warmup_operations: int = 0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.record_count <= 0:
            raise ConfigError("record_count must be positive")
        if self.operation_count < 0:
            raise ConfigError("operation_count must be non-negative")
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"operation proportions must sum to 1.0, got {total}")
        if self.value_bytes <= 0:
            raise ConfigError("value_bytes must be positive")

    @staticmethod
    def read_update(read_pct: int, **overrides) -> "YCSBConfig":
        """Shorthand for the paper's read/update sweeps, e.g. 95 -> 95/5."""
        if not 0 <= read_pct <= 100:
            raise ConfigError(f"read_pct out of range: {read_pct}")
        return YCSBConfig(
            read_proportion=read_pct / 100.0,
            update_proportion=1.0 - read_pct / 100.0,
            **overrides,
        )


class YCSBWorkload:
    """Generates the load phase and the (deterministic) run phase."""

    KEY_FORMAT = "user%012d"

    def __init__(self, config: YCSBConfig) -> None:
        self.config = config
        self._insert_count = config.record_count
        #: Shared across phases so the load, warmup and run streams all
        #: hand out the same interned bytes object for a given key.
        self.interner = KeyInterner(self.KEY_FORMAT)

    def key(self, index: int) -> bytes:
        """Format a key index the way YCSB does (interned)."""
        return self.interner.key(index)

    def value_for(self, key: bytes, rng) -> bytes:
        """A pseudo-random value of the configured size."""
        return rng.randbytes(self.config.value_bytes)

    # ------------------------------------------------------------------
    # Phases (batched form: the canonical generators)
    # ------------------------------------------------------------------
    def load_batches(self, batch_ops: int = DEFAULT_BATCH_OPS) -> Iterator[RequestBatch]:
        """Insert every record once, in key order (YCSB's load phase)."""
        rng = make_rng(self.config.seed, "load")
        key = self.interner.key
        randbytes = rng.randbytes
        value_bytes = self.config.value_bytes
        remaining = self.config.record_count
        index = 0
        while remaining > 0:
            n = batch_ops if batch_ops < remaining else remaining
            remaining -= n
            keys = [key(i) for i in range(index, index + n)]
            index += n
            values = [randbytes(value_bytes) for _ in range(n)]
            yield RequestBatch([OP_INSERT] * n, keys, values, [0] * n)

    def warmup_batches(self, batch_ops: int = DEFAULT_BATCH_OPS) -> Iterator[RequestBatch]:
        """Unmeasured steady-state warm-up traffic (same mix, own seed)."""
        return self._op_batches("warmup", self.config.warmup_operations, batch_ops)

    def run_batches(self, batch_ops: int = DEFAULT_BATCH_OPS) -> Iterator[RequestBatch]:
        """The transaction phase: a deterministic mixed request stream."""
        return self._op_batches("ops", self.config.operation_count, batch_ops)

    def _op_batches(
        self, phase: str, count: int, batch_ops: int
    ) -> Iterator[RequestBatch]:
        cfg = self.config
        op_rng = make_rng(cfg.seed, phase, "ops")
        key_rng = make_rng(cfg.seed, phase, "keys")
        value_rng = make_rng(cfg.seed, phase, "values")
        generator = make_generator(cfg.distribution, cfg.record_count, cfg.zipf_theta, key_rng)
        insert_cursor = cfg.record_count
        read_cut = cfg.read_proportion
        update_cut = read_cut + cfg.update_proportion
        insert_cut = update_cut + cfg.insert_proportion
        # Hot locals: every attribute used per op is bound once.
        dice_fn = op_rng.random
        randrange = op_rng.randrange
        randbytes = value_rng.randbytes
        next_index = generator.next_index
        key = self.interner.key
        value_bytes = cfg.value_bytes
        max_scan = cfg.max_scan_length
        note_insert = (
            generator.note_insert if isinstance(generator, LatestGenerator) else None
        )
        empty = b""
        remaining = count
        while remaining > 0:
            n = batch_ops if batch_ops < remaining else remaining
            remaining -= n
            kinds: list[int] = []
            keys: list[bytes] = []
            values: list[bytes] = []
            lengths: list[int] = []
            append_kind = kinds.append
            append_key = keys.append
            append_value = values.append
            append_length = lengths.append
            for _ in range(n):
                dice = dice_fn()
                if dice < read_cut:
                    index = next_index()
                    append_kind(OP_READ)
                    append_key(key(index if index < insert_cursor else index % insert_cursor))
                    append_value(empty)
                    append_length(0)
                elif dice < update_cut:
                    index = next_index()
                    append_kind(OP_UPDATE)
                    append_key(key(index if index < insert_cursor else index % insert_cursor))
                    append_value(randbytes(value_bytes))
                    append_length(0)
                elif dice < insert_cut:
                    append_kind(OP_INSERT)
                    append_key(key(insert_cursor))
                    insert_cursor += 1
                    if note_insert is not None:
                        note_insert()
                    append_value(randbytes(value_bytes))
                    append_length(0)
                else:
                    index = next_index()
                    append_kind(OP_SCAN)
                    append_key(key(index if index < insert_cursor else index % insert_cursor))
                    append_value(empty)
                    append_length(1 + randrange(max_scan))
            yield RequestBatch(kinds, keys, values, lengths)

    # ------------------------------------------------------------------
    # Phases (per-op form: adapters over the batches)
    # ------------------------------------------------------------------
    def load_stream(self) -> Iterator[Request]:
        """Per-op view of :meth:`load_batches` (identical sequence)."""
        for batch in self.load_batches():
            yield from batch.requests()

    def warmup_stream(self) -> Iterator[Request]:
        """Per-op view of :meth:`warmup_batches` (identical sequence)."""
        for batch in self.warmup_batches():
            yield from batch.requests()

    def run_stream(self) -> Iterator[Request]:
        """Per-op view of :meth:`run_batches` (identical sequence)."""
        for batch in self.run_batches():
            yield from batch.requests()

    @staticmethod
    def _bounded(index: int, limit: int) -> int:
        """Clamp generator output to keys that exist (inserts grow it)."""
        return index if index < limit else index % limit

    def total_data_bytes(self) -> int:
        """Approximate serialized size of the loaded data set."""
        key_bytes = len(self.key(0))
        # Record framing overhead: header (15 B) per entry.
        return self.config.record_count * (key_bytes + self.config.value_bytes + 15)
