"""Trace-driven workloads: record and replay request streams.

The paper's Fig. 4 profile derives from RocksDB *production traces* we do
not have; synthetic YCSB streams stand in for them (DESIGN.md). This
module closes the loop for users who *do* have traces: any request
stream can be serialized to a compact line-oriented text format and
replayed later — against a different system, scale, or configuration —
with byte-identical traffic.

Format: one request per line, tab-separated::

    READ\t<hex key>
    UPDATE\t<hex key>\t<hex value>
    INSERT\t<hex key>\t<hex value>
    SCAN\t<hex key>\t<length>
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import CorruptionError
from repro.workloads.ycsb import OpKind, Request


def dump_trace(requests: Iterable[Request], path: str | Path) -> int:
    """Write a request stream to ``path``; returns the request count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for request in requests:
            handle.write(format_request(request) + "\n")
            count += 1
    return count


def format_request(request: Request) -> str:
    """One request as a trace line."""
    key_hex = request.key.hex()
    if request.kind == OpKind.READ:
        return f"READ\t{key_hex}"
    if request.kind in (OpKind.UPDATE, OpKind.INSERT):
        return f"{request.kind.name}\t{key_hex}\t{request.value.hex()}"
    if request.kind == OpKind.SCAN:
        return f"SCAN\t{key_hex}\t{request.scan_length}"
    raise ValueError(f"unsupported request kind: {request.kind}")


def parse_request(line: str, line_number: int = 0) -> Request:
    """Parse one trace line back into a :class:`Request`."""
    parts = line.rstrip("\n").split("\t")
    where = f"trace line {line_number}"
    if not parts or not parts[0]:
        raise CorruptionError(f"{where}: empty record")
    kind_name = parts[0]
    try:
        kind = OpKind[kind_name]
    except KeyError as exc:
        raise CorruptionError(f"{where}: unknown op {kind_name!r}") from exc
    try:
        key = bytes.fromhex(parts[1])
    except (IndexError, ValueError) as exc:
        raise CorruptionError(f"{where}: bad key field") from exc
    if kind == OpKind.READ:
        if len(parts) != 2:
            raise CorruptionError(f"{where}: READ takes exactly one field")
        return Request(kind, key)
    if kind in (OpKind.UPDATE, OpKind.INSERT):
        if len(parts) != 3:
            raise CorruptionError(f"{where}: {kind_name} takes key and value")
        try:
            value = bytes.fromhex(parts[2])
        except ValueError as exc:
            raise CorruptionError(f"{where}: bad value field") from exc
        return Request(kind, key, value)
    if len(parts) != 3:
        raise CorruptionError(f"{where}: SCAN takes key and length")
    try:
        length = int(parts[2])
    except ValueError as exc:
        raise CorruptionError(f"{where}: bad scan length") from exc
    if length < 0:
        raise CorruptionError(f"{where}: negative scan length")
    return Request(kind, key, scan_length=length)


def load_trace(path: str | Path) -> Iterator[Request]:
    """Stream requests back from a trace file."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            if line.strip():
                yield parse_request(line, line_number)


class TraceWorkload:
    """A workload backed by trace files (drop-in for YCSBWorkload).

    ``load_path`` holds the initial data set (INSERT lines); ``run_path``
    the measured stream; an optional ``warmup_path`` is replayed
    unmeasured before the run, mirroring :class:`YCSBWorkload`'s phases.
    """

    def __init__(
        self,
        load_path: str | Path,
        run_path: str | Path,
        *,
        warmup_path: str | Path | None = None,
    ) -> None:
        self._load_path = Path(load_path)
        self._run_path = Path(run_path)
        self._warmup_path = Path(warmup_path) if warmup_path else None

    def load_stream(self) -> Iterator[Request]:
        return load_trace(self._load_path)

    def warmup_stream(self) -> Iterator[Request]:
        if self._warmup_path is None:
            return iter(())
        return load_trace(self._warmup_path)

    def run_stream(self) -> Iterator[Request]:
        return load_trace(self._run_path)

    def total_data_bytes(self) -> int:
        """Serialized size estimate of the load phase (record framing incl.)."""
        total = 0
        for request in self.load_stream():
            total += len(request.key) + len(request.value) + 15
        return total
