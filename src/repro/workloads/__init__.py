"""YCSB-style workload generators."""

from repro.workloads.trace import TraceWorkload, dump_trace, load_trace
from repro.workloads.ycsb import OpKind, Request, YCSBConfig, YCSBWorkload
from repro.workloads.zipfian import (
    KeyIndexGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_generator,
)

__all__ = [
    "TraceWorkload",
    "dump_trace",
    "load_trace",
    "OpKind",
    "Request",
    "YCSBConfig",
    "YCSBWorkload",
    "KeyIndexGenerator",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "make_generator",
]
