"""YCSB-style workload generators."""

from repro.workloads.interning import KeyInterner
from repro.workloads.trace import TraceWorkload, dump_trace, load_trace
from repro.workloads.ycsb import (
    OpKind,
    Request,
    RequestBatch,
    YCSBConfig,
    YCSBWorkload,
    batches_from_requests,
)
from repro.workloads.zipfian import (
    KeyIndexGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_generator,
)

__all__ = [
    "KeyInterner",
    "TraceWorkload",
    "dump_trace",
    "load_trace",
    "OpKind",
    "Request",
    "RequestBatch",
    "YCSBConfig",
    "YCSBWorkload",
    "batches_from_requests",
    "KeyIndexGenerator",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "make_generator",
]
