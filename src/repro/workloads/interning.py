"""Key interning: one bytes object (and one dense int) per distinct key.

The workload generators draw the same hot keys over and over — a zipfian
0.99 run of 10^6 requests touches a few thousand keys for the bulk of its
traffic — yet the stream formerly re-formatted and re-encoded
``"user%012d" % index`` for every draw. Interning memoizes index ->
key-bytes so each distinct key is built exactly once and every later
occurrence is the *same* ``bytes`` object.

Identity-stable keys speed up the whole engine, not just generation:
CPython caches a ``bytes`` object's hash in-object, so memtable / row
cache / tracker dict operations hash each hot key once for the life of
the run, and equality checks on dict probes short-circuit on pointer
identity. The wire format is untouched — blocks still store the raw key
bytes — which is what keeps simulated results bit-identical.

``id_for`` additionally exposes a dense ``0..n-1`` int per distinct key
(assigned in first-seen order), for callers that want array-indexed
per-key state instead of a dict keyed by bytes.
"""

from __future__ import annotations


class KeyInterner:
    """Memoizes ``index -> key bytes`` for one fixed key format.

    ``max_size`` bounds the memo so a huge uniformly-distributed keyspace
    cannot hold every key alive: past the cap, misses fall back to
    formatting on the fly (correct, just not identity-stable).
    """

    __slots__ = ("_format", "_by_index", "_ids", "max_size")

    def __init__(self, fmt: str = "user%012d", max_size: int = 1 << 21) -> None:
        if max_size <= 0:
            raise ValueError(f"max_size must be positive: {max_size}")
        self._format = fmt
        self._by_index: dict[int, bytes] = {}
        self._ids: dict[bytes, int] = {}
        self.max_size = max_size

    def __len__(self) -> int:
        return len(self._by_index)

    def key(self, index: int) -> bytes:
        """The canonical bytes object for key ``index``."""
        table = self._by_index
        cached = table.get(index)
        if cached is None:
            cached = (self._format % index).encode("ascii")
            if len(table) < self.max_size:
                table[index] = cached
        return cached

    def id_for(self, key: bytes) -> int:
        """A dense int id for ``key``, assigned in first-seen order."""
        ids = self._ids
        dense = ids.get(key)
        if dense is None:
            dense = ids[key] = len(ids)
        return dense
