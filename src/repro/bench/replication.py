"""Replicated runs: mean/spread across seeds.

Single simulated runs are deterministic given a seed; replication across
seeds quantifies how sensitive a comparison is to workload randomness
(key scrambling, operation interleaving, coin flips). Useful when a
measured gap is small enough to question.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dataclass_replace

from repro.bench.harness import RunResult, SystemConfig, run_experiment
from repro.errors import ConfigError
from repro.workloads.ycsb import YCSBConfig


@dataclass(frozen=True)
class Replicated:
    """Summary of one metric across replicas."""

    metric: str
    mean: float
    stdev: float
    minimum: float
    maximum: float
    samples: tuple[float, ...]

    @property
    def spread_fraction(self) -> float:
        """(max - min) / mean; 0 when the metric is constant."""
        if self.mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.mean


def _summarize(metric: str, values: list[float]) -> Replicated:
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n if n > 1 else 0.0
    return Replicated(
        metric=metric,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        samples=tuple(values),
    )


def run_replicated(
    config: SystemConfig,
    workload_config: YCSBConfig,
    *,
    seeds: tuple[int, ...] = (1, 2, 3),
) -> dict[str, Replicated]:
    """Run the experiment once per seed; summarize the key metrics.

    Both the workload seed and the system seed vary together so replicas
    are fully independent. Returns summaries for throughput and the
    read-latency mean/p99.
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    results: list[RunResult] = []
    for seed in seeds:
        seeded_config = dataclass_replace(config, seed=seed)
        seeded_workload = dataclass_replace(workload_config, seed=seed)
        results.append(run_experiment(seeded_config, seeded_workload))
    return {
        "throughput_kops": _summarize(
            "throughput_kops", [r.throughput_kops for r in results]
        ),
        "read_mean_usec": _summarize(
            "read_mean_usec", [r.read_latency.mean for r in results]
        ),
        "read_p99_usec": _summarize(
            "read_p99_usec", [r.read_latency.p99 for r in results]
        ),
        "write_amplification": _summarize(
            "write_amplification", [r.write_amplification for r in results]
        ),
    }
