"""Binary codec for run artifacts on the fleet's worker<->router boundary.

Worker processes hand their shard's :class:`~repro.bench.harness.RunResult`
back to the router. Shipping it as a ``to_json()`` dict makes ``pickle``
walk (and the router re-walk) tens of thousands of Python objects per
shard — timeline arrays, histogram buckets, metric series. This module
flattens the same tree into one length-prefixed byte string once, on the
worker side; the pool then moves a single ``bytes`` object and the
router decodes it straight back.

The contract that makes this safe to put under the determinism tests:

    ``decode_tree(encode_tree(tree)) == tree``  — exactly, for every
    JSON-safe tree (``None``/``bool``/``int``/``float``/``str``/``list``/
    ``dict`` with string keys). Types round-trip (``1`` never comes back
    as ``1.0``, ``True`` never as ``1``), floats round-trip bit-for-bit
    (IEEE-754 via ``struct``), and dict insertion order is preserved.

So ``decode_result(encode_result(r))`` rebuilds a result whose
``to_json()`` tree — and therefore whose JSON artifact bytes — are
identical to the original's, and the fleet digests cannot tell the
binary boundary from the old dict hand-off.

Wire format: ``MAGIC`` + version byte + one value. Every value is a
1-byte tag followed by its payload; variable-size payloads carry a u32
length/count prefix (hence "length-prefixed"). Two array tags pack
homogeneous numeric lists — the bulk of a timeline — as raw ``struct``
arrays instead of per-element tagged values.
"""

from __future__ import annotations

from struct import Struct, error as StructError

from repro.errors import CorruptionError

#: Artifact framing: magic + 1-byte wire version.
MAGIC = b"RBC1"
VERSION = 1

# Value tags. Order matters to nobody but the decoder's dispatch; the
# numbers are frozen by VERSION.
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3  # <q  (int64)
_T_FLOAT = 4  # <d  (IEEE-754 binary64: exact round-trip)
_T_STR = 5  # u32 byte length + UTF-8
_T_LIST = 6  # u32 count + tagged items
_T_DICT = 7  # u32 count + (str key, tagged value) pairs, insertion order
_T_FLOAT_ARRAY = 8  # u32 count + <{n}d  (list of only floats)
_T_INT_ARRAY = 9  # u32 count + <{n}q  (list of only int64s)
_T_BIGINT = 10  # u32 byte length + ASCII decimal (ints beyond int64)

_U32 = Struct("<I")
_I64 = Struct("<q")
_F64 = Struct("<d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_HEADER = MAGIC + bytes([VERSION])


def encode_tree(tree) -> bytes:
    """Encode one JSON-safe tree (no framing header; see :func:`encode_result`)."""
    out = bytearray()
    _encode_value(tree, out)
    return bytes(out)


def _encode_value(value, out: bytearray) -> None:
    # bool first: bool is a subclass of int, and the whole point is that
    # True must come back as True, not 1.
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            out += _I64.pack(value)
        else:
            text = str(value).encode("ascii")
            out.append(_T_BIGINT)
            out += _U32.pack(len(text))
            out += text
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif type(value) is str:
        data = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(data))
        out += data
    elif type(value) is list:
        n = len(value)
        # Homogeneous numeric lists (timeline columns, histogram bucket
        # counts) pack as one struct array: no per-element tag bytes and
        # no per-element Python dispatch on either side.
        if n:
            kinds = {type(item) for item in value}
            if kinds == {float}:
                out.append(_T_FLOAT_ARRAY)
                out += _U32.pack(n)
                out += Struct(f"<{n}d").pack(*value)
                return
            if kinds == {int} and all(
                _INT64_MIN <= item <= _INT64_MAX for item in value
            ):
                out.append(_T_INT_ARRAY)
                out += _U32.pack(n)
                out += Struct(f"<{n}q").pack(*value)
                return
        out.append(_T_LIST)
        out += _U32.pack(n)
        for item in value:
            _encode_value(item, out)
    elif type(value) is dict:
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise TypeError(
                    f"codec dict keys must be str, got {type(key).__name__}"
                )
            data = key.encode("utf-8")
            out += _U32.pack(len(data))
            out += data
            _encode_value(item, out)
    else:
        raise TypeError(f"codec cannot encode {type(value).__name__}")


def decode_tree(buf: bytes | memoryview):
    """Decode one tree previously produced by :func:`encode_tree`."""
    view = memoryview(buf)
    value, offset = _decode_value(view, 0)
    if offset != len(view):
        raise CorruptionError(
            f"trailing bytes after encoded tree: {len(view) - offset}"
        )
    return value


def _decode_value(view: memoryview, offset: int):
    try:
        tag = view[offset]
    except IndexError:
        raise CorruptionError("truncated encoded tree") from None
    offset += 1
    try:
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            return _I64.unpack_from(view, offset)[0], offset + 8
        if tag == _T_FLOAT:
            return _F64.unpack_from(view, offset)[0], offset + 8
        if tag == _T_STR:
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            end = offset + length
            if end > len(view):
                raise CorruptionError("truncated string payload")
            return str(view[offset:end], "utf-8"), end
        if tag == _T_LIST:
            (count,) = _U32.unpack_from(view, offset)
            offset += 4
            items = []
            append = items.append
            for _ in range(count):
                item, offset = _decode_value(view, offset)
                append(item)
            return items, offset
        if tag == _T_DICT:
            (count,) = _U32.unpack_from(view, offset)
            offset += 4
            out = {}
            for _ in range(count):
                (length,) = _U32.unpack_from(view, offset)
                offset += 4
                end = offset + length
                if end > len(view):
                    raise CorruptionError("truncated dict key")
                key = str(view[offset:end], "utf-8")
                out[key], offset = _decode_value(view, end)
            return out, offset
        if tag == _T_FLOAT_ARRAY:
            (count,) = _U32.unpack_from(view, offset)
            offset += 4
            end = offset + 8 * count
            if end > len(view):
                raise CorruptionError("truncated float array")
            return list(Struct(f"<{count}d").unpack_from(view, offset)), end
        if tag == _T_INT_ARRAY:
            (count,) = _U32.unpack_from(view, offset)
            offset += 4
            end = offset + 8 * count
            if end > len(view):
                raise CorruptionError("truncated int array")
            return list(Struct(f"<{count}q").unpack_from(view, offset)), end
        if tag == _T_BIGINT:
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            end = offset + length
            if end > len(view):
                raise CorruptionError("truncated bigint payload")
            return int(str(view[offset:end], "ascii")), end
    except CorruptionError:
        raise
    except (StructError, ValueError, UnicodeDecodeError) as exc:
        # struct.error on short unpack_from, bad UTF-8/decimal payloads.
        raise CorruptionError(f"corrupt encoded tree: {exc}") from exc
    raise CorruptionError(f"unknown value tag {tag}")


def encode_result(result) -> bytes:
    """Serialize a :class:`~repro.bench.harness.RunResult` for IPC."""
    return _HEADER + encode_tree(result.to_json())


def decode_result(buf: bytes):
    """Rebuild a :class:`~repro.bench.harness.RunResult` from :func:`encode_result`."""
    from repro.bench.harness import RunResult

    if len(buf) < len(_HEADER) or buf[: len(MAGIC)] != MAGIC:
        raise CorruptionError("not an encoded run artifact (bad magic)")
    version = buf[len(MAGIC)]
    if version != VERSION:
        raise CorruptionError(
            f"unsupported artifact wire version {version} (this build reads {VERSION})"
        )
    return RunResult.from_json(decode_tree(memoryview(buf)[len(_HEADER) :]))
