"""``repro.bench explain``: render and diff per-request latency provenance.

One artifact renders its attribution table — per op type and percentile
band, which (component, tier) buckets the latency went to. Two artifacts
diff one band of one op type and decompose the latency delta into
per-component contributions, the "p99 delta is 83% flash block reads"
answer a regression hunt needs (see docs/OBSERVABILITY.md for a worked
example).

Artifacts must be schema-2 (saved with ``report --save --attribution``);
schema-1 artifacts and runs recorded without attribution exit 2 with an
upgrade hint rather than a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import RunResult
from repro.bench.reporting import format_experiment
from repro.errors import ReproError
from repro.obs.attribution import (
    BAND_LABELS,
    BANDS,
    attribution_table,
    diff_attribution,
)

#: Hint printed when an artifact cannot feed ``explain``.
_UPGRADE_HINT = (
    "re-run with `repro.bench report --save FILE --attribution` to record "
    "per-request attribution"
)


def _load_attribution(path: str) -> dict | None:
    """The artifact's attribution block, or None (with a hint) if absent."""
    result = RunResult.load(path)
    if result.schema_version < 2 or not result.attribution:
        print(
            f"error: artifact {path} (schema v{result.schema_version}) has no "
            f"attribution data; {_UPGRADE_HINT}",
            file=sys.stderr,
        )
        return None
    return result.attribution


def _explain_one(path: str, data: dict, args: argparse.Namespace) -> int:
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    headers, rows = attribution_table(data, top=args.top)
    if not rows:
        print(f"error: artifact {path} attributed no operations", file=sys.stderr)
        return 2
    sampled = data.get("ops_sampled", 0)
    offered = data.get("ops_offered", 0)
    notes = (
        f"{sampled} of {offered} ops sampled "
        f"(1 in {data.get('sample_every', 1)}); "
        f"{len(data.get('slow_ops', []))} slow ops retained"
    )
    print(format_experiment(f"Latency attribution: {path}", headers, rows, notes=notes))
    return 0


def _explain_diff(paths: list[str], blocks: list[dict], args: argparse.Namespace) -> int:
    diff = diff_attribution(blocks[0], blocks[1], op=args.op, band=args.band)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
        return 0
    if diff["baseline_ops"] <= 0 or diff["candidate_ops"] <= 0:
        print(
            f"error: no {args.op!r} ops attributed in one of the artifacts",
            file=sys.stderr,
        )
        return 2
    headers = ["component/tier", "baseline us/op", "candidate us/op", "delta", "share"]
    contributors = diff["contributors"]
    if args.top > 0:
        contributors = contributors[: args.top]
    rows = [
        [
            c["key"],
            f"{c['baseline_usec']:.2f}",
            f"{c['candidate_usec']:.2f}",
            f"{c['delta_usec']:+.2f}",
            f"{c['share']:+6.1%}",
        ]
        for c in contributors
    ]
    band_label = BAND_LABELS[args.band]
    lead = contributors[0] if contributors else None
    notes = (
        f"{args.op} {band_label}: {diff['baseline_usec']:.1f} -> "
        f"{diff['candidate_usec']:.1f} us/op "
        f"({diff['delta_usec']:+.1f} us/op); "
        f"{diff['explained_fraction']:.1%} of the delta is explained by the "
        f"components above"
    )
    if lead is not None and diff["delta_usec"]:
        notes += (
            f"\n{abs(lead['share']):.0%} of the {band_label} delta is "
            f"{lead['key']}"
        )
    print(
        format_experiment(
            f"Attribution diff: {paths[0]} (baseline) vs {paths[1]} (candidate)",
            headers,
            rows,
            notes=notes,
        )
    )
    return 0


def run_explain(args: argparse.Namespace) -> int:
    if len(args.artifacts) not in (1, 2):
        print("error: explain takes one or two artifacts", file=sys.stderr)
        return 2
    blocks = []
    for path in args.artifacts:
        data = _load_attribution(path)
        if data is None:
            return 2
        blocks.append(data)
    if len(blocks) == 1:
        return _explain_one(args.artifacts[0], blocks[0], args)
    return _explain_diff(args.artifacts, blocks, args)


def add_explain_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="ARTIFACT",
        help="one artifact to render, or baseline + candidate to diff",
    )
    parser.add_argument(
        "--op",
        default="read",
        help="op type to diff between two artifacts (default: read)",
    )
    parser.add_argument(
        "--band",
        default="p99",
        choices=BANDS,
        help="percentile band to diff (default: p99)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="limit each band/diff to its N largest components (default: all)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw attribution block / diff as JSON",
    )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench explain",
        description="Render or diff per-request latency attribution.",
    )
    add_explain_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_explain(args)
    except (ReproError, ValueError, OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
