"""Benchmark harness: system builders, the closed-loop runner, experiments."""

from repro.bench.harness import (
    RunResult,
    SystemConfig,
    WorkloadRunner,
    build_system,
    run_experiment,
)
from repro.bench.replication import Replicated, run_replicated
from repro.bench.reporting import format_experiment, format_table

__all__ = [
    "RunResult",
    "SystemConfig",
    "WorkloadRunner",
    "build_system",
    "run_experiment",
    "Replicated",
    "run_replicated",
    "format_experiment",
    "format_table",
]
