"""Command-line entry point: experiments, reports, timelines, comparisons.

Usage::

    python -m repro.bench list                      # catalogue + subcommands
    python -m repro.bench run table1 fig4 table3    # analytic, fast
    python -m repro.bench run fig9a --profile       # + cProfile hot spots
    python -m repro.bench fig9a                     # legacy form still works
    python -m repro.bench report --metrics          # registry-driven report
    python -m repro.bench report --save run.json    # persist a run artifact
    python -m repro.bench timeline --series throughput_kops
    python -m repro.bench compare a.json b.json --tolerance 5
    python -m repro.bench explain run.json         # latency attribution table
    python -m repro.bench explain a.json b.json    # decompose the p99 delta
    python -m repro.bench micro --quick             # wall-clock primitives
    python -m repro.bench sweep --out results/sweep # compaction design space
    REPRO_BENCH_SCALE=quick python -m repro.bench run all

Exit codes: 0 on success, 1 when ``compare`` finds a regression beyond
tolerance, 2 on usage errors / unknown experiments.

Installed as the ``repro-bench`` console script (see pyproject.toml).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import experiments as exp
from repro.bench.reporting import (
    format_experiment,
    render_timeline_sparklines,
    render_timeline_table,
    timeline_to_csv,
)

#: name -> (title, callable, needs_runner)
EXPERIMENTS = {
    "table1": ("Table 1: storage technology characteristics", exp.table1_devices, False),
    "fig2a": ("Figure 2a: RocksDB throughput by storage configuration", exp.fig2a_rocksdb_storage, True),
    "fig3": ("Figure 3: writes and reads across levels", exp.fig3_level_distribution, True),
    "table2": ("Table 2: point reads by level, cache disabled", exp.table2_read_levels, True),
    "fig4": ("Figure 4: cost vs latency, all 243 configurations", exp.fig4_cost_latency, False),
    "table3": ("Table 3: storage costs", exp.table3_storage_costs, False),
    "fig6": ("Figure 6: CLOCK distribution convergence", exp.fig6_clock_distribution, False),
    "fig9a": ("Figure 9a: throughput by system and configuration", exp.fig9a_throughput, True),
    "fig9b": ("Figure 9b: throughput vs read/update mix", exp.fig9b_throughput_mixes, True),
    "fig10ab": ("Figure 10a/b: latency percentiles", exp.fig10ab_latencies, True),
    "fig10cd": ("Figure 10c/d: average latencies vs mix", exp.fig10cd_latency_mixes, True),
    "fig11": ("Figure 11: request distributions", exp.fig11_distributions, True),
    "table4": ("Table 4: block cache hit rates", exp.table4_hit_rates, True),
    "fig12": ("Figure 12: I/O and write amplification", exp.fig12_io_amplification, True),
    "fig13": ("Figure 13: throughput without DRAM caching", exp.fig13_no_cache, True),
    "fig14": ("Figure 14: pinning threshold sweep", exp.fig14_pinning_threshold, True),
    "ablation-components": ("Ablation: PrismDB mechanisms", exp.ablation_components, True),
    "ablation-tracker": ("Ablation: tracker CLOCK bits", exp.ablation_tracker_params, True),
    "ext-latency-breakdown": ("Extension: read latency by serving source", exp.ext_latency_breakdown, True),
    "ext-caching-granularity": ("Extension: block vs object caching (§3.3)", exp.ext_caching_granularity, True),
    "ext-scan-workload": ("Extension: scan-heavy workload", exp.ext_scan_workload, True),
    "ext-design-space": ("Extension: compaction design space (shape x mix)", exp.ext_design_space, True),
}

#: Default series plotted by ``timeline`` when --series is not given.
DEFAULT_TIMELINE_SERIES = (
    "throughput_kops",
    "read_p99_usec",
    "cache.hit_rate",
    "memtable.bytes",
    "l0.files",
)

SUBCOMMANDS = ("run", "report", "timeline", "compare", "explain", "micro", "sweep", "fleet", "list")


def _print_listing() -> None:
    print(__doc__)
    print("Available experiments:")
    for name, (title, _, needs_runner) in EXPERIMENTS.items():
        kind = "simulation" if needs_runner else "analytic"
        print(f"  {name:22s} {title} [{kind}]")
    print("  report                 Registry-driven run report"
          " (see --help) [simulation]")
    print("  timeline               Time-series view of one run"
          " (see --help) [simulation]")
    print("  compare                Regression-gated diff of two run artifacts")
    print("  explain                Per-request latency attribution: render one"
          " artifact or diff two")
    print("  sweep                  Compaction design-space grid"
          " (shapes x mixes x layouts) [simulation]")
    print("  fleet                  Sharded fleet: consistent-hash router,"
          " shared device pool, --jobs fan-out [simulation]")


# ----------------------------------------------------------------------
# Subcommand handlers
# ----------------------------------------------------------------------
def _cmd_list(_args: argparse.Namespace) -> int:
    _print_listing()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if not args.names:
        _print_listing()
        return 0
    names = list(EXPERIMENTS) if args.names == ["all"] else args.names
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    def execute() -> None:
        runner = exp.shared_runner()
        for name in names:
            title, func, needs_runner = EXPERIMENTS[name]
            headers, rows = func(runner) if needs_runner else func()
            print(format_experiment(title, headers, rows))

    if not args.profile:
        execute()
        return 0
    # Profile the whole batch (simulation included) and append the top
    # functions by cumulative wall time — the view that surfaces which
    # simulator layer a slow experiment actually spends its time in.
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        execute()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    print(f"\n--- cProfile: top {args.profile_limit} by cumulative time ---")
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.profile_limit)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.report import run_report

    return run_report(args)


def _timeline_from_args(args: argparse.Namespace) -> dict:
    """Load a saved artifact's timeline or run a fresh sampled workload."""
    if args.artifact:
        from repro.bench.harness import RunResult

        result = RunResult.load(args.artifact)
        if not result.timeline:
            raise ValueError(
                f"artifact {args.artifact} has no timeline; re-run with "
                f"`report --save --sample-interval-ms N`"
            )
        return result.timeline
    from repro.bench.harness import SystemConfig, WorkloadRunner, build_system
    from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

    workload_config = YCSBConfig.read_update(
        args.read_pct,
        record_count=args.records,
        operation_count=args.ops,
        seed=args.seed,
    )
    system_config = SystemConfig(
        system=args.system, layout_code=args.layout, seed=args.seed
    )
    workload = YCSBWorkload(workload_config)
    db = build_system(system_config, workload)
    runner = WorkloadRunner(
        db,
        clients=system_config.clients,
        sample_interval_ms=args.interval_ms,
        timeline_capacity=args.buffer,
    )
    runner.load(workload)
    elapsed = runner.run(workload)
    result = runner.result(
        f"{args.system}/{args.layout}", system_config, elapsed
    )
    if args.save:
        result.save(args.save)
        print(f"saved run artifact to {args.save}", file=sys.stderr)
    return result.timeline


def _cmd_timeline(args: argparse.Namespace) -> int:
    timeline = _timeline_from_args(args)
    available = sorted(timeline.get("series", {}))
    if args.list_series:
        for name in available:
            print(name)
        return 0
    names = args.series or [
        name for name in DEFAULT_TIMELINE_SERIES if name in timeline["series"]
    ]
    unknown = [name for name in names if name not in timeline.get("series", {})]
    if unknown:
        print(
            f"unknown series: {', '.join(unknown)}\n"
            f"available: {', '.join(available)}",
            file=sys.stderr,
        )
        return 2
    if args.format == "sparkline":
        rendered = render_timeline_sparklines(timeline, names)
    elif args.format == "table":
        rendered = render_timeline_table(timeline, names)
    elif args.format == "csv":
        rendered = timeline_to_csv(timeline, names)
    else:  # json
        rendered = json.dumps(timeline, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"wrote {args.format} timeline to {args.out}")
    else:
        print(rendered)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.compare import run_compare

    return run_compare(args)


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.bench.explain import run_explain

    return run_explain(args)


def _cmd_micro(args: argparse.Namespace) -> int:
    from repro.bench.micro import run_micro_command

    return run_micro_command(args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.sweep import run_sweep

    return run_sweep(args)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.cli import run_fleet_command

    return run_fleet_command(args)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from repro.bench.compare import add_compare_arguments
    from repro.bench.micro import add_micro_arguments
    from repro.bench.report import add_report_arguments, add_workload_arguments

    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate paper artifacts and inspect runs.",
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    run_p = sub.add_parser(
        "run", help="run experiments by name ('all' for every one)"
    )
    run_p.add_argument("names", nargs="*", metavar="EXPERIMENT",
                       help="experiment names (see `list`); 'all' runs everything")
    run_p.add_argument("--profile", action="store_true",
                       help="wrap the run in cProfile and print hot functions")
    run_p.add_argument("--profile-limit", type=int, default=25, metavar="N",
                       help="profile rows to print (default: 25)")
    run_p.set_defaults(func=_cmd_run)

    list_p = sub.add_parser("list", help="list experiments and subcommands")
    list_p.set_defaults(func=_cmd_list)

    report_p = sub.add_parser(
        "report", help="run one workload and report from the metrics registry"
    )
    add_report_arguments(report_p)
    report_p.set_defaults(func=_cmd_report)

    timeline_p = sub.add_parser(
        "timeline",
        help="sample a run's registry into time series and render them",
    )
    add_workload_arguments(timeline_p)
    timeline_p.add_argument("--artifact", metavar="FILE", default=None,
                            help="render a saved run artifact instead of running")
    timeline_p.add_argument("--series", action="append", metavar="NAME",
                            help="series to render (repeatable; default: a "
                                 "standard set)")
    timeline_p.add_argument("--list-series", action="store_true",
                            help="print available series names and exit")
    timeline_p.add_argument("--format", default="sparkline",
                            choices=("sparkline", "table", "csv", "json"))
    timeline_p.add_argument("--interval-ms", type=float, default=10.0,
                            help="sampling interval in simulated ms (default: 10)")
    timeline_p.add_argument("--buffer", type=int, default=4096,
                            help="ring-buffer capacity in samples (default: 4096)")
    timeline_p.add_argument("--out", metavar="FILE", default=None,
                            help="write the rendering here instead of stdout")
    timeline_p.add_argument("--save", metavar="FILE", default=None,
                            help="also persist the fresh run as a JSON artifact")
    timeline_p.set_defaults(func=_cmd_timeline)

    compare_p = sub.add_parser(
        "compare",
        help="diff two run artifacts; exit 1 on regression beyond tolerance",
    )
    add_compare_arguments(compare_p)
    compare_p.set_defaults(func=_cmd_compare)

    from repro.bench.explain import add_explain_arguments

    explain_p = sub.add_parser(
        "explain",
        help="render one artifact's latency attribution or diff two",
    )
    add_explain_arguments(explain_p)
    explain_p.set_defaults(func=_cmd_explain)

    micro_p = sub.add_parser(
        "micro",
        help="wall-clock microbenchmarks of simulator hot-path primitives",
    )
    add_micro_arguments(micro_p)
    micro_p.set_defaults(func=_cmd_micro)

    from repro.bench.sweep import add_sweep_arguments

    sweep_p = sub.add_parser(
        "sweep",
        help="compaction design-space grid: shapes x mixes x layouts, "
             "who-wins-where table + per-cell artifacts",
    )
    add_sweep_arguments(sweep_p)
    sweep_p.set_defaults(func=_cmd_sweep)

    from repro.fleet.cli import add_fleet_arguments

    fleet_p = sub.add_parser(
        "fleet",
        help="sharded fleet: consistent-hash router, shared device pool, "
             "multiprocessing fan-out (--jobs), merged artifact",
    )
    add_fleet_arguments(fleet_p)
    fleet_p.set_defaults(func=_cmd_fleet)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        _print_listing()
        return 0
    # Legacy invocation forms: bare experiment names (and "all") predate
    # the subcommands and must keep working.
    if args[0] not in SUBCOMMANDS and not args[0].startswith("-"):
        args = ["run"] + args
    parser = build_parser()
    try:
        namespace = parser.parse_args(args)
    except SystemExit as exc:  # argparse exits on --help (0) and usage (2)
        code = exc.code
        return code if isinstance(code, int) else 2
    if getattr(namespace, "func", None) is None:
        _print_listing()
        return 0
    from repro.errors import ReproError

    try:
        return namespace.func(namespace)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
