"""Command-line entry point: regenerate paper artifacts.

Usage::

    python -m repro.bench list
    python -m repro.bench table1 fig4 table3        # analytic, fast
    python -m repro.bench fig9a                     # runs simulations
    python -m repro.bench report --metrics          # registry-driven report
    REPRO_BENCH_SCALE=quick python -m repro.bench all
"""

from __future__ import annotations

import sys

from repro.bench import experiments as exp
from repro.bench.reporting import format_experiment

#: name -> (title, callable, needs_runner)
EXPERIMENTS = {
    "table1": ("Table 1: storage technology characteristics", exp.table1_devices, False),
    "fig2a": ("Figure 2a: RocksDB throughput by storage configuration", exp.fig2a_rocksdb_storage, True),
    "fig3": ("Figure 3: writes and reads across levels", exp.fig3_level_distribution, True),
    "table2": ("Table 2: point reads by level, cache disabled", exp.table2_read_levels, True),
    "fig4": ("Figure 4: cost vs latency, all 243 configurations", exp.fig4_cost_latency, False),
    "table3": ("Table 3: storage costs", exp.table3_storage_costs, False),
    "fig6": ("Figure 6: CLOCK distribution convergence", exp.fig6_clock_distribution, False),
    "fig9a": ("Figure 9a: throughput by system and configuration", exp.fig9a_throughput, True),
    "fig9b": ("Figure 9b: throughput vs read/update mix", exp.fig9b_throughput_mixes, True),
    "fig10ab": ("Figure 10a/b: latency percentiles", exp.fig10ab_latencies, True),
    "fig10cd": ("Figure 10c/d: average latencies vs mix", exp.fig10cd_latency_mixes, True),
    "fig11": ("Figure 11: request distributions", exp.fig11_distributions, True),
    "table4": ("Table 4: block cache hit rates", exp.table4_hit_rates, True),
    "fig12": ("Figure 12: I/O and write amplification", exp.fig12_io_amplification, True),
    "fig13": ("Figure 13: throughput without DRAM caching", exp.fig13_no_cache, True),
    "fig14": ("Figure 14: pinning threshold sweep", exp.fig14_pinning_threshold, True),
    "ablation-components": ("Ablation: PrismDB mechanisms", exp.ablation_components, True),
    "ablation-tracker": ("Ablation: tracker CLOCK bits", exp.ablation_tracker_params, True),
    "ext-latency-breakdown": ("Extension: read latency by serving source", exp.ext_latency_breakdown, True),
    "ext-caching-granularity": ("Extension: block vs object caching (§3.3)", exp.ext_caching_granularity, True),
    "ext-scan-workload": ("Extension: scan-heavy workload", exp.ext_scan_workload, True),
}


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "report":
        from repro.bench.report import main as report_main

        return report_main(args[1:])
    if not args or args == ["list"] or "-h" in args or "--help" in args:
        print(__doc__)
        print("Available experiments:")
        for name, (title, _, needs_runner) in EXPERIMENTS.items():
            kind = "simulation" if needs_runner else "analytic"
            print(f"  {name:22s} {title} [{kind}]")
        print("  report                 Registry-driven run report"
              " (see --help) [simulation]")
        return 0
    names = list(EXPERIMENTS) if args == ["all"] else args
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    runner = exp.shared_runner()
    for name in names:
        title, func, needs_runner = EXPERIMENTS[name]
        headers, rows = func(runner) if needs_runner else func()
        print(format_experiment(title, headers, rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
