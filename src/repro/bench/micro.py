"""Wall-clock microbenchmarks for the simulator's hot primitives.

Everything else in ``repro.bench`` reports *simulated* time; this module
is the one place that measures *real* wall-clock, because the
simulator's usefulness depends on how fast it turns the crank. Each
benchmark isolates one primitive that profiling showed on the hot path —
block decode/search, bloom add/probe, skiplist insert/seek, the
compaction merge, zipfian sampling, metrics counter updates — plus one
end-to-end smoke workload measured in operations per wall second.

Methodology: every benchmark is a closure performing ``n`` inner
operations per call. The harness runs one warmup call (JIT-free Python
still benefits: allocator warm, branch caches, lazily built tables),
then ``repeats`` timed calls, and reports the *best* repetition — the
standard way to strip scheduler noise from a single-threaded benchmark —
alongside the median for honesty about variance.

Usage::

    python -m repro.bench micro                 # full suite
    python -m repro.bench micro --quick         # CI-sized, a few seconds
    python -m repro.bench micro --filter bloom  # substring selection
    python -m repro.bench micro --json out.json # machine-readable dump
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Callable

#: (inner ops per repetition, timed repetitions) by scale.
_SCALES = {
    "full": (20_000, 5),
    "quick": (2_000, 3),
}

#: Benchmarks too heavy to run at the standard inner-op count get a
#: divisor; e2e runs a whole workload per "op" batch.
_HEAVY_DIVISOR = 10


@dataclass
class MicroResult:
    """One benchmark's timing: best/median ns per op across repetitions."""

    name: str
    inner_ops: int
    repeats: int
    best_ns: float
    median_ns: float

    @property
    def ops_per_sec(self) -> float:
        return 1e9 / self.best_ns if self.best_ns > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "inner_ops": self.inner_ops,
            "repeats": self.repeats,
            "best_ns_per_op": self.best_ns,
            "median_ns_per_op": self.median_ns,
            "ops_per_sec": self.ops_per_sec,
        }


def _time_one(op: Callable[[int], int | None], n: int, repeats: int) -> tuple[float, float]:
    """Run ``op(n)`` once warm then ``repeats`` timed; (best, median) ns/op.

    ``op`` may return the number of operations it actually performed
    (batch-granular benchmarks overshoot ``n``); ``None`` means exactly
    ``n``.
    """
    op(n)  # warmup
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        actual = op(n)
        elapsed = time.perf_counter() - start
        samples.append(elapsed * 1e9 / (actual if actual else n))
    samples.sort()
    return samples[0], samples[len(samples) // 2]


# ----------------------------------------------------------------------
# Benchmark factories. Each returns (callable(n), heavy) where the
# callable performs n inner operations; heavy benchmarks run at a
# reduced inner count. Setup cost stays outside the timed region.
# ----------------------------------------------------------------------
def _records(count: int, value_bytes: int = 64):
    from repro.lsm.record import Record, ValueKind

    return [
        Record(f"key{i:06d}".encode(), i + 1, ValueKind.PUT, b"v" * value_bytes)
        for i in range(count)
    ]


def _bench_block_build():
    from repro.lsm.block import DataBlockBuilder

    records = _records(40)

    def op(n: int) -> None:
        for _ in range(n):
            builder = DataBlockBuilder(1 << 20)
            for record in records:
                builder.add(record)
            builder.finish()

    return op, True


def _bench_block_decode():
    from repro.lsm.block import DataBlock, DataBlockBuilder

    records = _records(40)
    builder = DataBlockBuilder(1 << 20)
    for record in records:
        builder.add(record)
    buf = builder.finish()

    def op(n: int) -> None:
        for _ in range(n):
            DataBlock(buf).records()

    return op, True


def _bench_block_point_search():
    """The read path's unit of work: parse trailer, binary-search, decode one."""
    from repro.lsm.block import DataBlock, DataBlockBuilder

    records = _records(40)
    builder = DataBlockBuilder(1 << 20)
    for record in records:
        builder.add(record)
    buf = builder.finish()
    keys = [record.user_key for record in records]
    n_keys = len(keys)

    def op(n: int) -> None:
        for i in range(n):
            DataBlock(buf).search(keys[i % n_keys])

    return op, False


def _bench_bloom_add():
    from repro.lsm.bloom import BloomFilter

    keys = [f"bloomkey{i:07d}".encode() for i in range(10_000)]

    def op(n: int) -> None:
        done = 0
        while done < n:
            batch = keys[: min(n - done, len(keys))]
            BloomFilter.for_capacity(len(keys)).add_many(batch)
            done += len(batch)

    return op, False


def _bench_bloom_probe_hit():
    from repro.lsm.bloom import BloomFilter

    keys = [f"bloomkey{i:07d}".encode() for i in range(10_000)]
    bloom = BloomFilter.for_capacity(len(keys))
    bloom.add_many(keys)
    n_keys = len(keys)

    def op(n: int) -> None:
        may_contain = bloom.may_contain
        for i in range(n):
            may_contain(keys[i % n_keys])

    return op, False


def _bench_bloom_probe_miss():
    from repro.lsm.bloom import BloomFilter

    keys = [f"bloomkey{i:07d}".encode() for i in range(10_000)]
    bloom = BloomFilter.for_capacity(len(keys))
    bloom.add_many(keys)
    absent = [f"absentkey{i:07d}".encode() for i in range(10_000)]
    n_keys = len(absent)

    def op(n: int) -> None:
        may_contain = bloom.may_contain
        for i in range(n):
            may_contain(absent[i % n_keys])

    return op, False


def _bench_skiplist_insert():
    from repro.lsm.skiplist import SkipList

    keys = [f"sk{i:07d}".encode() for i in range(5_000)]

    def op(n: int) -> None:
        done = 0
        while done < n:
            skiplist = SkipList(seed=0)
            batch = min(n - done, len(keys))
            for i in range(batch):
                skiplist.insert(keys[i], i)
            done += batch

    return op, False


def _bench_skiplist_seek():
    from repro.lsm.skiplist import SkipList

    keys = [f"sk{i:07d}".encode() for i in range(5_000)]
    skiplist = SkipList(seed=0)
    for i, key in enumerate(keys):
        skiplist.insert(key, i)
    n_keys = len(keys)

    def op(n: int) -> None:
        get = skiplist.get
        for i in range(n):
            get(keys[i % n_keys])

    return op, False


def _bench_merge_records():
    """Compaction's merge: 4 pre-sorted runs through merge_records."""
    from repro.lsm.iterators import merge_records
    from repro.lsm.record import Record, ValueKind

    total = 10_000
    runs = [
        [
            Record(f"k{i:07d}".encode(), i + 1, ValueKind.PUT, b"v" * 16)
            for i in range(j, total, 4)
        ]
        for j in range(4)
    ]

    def op(n: int) -> int:
        done = 0
        while done < n:
            for record in merge_records(runs):
                pass
            done += total
        return done

    return op, True


def _bench_zipfian_sample():
    import random

    from repro.workloads.zipfian import ScrambledZipfianGenerator

    generator = ScrambledZipfianGenerator(100_000, 0.99, random.Random(0))

    def op(n: int) -> None:
        next_index = generator.next_index
        for _ in range(n):
            next_index()

    return op, False


def _bench_zipfian_setup():
    """Generator construction: dominated by the zeta sum before caching."""
    import random

    from repro.workloads import zipfian

    def op(n: int) -> None:
        for _ in range(n):
            zipfian._ZETA_CACHE.clear()
            zipfian.ScrambledZipfianGenerator(50_000, 0.99, random.Random(0))

    return op, True


def _bench_metrics_counter():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()

    def op(n: int) -> None:
        counter = registry.counter
        for _ in range(n):
            counter("micro.bench", kind="inc").inc()

    return op, False


def _make_attribution_db():
    """A small pre-loaded DB whose gets mix cache hits and device reads."""
    from repro.common import KIB
    from repro.lsm import DBOptions, LsmDB

    options = DBOptions(
        memtable_bytes=4 * KIB,
        target_file_bytes=4 * KIB,
        level1_target_bytes=8 * KIB,
        level_size_multiplier=4,
        block_bytes=512,
        block_cache_bytes=16 * KIB,
    )
    db = LsmDB.create("NNNTQ", options)
    keys = [f"key{i:05d}".encode() for i in range(600)]
    for key in keys:
        db.put(key, b"x" * 64)
    return db, keys


def _bench_attribution_off():
    """Baseline read path: the disabled-attribution single branch."""
    db, keys = _make_attribution_db()
    n_keys = len(keys)

    def op(n: int) -> None:
        get = db.get
        for i in range(n):
            get(keys[i % n_keys])

    return op, False


def _bench_attribution_on():
    """Same reads with a live OpContext: measures the tentpole's overhead
    (allocation + per-charge dict updates) against attribution.get_off."""
    from repro.obs.attribution import OpContext

    db, keys = _make_attribution_db()
    n_keys = len(keys)

    def op(n: int) -> None:
        get = db.get
        for i in range(n):
            get(keys[i % n_keys], ctx=OpContext("read"))

    return op, False


def _bench_block_zero_copy():
    """Point search over a memoryview-backed block, as partial file reads
    hand them out: no bytes copy between the 'file' and the search."""
    from repro.lsm.block import DataBlock, DataBlockBuilder

    records = _records(40)
    builder = DataBlockBuilder(1 << 20)
    for record in records:
        builder.add(record)
    payload = builder.finish()
    # Embed the block mid-"file" so the slice below mirrors what
    # StorageBackend.read returns for a block-sized partial read.
    file_bytes = b"\x00" * 128 + payload + b"\x00" * 128
    view = memoryview(file_bytes)
    lo, hi = 128, 128 + len(payload)
    keys = [record.user_key for record in records]
    n_keys = len(keys)

    def op(n: int) -> None:
        for i in range(n):
            DataBlock(view[lo:hi]).search(keys[i % n_keys])

    return op, True


def _bench_key_intern():
    """Workload key materialization through the interner's memo table."""
    from repro.workloads.interning import KeyInterner

    interner = KeyInterner()
    n_keys = 4_096
    for i in range(n_keys):
        interner.key(i)

    def op(n: int) -> None:
        key = interner.key
        for i in range(n):
            key(i % n_keys)

    return op, False


def _bench_runner_batched():
    """Batched YCSB op generation: RNG draws + batch assembly, per op."""
    from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

    config = YCSBConfig.read_update(
        50, record_count=1_000, operation_count=2_000, seed=0
    )

    def op(n: int) -> int:
        total = 0
        while total < n:
            workload = YCSBWorkload(config)
            for batch in workload.run_batches():
                total += len(batch.kinds)
        return total

    return op, True


def _bench_fleet_route():
    """The router's per-request cost: hash the key, bisect the ring."""
    from repro.fleet.router import ConsistentHashRouter
    from repro.workloads.interning import KeyInterner

    router = ConsistentHashRouter(16, vnodes=64)
    interner = KeyInterner("t00-%010d")
    keys = [interner.key(i) for i in range(8_192)]
    n_keys = len(keys)

    def op(n: int) -> None:
        shard_for_key = router.shard_for_key
        for i in range(n):
            shard_for_key(keys[i % n_keys])

    return op, False


def _bench_fleet_merge_results():
    """The fleet merge path: fold per-shard artifacts into one result."""
    from repro.bench.harness import SystemConfig, run_experiment
    from repro.fleet.merge import merge_run_results
    from repro.workloads.ycsb import YCSBConfig

    shards = [
        run_experiment(
            SystemConfig(system="prismdb", layout_code="NNNTQ", seed=seed),
            YCSBConfig.read_update(
                50, record_count=500, operation_count=800, seed=seed
            ),
            label=f"micro/shard{seed}",
            sample_interval_ms=10.0,
        )
        for seed in range(4)
    ]

    def op(n: int) -> int:
        merges = max(1, n // _MERGE_SHARDS)
        for _ in range(merges):
            merge_run_results(shards, label="micro/fleet")
        return merges * _MERGE_SHARDS

    return op, True


#: fleet.merge_results folds whole artifacts; its "inner op" is one
#: shard result merged, so n is scaled by the shard count per merge.
_MERGE_SHARDS = 4


def _bench_compaction_encoded_merge():
    """The encoded-domain leveled merge, per record merged.

    Builds one upper and two overlapping lower tables once, then runs
    the same planned job through a fresh manifest/executor pair each
    iteration — the inputs are immutable SSTables, so every execution
    re-reads the same spans and the timed region is the merge itself
    (span scan, key/seqno ordering, routing, fused emission), not table
    construction.
    """
    from repro.common import KIB, SimClock
    from repro.lsm.block_cache import BlockCache
    from repro.lsm.compaction import (
        CompactDownRouter,
        CompactionExecutor,
        CompactionJob,
        LargestFilePicker,
    )
    from repro.lsm.layout import build_layout
    from repro.lsm.options import DBOptions
    from repro.lsm.record import Record, ValueKind
    from repro.lsm.sstable import SSTableBuilder
    from repro.lsm.version import LevelManifest
    from repro.storage import StorageBackend

    options = DBOptions(
        memtable_bytes=4 * KIB,
        target_file_bytes=64 * KIB,
        level1_target_bytes=128 * KIB,
        level_size_multiplier=4,
        block_bytes=4 * KIB,
    )
    clock = SimClock()
    backend = StorageBackend(clock)
    layout = build_layout("NNNNN", options, clock)

    def build_table(level: int, keys) -> object:
        builder = SSTableBuilder(
            backend,
            layout.tier_for_level(level),
            block_bytes=options.block_bytes,
            target_file_bytes=1 << 30,
        )
        for seqno, key in enumerate(sorted(keys), start=1):
            builder.add(Record(key, seqno, ValueKind.PUT, b"v" * 32))
        table, _ = builder.finish()
        return table

    upper = [build_table(1, [f"k{i:06d}".encode() for i in range(0, 2_000, 2)])]
    lower = [
        build_table(2, [f"k{i:06d}".encode() for i in range(0, 1_000, 2)]),
        build_table(2, [f"k{i:06d}".encode() for i in range(1_000, 2_000, 2)]),
    ]
    records_per_merge = 2_000
    job = CompactionJob(
        style="leveled",
        upper_level=1,
        lower_level=2,
        upper_inputs=upper,
        lower_inputs=lower,
        upper_lo=upper[0].smallest_key,
        upper_hi=upper[0].largest_key,
        drop_tombstones=True,
    )

    def op(n: int) -> int:
        merges = max(1, n // records_per_merge)
        for _ in range(merges):
            manifest = LevelManifest(options.num_levels)
            for table in upper:
                manifest.add_file(1, table)
            for table in lower:
                manifest.add_file(2, table)
            executor = CompactionExecutor(
                backend, manifest, layout, options, BlockCache(64 * KIB),
                LargestFilePicker(), CompactDownRouter(),
            )
            executor.execute(job)
            # The merge deletes its inputs; resurrect them so the next
            # iteration replays the identical job (reads address the
            # SimFile object directly, so flipping the tombstone and
            # re-allocating tier capacity is all a replay needs).
            for table in upper + lower:
                file = table.file
                if file.deleted:
                    file.deleted = False
                    file.tier.allocate(file.size)
        return merges * records_per_merge

    return op, True


def _codec_artifact():
    """One representative schema-2 artifact: timeline + attribution on."""
    from repro.bench.harness import SystemConfig, run_experiment
    from repro.workloads.ycsb import YCSBConfig

    return run_experiment(
        SystemConfig(system="prismdb", layout_code="NNNTQ", seed=0),
        YCSBConfig.read_update(50, record_count=500, operation_count=800, seed=0),
        label="micro/codec",
        sample_interval_ms=5.0,
        attribution_sample_every=1,
    )


def _bench_codec_encode():
    """Binary artifact codec, encode side: one full RunResult per op."""
    from repro.bench.codec import encode_result

    result = _codec_artifact()

    def op(n: int) -> None:
        for _ in range(n):
            encode_result(result)

    return op, True


def _bench_codec_decode():
    """Binary artifact codec, decode side: one full RunResult per op."""
    from repro.bench.codec import decode_result, encode_result

    blob = encode_result(_codec_artifact())

    def op(n: int) -> None:
        for _ in range(n):
            decode_result(blob)

    return op, True


def _bench_runner_read_fastlane():
    """The harness's grouped read dispatch: one fast-lane lookup per op."""
    db, keys = _make_attribution_db()
    n_keys = len(keys)

    def op(n: int) -> None:
        lookup = db.read_lane()
        for i in range(n):
            lookup(keys[i % n_keys])

    return op, False


def _bench_e2e_smoke():
    """End-to-end: the perf gate's seeded YCSB-A smoke run, wall-clock."""
    from repro.bench.harness import SystemConfig, run_experiment
    from repro.workloads.ycsb import YCSBConfig

    def op(n: int) -> int:
        runs = max(1, n // _E2E_OPS_PER_RUN)
        for _ in range(runs):
            config = SystemConfig(system="prismdb", layout_code="NNNTQ", seed=0)
            workload = YCSBConfig.read_update(
                50, record_count=3_000, operation_count=5_000, seed=0
            )
            run_experiment(config, workload, label="micro/e2e")
        return runs * _E2E_OPS_PER_RUN

    return op, True


#: name -> (description, factory). Order is presentation order.
BENCHMARKS: dict[str, tuple[str, Callable]] = {
    "block.build": ("encode a 40-record data block", _bench_block_build),
    "block.decode": ("decode all records of a 4KB block", _bench_block_decode),
    "block.point_search": ("lazy point lookup in an encoded block", _bench_block_point_search),
    "block.zero_copy": ("point search over a memoryview-backed block", _bench_block_zero_copy),
    "bloom.add": ("bulk-insert keys into a bloom filter", _bench_bloom_add),
    "bloom.probe_hit": ("membership probe, key present", _bench_bloom_probe_hit),
    "bloom.probe_miss": ("membership probe, key absent", _bench_bloom_probe_miss),
    "skiplist.insert": ("memtable skiplist insert", _bench_skiplist_insert),
    "skiplist.seek": ("memtable skiplist point lookup", _bench_skiplist_seek),
    "merge.records": ("4-way sorted-run merge, per record", _bench_merge_records),
    "compaction.encoded_merge": ("encoded leveled compaction, per record", _bench_compaction_encoded_merge),
    "zipfian.sample": ("scrambled zipfian key draw", _bench_zipfian_sample),
    "zipfian.setup": ("generator construction, zeta cache cold", _bench_zipfian_setup),
    "key.intern": ("interned workload key lookup", _bench_key_intern),
    "runner.batched": ("batched YCSB op generation, per op", _bench_runner_batched),
    "runner.read_fastlane": ("read fast-lane lookup, per op", _bench_runner_read_fastlane),
    "metrics.counter_inc": ("labelled counter lookup + increment", _bench_metrics_counter),
    "attribution.get_off": ("point read, attribution disabled", _bench_attribution_off),
    "attribution.get_on": ("point read with a live OpContext", _bench_attribution_on),
    "codec.encode": ("binary-encode a full run artifact", _bench_codec_encode),
    "codec.decode": ("decode a binary run artifact", _bench_codec_decode),
    "fleet.route": ("consistent-hash shard lookup, 16 shards", _bench_fleet_route),
    "fleet.merge_results": ("merge 4 shard artifacts (per shard folded)", _bench_fleet_merge_results),
    "e2e.smoke": ("full 5k-op YCSB-A smoke run (per DB operation)", _bench_e2e_smoke),
}

#: e2e runs whole workloads; its "inner op" is one *database* operation,
#: so scale its count to workload size instead of the generic divisor.
_E2E_OPS_PER_RUN = 5_000


def run_micro(
    *,
    quick: bool = False,
    name_filter: str | None = None,
    repeats: int | None = None,
) -> list[MicroResult]:
    """Run the (filtered) suite and return per-benchmark results."""
    inner, default_repeats = _SCALES["quick" if quick else "full"]
    repeats = repeats or default_repeats
    # Benchmark names are all lowercase, so lowering the filter makes the
    # match case-insensitive.
    name_filter = name_filter.lower() if name_filter else None
    results = []
    for name, (_, factory) in BENCHMARKS.items():
        if name_filter and name_filter not in name:
            continue
        op, heavy = factory()
        if name == "e2e.smoke":
            # One repetition = one-to-three whole workloads; reported
            # per *database* operation.
            n = _E2E_OPS_PER_RUN * (1 if quick else 3)
            best, median = _time_one(op, n, 1 if quick else repeats)
        else:
            n = max(1, inner // _HEAVY_DIVISOR) if heavy else inner
            best, median = _time_one(op, n, repeats)
        results.append(
            MicroResult(
                name=name,
                inner_ops=n,
                repeats=repeats,
                best_ns=best,
                median_ns=median,
            )
        )
    return results


def format_micro(results: list[MicroResult]) -> str:
    """Fixed-width table matching the repo's experiment output style."""
    header = f"{'benchmark':24s} {'best':>12s} {'median':>12s} {'ops/sec':>14s}"
    lines = [header, "-" * len(header)]
    for result in results:
        desc = BENCHMARKS[result.name][0]
        lines.append(
            f"{result.name:24s} {_fmt_ns(result.best_ns):>12s} "
            f"{_fmt_ns(result.median_ns):>12s} {result.ops_per_sec:>14,.0f}"
            f"  {desc}"
        )
    return "\n".join(lines)


def _fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def add_micro_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized counts: a few seconds total")
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only run benchmarks whose name contains SUBSTR "
                             "(case-insensitive)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repetitions per benchmark (default by scale)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write results as JSON")


def run_micro_command(args: argparse.Namespace) -> int:
    results = run_micro(
        quick=args.quick, name_filter=args.filter, repeats=args.repeats
    )
    if not results:
        print(f"no benchmark matches filter {args.filter!r}", file=sys.stderr)
        return 2
    print(format_micro(results))
    if args.json:
        payload = {
            "schema": 1,
            "scale": "quick" if args.quick else "full",
            "benchmarks": [result.to_json() for result in results],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote JSON results to {args.json}", file=sys.stderr)
    return 0
