"""Design-space sweep: who wins where across compaction policies.

Runs the compaction policy grid — shapes x read/write mixes x layouts
(tier gaps) — through the standard harness and renders a who-wins-where
table: one row per (layout, mix) cell, one column group per shape, the
winner by throughput starred. Sarkar et al. (arXiv:2202.04522) predict
the winner flips with the workload: leveling favours read-heavy mixes
(one run per level to probe), tiering favours write-heavy mixes (each
record rewritten once per level), lazy-leveling sits between. The sweep
measures where those crossovers land in *this* simulator, and — because
the system under test defaults to PrismDB — demonstrates that the
pinned router composes with every shape.

Each grid cell is an ordinary :class:`~repro.bench.harness.RunResult`;
pass ``--out DIR`` to save the schema-versioned JSON artifacts (one per
cell, named ``<label>.json``) plus a ``sweep.json`` index. Same seed +
same grid -> byte-identical artifacts; the CI smoke and
``tests/bench/test_sweep.py`` rely on that.

Usage::

    python -m repro.bench sweep                         # default grid
    python -m repro.bench sweep --shapes leveling tiering --mixes 95 50
    python -m repro.bench sweep --system rocksdb --layouts NNNTQ QQQQQ
    python -m repro.bench sweep --out benchmarks/results/sweep
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.harness import SYSTEM_NAMES, RunResult, SystemConfig, run_experiment
from repro.bench.reporting import fmt, format_experiment
from repro.lsm.options import COMPACTION_PICKERS, COMPACTION_SHAPES, COMPACTION_TRIGGERS
from repro.workloads.ycsb import YCSBConfig


def cell_label(system: str, layout: str, shape: str, read_pct: int) -> str:
    """Stable artifact label/filename stem for one grid cell."""
    return f"{system}-{layout}-{shape}-r{read_pct}"


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--system", default="prismdb", choices=SYSTEM_NAMES,
                        help="system under test (default: prismdb, so the "
                             "pinned router runs under every shape)")
    parser.add_argument("--shapes", nargs="+", default=list(COMPACTION_SHAPES),
                        choices=COMPACTION_SHAPES, metavar="SHAPE",
                        help=f"compaction shapes to compare (default: all; "
                             f"choices: {', '.join(COMPACTION_SHAPES)})")
    parser.add_argument("--trigger", default="size-ratio",
                        choices=COMPACTION_TRIGGERS,
                        help="compaction trigger for every cell (default: size-ratio)")
    parser.add_argument("--picker", default="default", choices=COMPACTION_PICKERS,
                        help="compaction picker for every cell (default: the "
                             "system's own choice)")
    parser.add_argument("--mixes", nargs="+", type=int, default=[95, 50],
                        metavar="READ_PCT",
                        help="read percentages of the measured mixes "
                             "(default: 95 50)")
    parser.add_argument("--layouts", nargs="+", default=["NNNTQ"], metavar="CODE",
                        help="storage layout codes — add e.g. QQQQQ to widen "
                             "the tier gap axis (default: NNNTQ)")
    parser.add_argument("--records", type=int, default=6_000,
                        help="records loaded per cell (default: 6000)")
    parser.add_argument("--ops", type=int, default=10_000,
                        help="measured operations per cell (default: 10000)")
    parser.add_argument("--value-bytes", type=int, default=100,
                        help="value size in bytes (default: 100)")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop clients (default: 8)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload + engine seed (default: 0)")
    parser.add_argument("--sample-interval-ms", type=float, default=None,
                        metavar="MS",
                        help="attach a timeline sampler to every cell "
                             "(adds a `timeline` section to each artifact)")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="save one RunResult JSON per cell plus a "
                             "sweep.json index under DIR")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the grid (cells are "
                             "independent runs); the table and sweep.json "
                             "are byte-identical for any value (default: 1)")


def run_sweep_cell(args: argparse.Namespace, layout: str, shape: str,
                   read_pct: int) -> RunResult:
    """Run one grid cell through the standard load/run harness."""
    config = SystemConfig(
        system=args.system,
        layout_code=layout,
        compaction_shape=shape,
        compaction_trigger=args.trigger,
        compaction_picker=args.picker,
        clients=args.clients,
        seed=args.seed,
    )
    workload = YCSBConfig.read_update(
        read_pct,
        record_count=args.records,
        operation_count=args.ops,
        value_bytes=args.value_bytes,
        seed=args.seed,
    )
    return run_experiment(
        config,
        workload,
        label=cell_label(args.system, layout, shape, read_pct),
        sample_interval_ms=args.sample_interval_ms,
    )


def render_sweep_table(results: dict[tuple[str, int, str], RunResult],
                       layouts: list[str], mixes: list[int],
                       shapes: list[str]) -> tuple[list[str], list[list[str]]]:
    """The who-wins-where table: a row per (layout, mix), the throughput
    winner among shapes starred."""
    headers = ["layout", "mix (r/w)"]
    for shape in shapes:
        headers += [f"{shape} kops", f"{shape} p99 (us)", f"{shape} WA"]
    headers.append("winner")
    rows = []
    for layout in layouts:
        for read_pct in mixes:
            cells = [results[(layout, read_pct, shape)] for shape in shapes]
            winner = max(range(len(shapes)), key=lambda i: cells[i].throughput_kops)
            row = [layout, f"{read_pct}/{100 - read_pct}"]
            for i, result in enumerate(cells):
                star = "*" if i == winner else ""
                row += [
                    f"{fmt(result.throughput_kops)}{star}",
                    fmt(result.read_latency.p99),
                    fmt(result.write_amplification),
                ]
            row.append(shapes[winner])
            rows.append(row)
    return headers, rows


def _sweep_cell_worker(
    payload: tuple[argparse.Namespace, str, str, int],
) -> dict:
    """Spawn-safe pool entrypoint: run one cell, return its JSON artifact.

    Every cell goes through this worker (and the to_json/from_json round
    trip) even at ``--jobs 1``, so the single-process and fanned-out
    paths produce byte-for-byte the same artifacts.
    """
    args, layout, shape, read_pct = payload
    return run_sweep_cell(args, layout, shape, read_pct).to_json()


def run_sweep(args: argparse.Namespace) -> int:
    from repro.fleet.fanout import fan_out

    cells = [
        (layout, read_pct, shape)
        for layout in args.layouts
        for read_pct in args.mixes
        for shape in args.shapes
    ]
    for done, (layout, read_pct, shape) in enumerate(cells, start=1):
        print(
            f"[{done}/{len(cells)}] "
            f"{cell_label(args.system, layout, shape, read_pct)}"
            + (f" (jobs={args.jobs})" if args.jobs > 1 else ""),
            file=sys.stderr,
        )
    raw = fan_out(
        _sweep_cell_worker,
        [(args, layout, shape, read_pct) for layout, read_pct, shape in cells],
        getattr(args, "jobs", 1),
    )
    results: dict[tuple[str, int, str], RunResult] = {
        cell: RunResult.from_json(data) for cell, data in zip(cells, raw)
    }

    headers, rows = render_sweep_table(results, args.layouts, args.mixes, args.shapes)
    title = (
        f"Design-space sweep: {args.system}, trigger={args.trigger}, "
        f"picker={args.picker} ({args.records} records, {args.ops} ops/cell)"
    )
    print(format_experiment(title, headers, rows))

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        index = {
            "system": args.system,
            "trigger": args.trigger,
            "picker": args.picker,
            "seed": args.seed,
            "records": args.records,
            "operations": args.ops,
            "grid": [],
        }
        for (layout, read_pct, shape), result in sorted(results.items()):
            path = os.path.join(args.out, f"{result.label}.json")
            result.save(path)
            index["grid"].append(
                {
                    "layout": layout,
                    "read_pct": read_pct,
                    "shape": shape,
                    "artifact": os.path.basename(path),
                    "throughput_kops": result.throughput_kops,
                    "read_p99_usec": result.read_latency.p99,
                    "write_amplification": result.write_amplification,
                }
            )
        index_path = os.path.join(args.out, "sweep.json")
        with open(index_path, "w", encoding="utf-8") as fh:
            json.dump(index, fh, indent=2, sort_keys=True, allow_nan=False)
            fh.write("\n")
        print(f"saved {len(results)} artifacts + index to {args.out}", file=sys.stderr)
    return 0
