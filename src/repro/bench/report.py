"""``python -m repro.bench report``: observability-driven run reports.

Runs one YCSB workload against one system and prints views derived
*entirely* from the run's :class:`~repro.obs.MetricsRegistry` snapshot —
the per-phase latency breakdown (the Fig. 10 reproduction), the full
metrics dump, and optionally a JSONL trace of flush/compaction spans
(openable in chrome://tracing after ``jsonl_to_chrome_json``; see
``docs/OBSERVABILITY.md``).

Usage::

    python -m repro.bench report                       # breakdown table
    python -m repro.bench report --metrics             # full registry dump
    python -m repro.bench report --trace run.trace.jsonl
    python -m repro.bench report --system rocksdb --ops 20000
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import SystemConfig, WorkloadRunner, build_system
from repro.bench.reporting import (
    format_experiment,
    format_metrics_snapshot,
    latency_breakdown_table,
)
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """The workload/system knobs shared by ``report`` and ``timeline``."""
    parser.add_argument("--system", default="prismdb",
                        choices=("rocksdb", "prismdb", "mutant"))
    parser.add_argument("--layout", default="NNNTQ", help="tier layout code")
    parser.add_argument("--records", type=int, default=5_000,
                        help="YCSB record count (default: 5000)")
    parser.add_argument("--ops", type=int, default=10_000,
                        help="measured operations (default: 10000)")
    parser.add_argument("--read-pct", type=int, default=50,
                        help="read percentage; 50 = YCSB-A (default: 50)")
    parser.add_argument("--seed", type=int, default=0)


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``report`` options to ``parser`` (reused by the CLI)."""
    add_workload_arguments(parser)
    parser.add_argument("--metrics", action="store_true",
                        help="print the full metrics-registry snapshot")
    parser.add_argument("--breakdown", action="store_true",
                        help="print the latency breakdown table")
    parser.add_argument("--json", action="store_true",
                        help="dump the raw snapshot as JSON instead of tables")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="record spans during the run; write JSONL here")
    parser.add_argument("--trace-sample-every", type=int, default=1,
                        help="keep every Nth span (default: all)")
    parser.add_argument("--save", metavar="FILE", default=None,
                        help="persist the whole RunResult as a JSON artifact "
                             "(usable with `repro.bench compare/timeline`)")
    parser.add_argument("--sample-interval-ms", type=float, default=None,
                        metavar="MS",
                        help="record a timeline, sampling every MS sim-ms "
                             "(default with --save: 10)")
    parser.add_argument("--attribution", action="store_true",
                        help="attribute per-request latency by (component, "
                             "tier); feeds `repro.bench explain`")
    parser.add_argument("--attr-sample-every", type=int, default=1, metavar="N",
                        help="attribute every Nth op (default: 1 = all)")
    parser.add_argument("--slow-k", type=int, default=8, metavar="K",
                        help="slowest ops to retain with full span trees "
                             "(default: 8)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench report",
        description="Run a workload and report from the metrics registry.",
    )
    add_report_arguments(parser)
    return parser


def run_report(args: argparse.Namespace) -> int:
    workload_config = YCSBConfig.read_update(
        args.read_pct,
        record_count=args.records,
        operation_count=args.ops,
        seed=args.seed,
    )
    system_config = SystemConfig(
        system=args.system, layout_code=args.layout, seed=args.seed
    )
    workload = YCSBWorkload(workload_config)
    db = build_system(system_config, workload)
    if args.trace:
        # Fail on an unwritable path now, not after the simulation ran.
        with open(args.trace, "w", encoding="utf-8"):
            pass
        db.tracer.enable(sample_every=args.trace_sample_every)
    sample_interval = args.sample_interval_ms
    if sample_interval is None and args.save:
        sample_interval = 10.0  # artifacts should carry a timeline
    runner = WorkloadRunner(
        db,
        clients=system_config.clients,
        sample_interval_ms=sample_interval,
        attribution_sample_every=(
            args.attr_sample_every if args.attribution else None
        ),
        slow_op_k=args.slow_k,
    )
    runner.load(workload)
    elapsed = runner.run(workload)
    result = runner.result(
        f"{args.system}/{args.layout}", system_config, elapsed
    )

    if args.json:
        print(json.dumps(result.metrics, indent=2, sort_keys=True))
    else:
        # Default to the breakdown view when no section was requested.
        show_breakdown = args.breakdown or not args.metrics
        if show_breakdown:
            headers, rows = latency_breakdown_table(result.metrics)
            print(
                format_experiment(
                    f"Latency breakdown: {result.label} "
                    f"({result.operations} ops, "
                    f"{result.throughput_kops:.1f} kops/s)",
                    headers,
                    rows,
                    notes="Derived from the metrics registry alone (Fig. 10).",
                )
            )
        if args.metrics:
            print(f"== Metrics registry: {result.label} ==")
            print(format_metrics_snapshot(result.metrics))
    if args.trace:
        written = db.tracer.write_jsonl(args.trace)
        dropped = db.tracer.dropped_events
        suffix = f" ({dropped} dropped)" if dropped else ""
        print(f"wrote {written} trace events to {args.trace}{suffix}")
    if args.save:
        result.save(args.save)
        print(f"saved run artifact to {args.save}")
    return 0


def main(argv: list[str]) -> int:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return run_report(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
