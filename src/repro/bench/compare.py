"""``repro.bench compare``: regression-gated diff of two run artifacts.

Two :class:`~repro.bench.harness.RunResult` artifacts (written with
``RunResult.save`` / ``repro.bench report --save`` / the perf gate) are
diffed metric-by-metric. Every metric gets a drift percentage; *gated*
metrics additionally have a direction — throughput and cache hit rates
regress downward, latencies / write amplification / I/O volume regress
upward — and a drift beyond ``--tolerance`` in the bad direction fails
the comparison (exit code 1). Two artifacts of the same seeded run
report zero drift everywhere: the simulation is deterministic, so any
drift at all is a code change, not noise.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass

from repro.bench.harness import RunResult
from repro.bench.reporting import format_experiment
from repro.errors import ReproError

#: Metrics where a *decrease* beyond tolerance is a regression.
HIGHER_IS_BETTER = {
    "throughput_kops",
    "cache_hit_rate",
    "cache_hit_rate_data",
}

#: Metrics where an *increase* beyond tolerance is a regression.
LOWER_IS_BETTER_PREFIXES = (
    "read_latency.",
    "update_latency.",
    "scan_latency.",
    "write_amplification",
    "compaction_read_bytes",
    "compaction_write_bytes",
    "flush_bytes",
    "wal_bytes",
    "device_read_bytes.",
    "device_write_bytes.",
)

#: Latency summary columns worth diffing (count is informational).
_LATENCY_COLUMNS = ("mean", "p50", "p95", "p99", "maximum")


def comparable_scalars(result: RunResult) -> dict[str, float]:
    """Flatten one artifact into the ``metric -> value`` map ``compare``
    diffs. Latency populations contribute mean/p50/p95/p99/max (skipped
    when empty so a read-only run doesn't diff scan percentiles of 0)."""
    out: dict[str, float] = {
        "operations": float(result.operations),
        "elapsed_usec": result.elapsed_usec,
        "throughput_kops": result.throughput_kops,
        "cache_hit_rate": result.cache_hit_rate,
        "cache_hit_rate_data": result.cache_hit_rate_data,
        "compactions": float(result.compactions),
        "compaction_read_bytes": float(result.compaction_read_bytes),
        "compaction_write_bytes": float(result.compaction_write_bytes),
        "flush_bytes": float(result.flush_bytes),
        "wal_bytes": float(result.wal_bytes),
        "user_write_bytes": float(result.user_write_bytes),
        "write_amplification": result.write_amplification,
        "pinned_records": float(result.pinned_records),
        "pulled_up_records": float(result.pulled_up_records),
        "migrations": float(result.migrations),
        "migration_bytes": float(result.migration_bytes),
    }
    for name, summary in (
        ("read_latency", result.read_latency),
        ("update_latency", result.update_latency),
        ("scan_latency", result.scan_latency),
    ):
        if summary.count == 0:
            continue
        out[f"{name}.count"] = float(summary.count)
        for column in _LATENCY_COLUMNS:
            out[f"{name}.{column}"] = float(getattr(summary, column))
    for tier, count in sorted(result.device_read_bytes.items()):
        out[f"device_read_bytes.{tier}"] = float(count)
    for tier, count in sorted(result.device_write_bytes.items()):
        out[f"device_write_bytes.{tier}"] = float(count)
    return out


def _gate_direction(metric: str) -> int:
    """+1: regression when value rises; -1: when it falls; 0: ungated."""
    if metric in HIGHER_IS_BETTER:
        return -1
    if metric.startswith(LOWER_IS_BETTER_PREFIXES):
        # Latency counts are workload-shape facts, not quality.
        if metric.endswith(".count"):
            return 0
        return 1
    return 0


@dataclass(frozen=True)
class MetricDiff:
    """One row of a comparison."""

    metric: str
    baseline: float
    candidate: float
    drift_pct: float  # (candidate - baseline) / baseline * 100; inf if new
    regressed: bool

    @property
    def status(self) -> str:
        if self.regressed:
            return "REGRESSION"
        if self.drift_pct == 0.0:
            return "ok"
        direction = _gate_direction(self.metric)
        if direction != 0 and math.copysign(1.0, self.drift_pct) != direction:
            return "improved"
        return "drift"


def compare_results(
    baseline: RunResult, candidate: RunResult, *, tolerance_pct: float = 0.0
) -> list[MetricDiff]:
    """Diff every comparable scalar of two artifacts, baseline first."""
    if tolerance_pct < 0:
        raise ValueError(f"tolerance must be non-negative: {tolerance_pct}")
    a = comparable_scalars(baseline)
    b = comparable_scalars(candidate)
    diffs: list[MetricDiff] = []
    for metric in sorted(set(a) | set(b)):
        base = a.get(metric, 0.0)
        cand = b.get(metric, 0.0)
        if base == cand:
            drift = 0.0
        elif base == 0.0:
            drift = math.inf if cand > 0 else -math.inf
        else:
            drift = (cand - base) / abs(base) * 100.0
        direction = _gate_direction(metric)
        regressed = (
            direction != 0
            and drift != 0.0
            and math.copysign(1.0, drift) == direction
            and abs(drift) > tolerance_pct
        )
        diffs.append(MetricDiff(metric, base, cand, drift, regressed))
    return diffs


def regressions(diffs: list[MetricDiff]) -> list[MetricDiff]:
    return [diff for diff in diffs if diff.regressed]


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value)}"
    return f"{value:.3f}"


def _fmt_drift(drift: float) -> str:
    if drift == 0.0:
        return "0.0%"
    if math.isinf(drift):
        return "new" if drift > 0 else "gone"
    return f"{drift:+.2f}%"


def comparison_table(
    diffs: list[MetricDiff], *, only_drift: bool = False
) -> tuple[list[str], list[list[object]]]:
    """Rows for :func:`format_experiment`; regressions sort first."""
    headers = ["metric", "baseline", "candidate", "drift", "status"]
    rows = []
    ordered = sorted(diffs, key=lambda d: (not d.regressed, d.metric))
    for diff in ordered:
        if only_drift and diff.drift_pct == 0.0:
            continue
        rows.append(
            [
                diff.metric,
                _fmt_value(diff.baseline),
                _fmt_value(diff.candidate),
                _fmt_drift(diff.drift_pct),
                diff.status,
            ]
        )
    return headers, rows


def run_compare(args: argparse.Namespace) -> int:
    baseline = RunResult.load(args.baseline)
    candidate = RunResult.load(args.candidate)
    if baseline.schema_version != candidate.schema_version:
        print(
            f"error: mixed artifact schemas (baseline v{baseline.schema_version}, "
            f"candidate v{candidate.schema_version}); re-save the older artifact "
            f"with this build's `repro.bench report --save` to upgrade it",
            file=sys.stderr,
        )
        return 2
    diffs = compare_results(baseline, candidate, tolerance_pct=args.tolerance)
    failed = regressions(diffs)
    headers, rows = comparison_table(diffs, only_drift=args.only_drift)
    if not rows:
        rows = [["(no drift)", "-", "-", "0.0%", "ok"]]
    verdict = (
        f"{len(failed)} regression(s) beyond {args.tolerance:g}% tolerance"
        if failed
        else f"no regressions at {args.tolerance:g}% tolerance"
    )
    print(
        format_experiment(
            f"Compare: {baseline.label} (baseline) vs {candidate.label} (candidate)",
            headers,
            rows,
            notes=verdict,
        )
    )
    return 1 if failed else 0


def add_compare_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("baseline", help="baseline run artifact (JSON)")
    parser.add_argument("candidate", help="candidate run artifact (JSON)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="PCT",
        help="allowed drift in the bad direction before failing (default: 0)",
    )
    parser.add_argument(
        "--only-drift",
        action="store_true",
        help="hide metrics with zero drift from the table",
    )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench compare",
        description="Diff two run artifacts and fail on regressions.",
    )
    add_compare_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_compare(args)
    except (ReproError, ValueError, OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
