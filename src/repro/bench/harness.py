"""Experiment harness: build a system, drive a workload, collect metrics.

The runner is *closed-loop with C clients* (the paper uses 8 concurrent
YCSB clients): after each operation completes with simulated latency L,
the global clock advances by L / C — the standard approximation that C
independent clients keep the server continuously busy. Throughput is
operations divided by simulated elapsed time; background compaction and
migration I/O indirectly slow operations through the device-backlog
queueing penalty, exactly as contention does on real hardware.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.baselines.mutant import MutantDB, MutantOptions
from repro.baselines.rocksdb import RocksDBLike
from repro.common.clock import SimClock
from repro.common.stats import LatencyRecorder, LatencySummary, throughput_kops
from repro.core.prismdb import PrismDB, PrismOptions
from repro.errors import ConfigError
from repro.lsm.block_cache import BlockType
from repro.lsm.db import LsmDB
from repro.lsm.layout import build_layout
from repro.lsm.options import DBOptions, options_for_db_size
from repro.obs.attribution import LatencyAttribution
from repro.obs.timeline import TimelineSampler
from repro.storage.endurance import device_lifetime_seconds
from repro.workloads.ycsb import (
    OP_READ,
    OP_SCAN,
    YCSBConfig,
    YCSBWorkload,
    batches_from_requests,
)

#: Systems the experiments compare.
SYSTEM_NAMES = ("rocksdb", "prismdb", "mutant")


@dataclass
class SystemConfig:
    """Everything needed to instantiate one system under test."""

    system: str = "rocksdb"
    layout_code: str = "NNNTQ"
    #: Block cache budget as a fraction of the data set (the paper uses a
    #: 1:10 DRAM:storage ratio with 20 % of DRAM for the block cache, but
    #: also leans on the OS page cache; this fraction stands in for both).
    cache_fraction: float = 0.10
    #: Disable DRAM caching entirely (Fig. 13).
    cache_disabled: bool = False
    #: Share of the DRAM cache budget given to an object-granularity row
    #: cache instead of the block cache (the §3.3 granularity extension).
    row_cache_share: float = 0.0
    #: PrismDB pinning threshold override (Fig. 14 sweeps this).
    pinning_threshold: float = 0.10
    #: Tracker size as a fraction of the key space (paper: 10 %).
    tracker_fraction: float = 0.10
    #: Extra PrismOptions fields for ablation variants.
    prism_overrides: dict = field(default_factory=dict)
    #: Compaction policy axes (see repro.lsm.strategy / docs/COMPACTION.md).
    #: The defaults reproduce the paper's configuration exactly, so the
    #: baselines' determinism tests are unaffected.
    compaction_shape: str = "leveling"
    compaction_trigger: str = "size-ratio"
    compaction_picker: str = "default"
    #: WAL group-commit factor (1 = sync every append, the paper's
    #: configuration). The fleet router raises it to model router-side
    #: batched WAL (see repro.fleet / docs/FLEET.md).
    wal_sync_every: int = 1
    clients: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.system not in SYSTEM_NAMES:
            raise ConfigError(f"unknown system {self.system!r}")
        if self.clients < 1:
            raise ConfigError("clients must be >= 1")


def build_system(config: SystemConfig, workload: YCSBWorkload) -> LsmDB:
    """Instantiate the system under test, sized for the workload."""
    db_bytes = workload.total_data_bytes()
    cache_bytes = 0 if config.cache_disabled else int(db_bytes * config.cache_fraction)
    if not 0.0 <= config.row_cache_share <= 1.0:
        raise ConfigError(f"row_cache_share out of range: {config.row_cache_share}")
    row_bytes = int(cache_bytes * config.row_cache_share)
    options = options_for_db_size(
        db_bytes,
        block_cache_bytes=cache_bytes - row_bytes,
        row_cache_bytes=row_bytes,
        seed=config.seed,
        compaction_shape=config.compaction_shape,
        compaction_trigger=config.compaction_trigger,
        compaction_picker=config.compaction_picker,
        wal_sync_every=config.wal_sync_every,
    )
    clock = SimClock()
    layout = build_layout(config.layout_code, options, clock)
    if config.system == "rocksdb":
        return RocksDBLike(layout, options, clock=clock)
    if config.system == "mutant":
        return MutantDB(layout, options, MutantOptions(), clock=clock)
    prism = PrismOptions(
        tracker_capacity=max(1, int(workload.config.record_count * config.tracker_fraction)),
        pinning_threshold=config.pinning_threshold,
        **config.prism_overrides,
    )
    return PrismDB(layout, options, prism, clock=clock)


@dataclass
class RunResult:
    """Metrics from one workload run against one system."""

    label: str
    system: str
    layout_code: str
    operations: int
    elapsed_usec: float
    throughput_kops: float
    read_latency: LatencySummary
    update_latency: LatencySummary
    #: Range scans get their own population: folding them into
    #: ``read_latency`` skewed the Fig. 10 point-read percentiles on
    #: scan-heavy workloads.
    scan_latency: LatencySummary = field(default_factory=LatencySummary.empty)
    reads_by_source: dict[str, int] = field(default_factory=dict)
    read_latency_by_source: dict[str, LatencySummary] = field(default_factory=dict)
    cache_hit_rate: float = 0.0
    cache_hit_rate_data: float = 0.0
    compactions: int = 0
    compaction_read_bytes: int = 0
    compaction_write_bytes: int = 0
    flush_bytes: int = 0
    wal_bytes: int = 0
    user_write_bytes: int = 0
    write_amplification: float = 0.0
    per_level_write_bytes: dict[int, int] = field(default_factory=dict)
    pinned_records: int = 0
    pulled_up_records: int = 0
    migrations: int = 0
    migration_bytes: int = 0
    device_read_bytes: dict[str, int] = field(default_factory=dict)
    device_write_bytes: dict[str, int] = field(default_factory=dict)
    #: Full-capacity P/E cycles consumed per tier during the whole run.
    device_wear_cycles: dict[str, float] = field(default_factory=dict)
    #: Projected device lifetime in years at the run's observed write
    #: rate (the paper's 3-year provisioning criterion, measured).
    device_lifetime_years: dict[str, float] = field(default_factory=dict)
    storage_cost_dollars: float = 0.0
    #: JSON-safe snapshot of the run's :class:`~repro.obs.MetricsRegistry`
    #: (every counter/gauge/histogram series; see docs/OBSERVABILITY.md).
    metrics: dict = field(default_factory=dict)
    #: JSON-safe :meth:`~repro.obs.TimelineSampler.to_dict` export when
    #: the run sampled a timeline; empty dict otherwise.
    timeline: dict = field(default_factory=dict)
    #: JSON-safe :meth:`~repro.obs.LatencyAttribution.to_dict` export
    #: when the run attributed per-request latency (schema 2); empty
    #: dict otherwise. See docs/OBSERVABILITY.md.
    attribution: dict = field(default_factory=dict)
    #: Fleet provenance block (shard count, router stats, device-pool
    #: contention overlay, per-shard summaries) when this result is a
    #: merged fleet run (see repro.fleet / docs/FLEET.md); empty dict
    #: for ordinary single-instance runs, and omitted from the JSON
    #: artifact so pre-fleet artifacts stay byte-identical on re-save.
    fleet: dict = field(default_factory=dict)
    #: Schema version of the artifact this result was loaded from (or
    #: the current schema for freshly built results). ``repro-bench
    #: compare``/``explain`` use it to detect mixed-version comparisons.
    schema_version: int = 2

    @property
    def total_io_read_bytes(self) -> int:
        return sum(self.device_read_bytes.values())

    @property
    def total_io_write_bytes(self) -> int:
        return sum(self.device_write_bytes.values())

    # ------------------------------------------------------------------
    # Persistence: whole runs as JSON artifacts
    # ------------------------------------------------------------------
    #: Artifact schema version; bump on incompatible layout changes.
    #: Schema 2 adds the ``attribution`` block (per-request latency
    #: provenance); schema-1 artifacts still load, with it defaulting to
    #: empty (see :meth:`from_json`).
    SCHEMA = 2

    def to_json(self) -> dict:
        """A strictly JSON-safe dict that round-trips via :meth:`from_json`.

        ``inf`` (the lifetime-years of a tier that saw no writes) is not
        valid JSON, so it is encoded as the string ``"inf"``; integer
        dict keys (per-level bytes) become strings and are restored on
        load.
        """

        def summary(s: LatencySummary) -> dict:
            return {
                "count": s.count,
                "mean": s.mean,
                "p50": s.p50,
                "p95": s.p95,
                "p99": s.p99,
                "maximum": s.maximum,
            }

        return {
            "schema": self.SCHEMA,
            "label": self.label,
            "system": self.system,
            "layout_code": self.layout_code,
            "operations": self.operations,
            "elapsed_usec": self.elapsed_usec,
            "throughput_kops": self.throughput_kops,
            "read_latency": summary(self.read_latency),
            "update_latency": summary(self.update_latency),
            "scan_latency": summary(self.scan_latency),
            "reads_by_source": dict(self.reads_by_source),
            "read_latency_by_source": {
                source: summary(s)
                for source, s in self.read_latency_by_source.items()
            },
            "cache_hit_rate": self.cache_hit_rate,
            "cache_hit_rate_data": self.cache_hit_rate_data,
            "compactions": self.compactions,
            "compaction_read_bytes": self.compaction_read_bytes,
            "compaction_write_bytes": self.compaction_write_bytes,
            "flush_bytes": self.flush_bytes,
            "wal_bytes": self.wal_bytes,
            "user_write_bytes": self.user_write_bytes,
            "write_amplification": self.write_amplification,
            "per_level_write_bytes": {
                str(level): count
                for level, count in self.per_level_write_bytes.items()
            },
            "pinned_records": self.pinned_records,
            "pulled_up_records": self.pulled_up_records,
            "migrations": self.migrations,
            "migration_bytes": self.migration_bytes,
            "device_read_bytes": dict(self.device_read_bytes),
            "device_write_bytes": dict(self.device_write_bytes),
            "device_wear_cycles": dict(self.device_wear_cycles),
            "device_lifetime_years": {
                tier: "inf" if math.isinf(years) else years
                for tier, years in self.device_lifetime_years.items()
            },
            "storage_cost_dollars": self.storage_cost_dollars,
            "metrics": self.metrics,
            "timeline": self.timeline,
            "attribution": self.attribution,
            **({"fleet": self.fleet} if self.fleet else {}),
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunResult":
        """Rebuild a :class:`RunResult` from :meth:`to_json` output.

        Accepts the current schema (2) and, as a compatibility shim,
        schema-1 artifacts written before per-request attribution
        existed — those load with ``attribution`` empty and
        ``schema_version`` set to 1 so the compare/explain tooling can
        detect mixed-version comparisons.
        """
        schema = data.get("schema")
        if schema not in (1, cls.SCHEMA):
            raise ConfigError(
                f"unsupported run-artifact schema {schema!r} "
                f"(this build reads schemas 1-{cls.SCHEMA})"
            )

        def summary(d: dict) -> LatencySummary:
            return LatencySummary(
                count=d["count"],
                mean=d["mean"],
                p50=d["p50"],
                p95=d["p95"],
                p99=d["p99"],
                maximum=d["maximum"],
            )

        return cls(
            label=data["label"],
            system=data["system"],
            layout_code=data["layout_code"],
            operations=data["operations"],
            elapsed_usec=data["elapsed_usec"],
            throughput_kops=data["throughput_kops"],
            read_latency=summary(data["read_latency"]),
            update_latency=summary(data["update_latency"]),
            scan_latency=summary(data["scan_latency"]),
            reads_by_source=dict(data["reads_by_source"]),
            read_latency_by_source={
                source: summary(d)
                for source, d in data["read_latency_by_source"].items()
            },
            cache_hit_rate=data["cache_hit_rate"],
            cache_hit_rate_data=data["cache_hit_rate_data"],
            compactions=data["compactions"],
            compaction_read_bytes=data["compaction_read_bytes"],
            compaction_write_bytes=data["compaction_write_bytes"],
            flush_bytes=data["flush_bytes"],
            wal_bytes=data["wal_bytes"],
            user_write_bytes=data["user_write_bytes"],
            write_amplification=data["write_amplification"],
            per_level_write_bytes={
                int(level): count
                for level, count in data["per_level_write_bytes"].items()
            },
            pinned_records=data["pinned_records"],
            pulled_up_records=data["pulled_up_records"],
            migrations=data["migrations"],
            migration_bytes=data["migration_bytes"],
            device_read_bytes=dict(data["device_read_bytes"]),
            device_write_bytes=dict(data["device_write_bytes"]),
            device_wear_cycles=dict(data["device_wear_cycles"]),
            device_lifetime_years={
                tier: float("inf") if years == "inf" else years
                for tier, years in data["device_lifetime_years"].items()
            },
            storage_cost_dollars=data["storage_cost_dollars"],
            metrics=data["metrics"],
            timeline=data.get("timeline", {}),
            attribution=data.get("attribution", {}),
            fleet=data.get("fleet", {}),
            schema_version=schema,
        )

    def save(self, path: str) -> None:
        """Write the artifact as JSON (strict: no NaN/Infinity literals)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True, allow_nan=False)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunResult":
        """Read an artifact previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))


class WorkloadRunner:
    """Drives load and run phases against one database instance."""

    def __init__(
        self,
        db: LsmDB,
        *,
        clients: int = 8,
        sample_interval_ms: float | None = None,
        timeline_capacity: int = 4096,
        attribution_sample_every: int | None = None,
        slow_op_k: int = 8,
    ) -> None:
        if clients < 1:
            raise ConfigError("clients must be >= 1")
        self.db = db
        self.clients = clients
        self.read_latency = LatencyRecorder()
        self.update_latency = LatencyRecorder()
        #: Scans recorded separately from point reads (YCSB-E style
        #: workloads would otherwise skew the read percentiles).
        self.scan_latency = LatencyRecorder()
        #: Read latencies bucketed by the source that served the read
        #: ("memtable", "L0".."L4", "miss"): where does the tail live?
        self.read_latency_by_source: dict[str, LatencyRecorder] = {}
        self._ops_run = 0
        # Registry-side mirrors of the recorders above: bucketed
        # histograms in the DB's MetricsRegistry, so `repro.bench report`
        # can rebuild the latency tables from the snapshot alone.
        self._op_hist = {
            op: db.metrics.histogram("op.latency_usec", op=op)
            for op in ("read", "update", "scan")
        }
        self._source_hist: dict[str, object] = {}
        #: Optional time-series telemetry: pass ``sample_interval_ms`` to
        #: record registry deltas every N simulated milliseconds (see
        #: repro.obs.timeline). Off by default — the clock observer and
        #: per-sample registry walk are not free.
        self.sampler: TimelineSampler | None = None
        if sample_interval_ms is not None:
            self.sampler = TimelineSampler(
                db.metrics,
                db.clock,
                interval_ms=sample_interval_ms,
                capacity=timeline_capacity,
                probes={
                    "memtable.bytes": lambda: db.memtable_bytes,
                    "l0.files": lambda: db.l0_file_count,
                },
            ).attach()
        #: Per-request latency provenance: pass ``attribution_sample_every``
        #: to break every N-th measured op's latency down by
        #: (component, tier) and retain the ``slow_op_k`` slowest ops
        #: with full span trees + an LSM state snapshot. Off by default —
        #: the per-op OpContext allocation is one branch when disabled.
        self.attribution: LatencyAttribution | None = None
        if attribution_sample_every is not None:
            if attribution_sample_every < 1:
                raise ConfigError(
                    f"attribution_sample_every must be >= 1: {attribution_sample_every}"
                )
            self.attribution = LatencyAttribution(
                seed=db.options.seed,
                sample_every=attribution_sample_every,
                slow_k=slow_op_k,
            )
            self.attribution.state_fn = self._lsm_state_snapshot

    def _lsm_state_snapshot(self) -> dict:
        """LSM shape at the moment a slow op is captured (JSON-safe)."""
        db = self.db
        return {
            "clock_usec": db.clock.now,
            "memtable_bytes": db.memtable_bytes,
            "l0_files": db.l0_file_count,
            "levels": db.level_summary(),
            "backlog_bytes": {
                tier.name: tier.device.backlog_bytes for tier in db.layout.tiers
            },
            "compactions": db.executor.stats.compactions,
        }

    def _mark_phase(self, phase: str) -> None:
        if self.sampler is not None:
            self.sampler.mark_phase(phase)

    def _observe_read(self, source: str, latency: float) -> None:
        hist = self._source_hist.get(source)
        if hist is None:
            hist = self.db.metrics.histogram("read.latency_usec", source=source)
            self._source_hist[source] = hist
        hist.observe(latency)

    # ------------------------------------------------------------------
    # Phase drivers
    #
    # All three phases consume RequestBatch chunks (parallel arrays of
    # int op codes / keys / values / scan lengths). Each batch is walked
    # as maximal *groups* of consecutive same-opcode requests, and every
    # group dispatches through the engine's phase-scoped fast lanes
    # (``db.read_lane()`` / ``db.write_lane()``: the per-op pipeline with
    # stable handles hoisted and the attribution branches compiled out —
    # see docs/PERFORMANCE.md). Workloads that only speak the per-op
    # Request protocol (replayed traces) are adapted through
    # batches_from_requests, so there is exactly one hot loop per phase.
    # The per-op accounting — clock.advance(latency / clients) after
    # every operation — is unchanged from the per-op runner, which is
    # what keeps simulated results bit-identical.
    # ------------------------------------------------------------------
    @staticmethod
    def _phase_batches(workload, phase: str):
        batches = getattr(workload, f"{phase}_batches", None)
        if batches is not None:
            return batches()
        return batches_from_requests(getattr(workload, f"{phase}_stream")())

    def load(self, workload: YCSBWorkload) -> float:
        """Load phase; returns simulated elapsed usec."""
        db = self.db
        start = db.clock.now
        self._mark_phase("load")
        commit = db.write_lane()
        advance = db.clock.advance
        clients = self.clients
        for batch in self._phase_batches(workload, "load"):
            for key, value in zip(batch.keys, batch.values):
                advance(commit(key, value).latency_usec / clients)
        db.flush()
        return db.clock.now - start

    def warmup(self, workload: YCSBWorkload) -> float:
        """Unmeasured warm-up traffic; returns simulated elapsed usec."""
        db = self.db
        start = db.clock.now
        self._mark_phase("warmup")
        lookup = db.read_lane()
        commit = db.write_lane()
        scan = db.scan
        advance = db.clock.advance
        clients = self.clients
        for batch in self._phase_batches(workload, "warmup"):
            kinds = batch.kinds
            keys = batch.keys
            values = batch.values
            lengths = batch.scan_lengths
            n = len(kinds)
            i = 0
            while i < n:
                kind = kinds[i]
                j = i + 1
                while j < n and kinds[j] == kind:
                    j += 1
                if kind == OP_READ:
                    for k in range(i, j):
                        advance(lookup(keys[k]).latency_usec / clients)
                elif kind != OP_SCAN:
                    for k in range(i, j):
                        advance(commit(keys[k], values[k]).latency_usec / clients)
                else:
                    for k in range(i, j):
                        advance(scan(keys[k], lengths[k]).latency_usec / clients)
                i = j
        return db.clock.now - start

    def run(self, workload: YCSBWorkload) -> float:
        """Transaction phase; returns simulated elapsed usec."""
        if self.attribution is not None:
            return self._run_attributed(workload)
        db = self.db
        start = db.clock.now
        self._mark_phase("run")
        lookup = db.read_lane()
        commit = db.write_lane()
        scan = db.scan
        advance = db.clock.advance
        clients = self.clients
        record_read = self.read_latency.record
        record_update = self.update_latency.record
        record_scan = self.scan_latency.record
        observe_read_hist = self._op_hist["read"].observe
        observe_update_hist = self._op_hist["update"].observe
        observe_scan_hist = self._op_hist["scan"].observe
        by_source = self.read_latency_by_source
        observe_read = self._observe_read
        ops = 0
        for batch in self._phase_batches(workload, "run"):
            kinds = batch.kinds
            keys = batch.keys
            values = batch.values
            lengths = batch.scan_lengths
            n = len(kinds)
            ops += n
            i = 0
            while i < n:
                kind = kinds[i]
                j = i + 1
                while j < n and kinds[j] == kind:
                    j += 1
                if kind == OP_READ:
                    for k in range(i, j):
                        result = lookup(keys[k])
                        latency = result.latency_usec
                        record_read(latency)
                        source = result.served_by
                        bucket = by_source.get(source)
                        if bucket is None:
                            bucket = by_source[source] = LatencyRecorder()
                        bucket.record(latency)
                        observe_read_hist(latency)
                        observe_read(source, latency)
                        advance(latency / clients)
                elif kind != OP_SCAN:
                    for k in range(i, j):
                        latency = commit(keys[k], values[k]).latency_usec
                        record_update(latency)
                        observe_update_hist(latency)
                        advance(latency / clients)
                else:
                    for k in range(i, j):
                        latency = scan(keys[k], lengths[k]).latency_usec
                        record_scan(latency)
                        observe_scan_hist(latency)
                        advance(latency / clients)
                i = j
        self._ops_run += ops
        return db.clock.now - start

    def _run_attributed(self, workload: YCSBWorkload) -> float:
        """Transaction phase with per-request latency attribution.

        Attribution threads an OpContext through every call, which the
        lanes deliberately compile out, so this path keeps the per-op
        ``ctx`` dispatch. Latencies and side-effect ordering match
        :meth:`run` exactly; only the observation plumbing differs.
        """
        db = self.db
        start = db.clock.now
        self._mark_phase("run")
        attr = self.attribution
        get = db.get
        put = db.put
        scan = db.scan
        advance = db.clock.advance
        clients = self.clients
        record_read = self.read_latency.record
        record_update = self.update_latency.record
        record_scan = self.scan_latency.record
        observe_read_hist = self._op_hist["read"].observe
        observe_update_hist = self._op_hist["update"].observe
        observe_scan_hist = self._op_hist["scan"].observe
        by_source = self.read_latency_by_source
        observe_read = self._observe_read
        ops = 0
        for batch in self._phase_batches(workload, "run"):
            keys = batch.keys
            values = batch.values
            lengths = batch.scan_lengths
            for i, kind in enumerate(batch.kinds):
                if kind == OP_READ:
                    ctx = attr.begin("read")
                    result = get(keys[i], ctx=ctx)
                    latency = result.latency_usec
                    record_read(latency)
                    source = result.served_by
                    bucket = by_source.get(source)
                    if bucket is None:
                        bucket = by_source[source] = LatencyRecorder()
                    bucket.record(latency)
                    observe_read_hist(latency)
                    observe_read(source, latency)
                elif kind != OP_SCAN:
                    ctx = attr.begin("update")
                    latency = put(keys[i], values[i], ctx=ctx).latency_usec
                    record_update(latency)
                    observe_update_hist(latency)
                else:
                    ctx = attr.begin("scan")
                    latency = scan(keys[i], lengths[i], ctx=ctx).latency_usec
                    record_scan(latency)
                    observe_scan_hist(latency)
                if ctx is not None:
                    attr.observe(ctx, latency)
                ops += 1
                advance(latency / clients)
        self._ops_run += ops
        return db.clock.now - start

    def result(self, label: str, config: SystemConfig, elapsed_usec: float) -> RunResult:
        """Snapshot all metrics after :meth:`run`."""
        db = self.db
        compaction = db.executor.stats
        device_reads: dict[str, int] = {}
        device_writes: dict[str, int] = {}
        device_wear: dict[str, float] = {}
        device_life: dict[str, float] = {}
        total_time_sec = max(db.clock.now / 1_000_000.0, 1e-9)
        for tier in db.layout.tiers:
            device_reads[tier.name] = tier.device.stats.bytes_read
            device_writes[tier.name] = tier.device.stats.bytes_written
            device_wear[tier.name] = tier.device.wear_cycles
            write_rate = tier.device.stats.bytes_written / total_time_sec
            if write_rate > 0:
                seconds_of_life = device_lifetime_seconds(
                    tier.spec, tier.capacity_bytes, write_rate
                )
                device_life[tier.name] = seconds_of_life / (365 * 86_400)
            else:
                device_life[tier.name] = float("inf")
        migrations = getattr(db, "mutant_stats", None)
        return RunResult(
            label=label,
            system=config.system,
            layout_code=config.layout_code,
            operations=self._ops_run,
            elapsed_usec=elapsed_usec,
            throughput_kops=throughput_kops(self._ops_run, elapsed_usec),
            read_latency=self.read_latency.summary(),
            update_latency=self.update_latency.summary(),
            scan_latency=self.scan_latency.summary(),
            reads_by_source=db.stats.reads_by_source.as_dict(),
            read_latency_by_source={
                source: recorder.summary()
                for source, recorder in self.read_latency_by_source.items()
            },
            cache_hit_rate=db.cache.stats.hit_rate(),
            cache_hit_rate_data=db.cache.stats.hit_rate(BlockType.DATA),
            compactions=compaction.compactions,
            compaction_read_bytes=compaction.bytes_read,
            compaction_write_bytes=compaction.bytes_written,
            flush_bytes=db.stats.flush_bytes,
            wal_bytes=db.stats.wal_bytes,
            user_write_bytes=db.stats.user_write_bytes,
            write_amplification=db.stats.write_amplification(compaction.bytes_written),
            per_level_write_bytes=dict(compaction.per_level_write_bytes),
            pinned_records=compaction.records_pinned,
            pulled_up_records=compaction.records_pulled_up,
            migrations=migrations.migrations if migrations else 0,
            migration_bytes=migrations.migration_bytes if migrations else 0,
            device_read_bytes=device_reads,
            device_write_bytes=device_writes,
            device_wear_cycles=device_wear,
            device_lifetime_years=device_life,
            storage_cost_dollars=db.layout.total_cost_dollars(),
            metrics=db.metrics.snapshot(),
            timeline=self.sampler.to_dict() if self.sampler is not None else {},
            attribution=(
                self.attribution.to_dict() if self.attribution is not None else {}
            ),
        )


def run_experiment(
    config: SystemConfig,
    workload_config: YCSBConfig,
    *,
    label: str | None = None,
    sample_interval_ms: float | None = None,
    attribution_sample_every: int | None = None,
    slow_op_k: int = 8,
) -> RunResult:
    """Convenience wrapper: build, load, run, snapshot.

    ``sample_interval_ms`` turns on timeline sampling for the whole run
    (load, warmup and measured phases, attributed via phase markers).
    ``attribution_sample_every`` turns on per-request latency
    attribution for the measured phase (1 = every op).
    """
    workload = YCSBWorkload(workload_config)
    db = build_system(config, workload)
    runner = WorkloadRunner(
        db,
        clients=config.clients,
        sample_interval_ms=sample_interval_ms,
        attribution_sample_every=attribution_sample_every,
        slow_op_k=slow_op_k,
    )
    runner.load(workload)
    if workload_config.warmup_operations > 0:
        runner.warmup(workload)
    elapsed = runner.run(workload)
    return runner.result(label or f"{config.system}/{config.layout_code}", config, elapsed)
