"""One function per paper table/figure.

Each experiment function returns ``(headers, rows)`` ready for
:func:`repro.bench.reporting.format_experiment`, regenerating the same
rows/series the paper reports. Heavy simulation runs are memoized on the
shared :class:`ExperimentRunner` so figures that share a configuration
(e.g. Fig. 9a, Fig. 10 and Table 4 all use the 95/5 zipf-0.99
heterogeneous run) reuse one simulation.

The measurement protocol for engine experiments is load -> *aging* (an
unmeasured write-heavy phase that advances the LSM to the steady state a
50M-request run reaches) -> *settle* (unmeasured traffic at the target
mix) -> measured run. All systems get byte-identical traffic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.analysis.cost_model import (
    default_level_profiles,
    enumerate_configs,
    evaluate_config,
    pareto_frontier,
    table3_costs,
)
from repro.bench.harness import (
    RunResult,
    SystemConfig,
    WorkloadRunner,
    build_system,
)
from repro.bench.reporting import fmt, pct
from repro.core.mapper import ClockDistributionMapper
from repro.core.tracker import ClockTracker
from repro.storage.device import (
    NVM_SPEC,
    QLC_SPEC,
    TLC_SPEC,
    fio_large_write_latency,
    fio_random_read_latency,
)
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload
from repro.workloads.zipfian import ScrambledZipfianGenerator
from repro.common.rng import make_rng

#: Layouts compared in Fig. 2a / Fig. 9a / Table 4.
LAYOUTS = {"NVM": "NNNNN", "TLC": "TTTTT", "QLC": "QQQQQ", "Het": "NNNTQ"}


@dataclass(frozen=True)
class ExperimentScale:
    """Workload sizing for experiments (shrunk from the paper's scale)."""

    record_count: int = 60_000
    operation_count: int = 100_000
    aging_operations: int = 100_000
    settle_operations: int = 60_000
    value_bytes: int = 100
    cache_fraction: float = 0.05
    clients: int = 8
    seed: int = 42

    @staticmethod
    def from_env() -> "ExperimentScale":
        """Scale selected by $REPRO_BENCH_SCALE: quick | default | full."""
        name = os.environ.get("REPRO_BENCH_SCALE", "default")
        if name == "quick":
            return ExperimentScale(
                record_count=8_000,
                operation_count=12_000,
                aging_operations=12_000,
                settle_operations=8_000,
            )
        if name == "full":
            return ExperimentScale(
                record_count=100_000,
                operation_count=150_000,
                aging_operations=150_000,
                settle_operations=100_000,
            )
        return ExperimentScale()


@dataclass(frozen=True)
class RunKey:
    """Memoization key for one simulated run."""

    system: str
    layout: str
    read_pct: int
    distribution: str
    zipf_theta: float
    cache_disabled: bool
    pinning_threshold: float
    prism_overrides: tuple = ()
    row_cache_share: float = 0.0
    compaction_shape: str = "leveling"
    compaction_trigger: str = "size-ratio"
    compaction_picker: str = "default"


class ExperimentRunner:
    """Builds, ages and measures systems, memoizing by configuration."""

    def __init__(self, scale: ExperimentScale | None = None) -> None:
        self.scale = scale or ExperimentScale.from_env()
        self._results: dict[RunKey, RunResult] = {}

    def workload_config(self, *, read_pct: int = 95, distribution: str = "zipfian", zipf_theta: float = 0.99) -> YCSBConfig:
        scale = self.scale
        return YCSBConfig(
            record_count=scale.record_count,
            operation_count=scale.operation_count,
            read_proportion=read_pct / 100.0,
            update_proportion=1.0 - read_pct / 100.0,
            distribution=distribution,
            zipf_theta=zipf_theta,
            value_bytes=scale.value_bytes,
            seed=scale.seed,
        )

    def run(
        self,
        system: str,
        layout: str = "NNNTQ",
        *,
        read_pct: int = 95,
        distribution: str = "zipfian",
        zipf_theta: float = 0.99,
        cache_disabled: bool = False,
        pinning_threshold: float = 0.10,
        prism_overrides: dict | None = None,
        row_cache_share: float = 0.0,
        compaction_shape: str = "leveling",
        compaction_trigger: str = "size-ratio",
        compaction_picker: str = "default",
    ) -> RunResult:
        """Run one configuration (memoized).

        ``prism_overrides`` are extra :class:`PrismOptions` fields for
        ablation variants (e.g. ``{"up_compaction": False}``). The
        ``compaction_*`` names select the policy axes of
        :mod:`repro.lsm.strategy` (defaults: the paper's configuration).
        """
        overrides_key = tuple(sorted((prism_overrides or {}).items()))
        key = RunKey(
            system, layout, read_pct, distribution, zipf_theta,
            cache_disabled, pinning_threshold, overrides_key, row_cache_share,
            compaction_shape, compaction_trigger, compaction_picker,
        )
        cached = self._results.get(key)
        if cached is not None:
            return cached
        base = self.workload_config(read_pct=read_pct, distribution=distribution, zipf_theta=zipf_theta)
        aging = replace(
            base,
            read_proportion=0.5,
            update_proportion=0.5,
            warmup_operations=self.scale.aging_operations,
        )
        settle = replace(base, warmup_operations=self.scale.settle_operations)
        config = SystemConfig(
            system=system,
            layout_code=layout,
            cache_fraction=self.scale.cache_fraction,
            cache_disabled=cache_disabled,
            pinning_threshold=pinning_threshold,
            prism_overrides=dict(prism_overrides or {}),
            row_cache_share=row_cache_share,
            compaction_shape=compaction_shape,
            compaction_trigger=compaction_trigger,
            compaction_picker=compaction_picker,
            clients=self.scale.clients,
            seed=self.scale.seed,
        )
        workload = YCSBWorkload(base)
        db = build_system(config, workload)
        runner = WorkloadRunner(db, clients=config.clients)
        runner.load(workload)
        if self.scale.aging_operations:
            runner.warmup(YCSBWorkload(aging))
        if self.scale.settle_operations:
            runner.warmup(YCSBWorkload(settle))
        elapsed = runner.run(workload)
        result = runner.result(f"{system}/{layout}", config, elapsed)
        self._results[key] = result
        return result


#: Process-wide runner shared by the benchmark suite so figures reuse runs.
_shared_runner: ExperimentRunner | None = None


def shared_runner() -> ExperimentRunner:
    global _shared_runner
    if _shared_runner is None:
        _shared_runner = ExperimentRunner()
    return _shared_runner


# ----------------------------------------------------------------------
# Table 1 — device characteristics
# ----------------------------------------------------------------------
def table1_devices():
    headers = ["", "NVM", "TLC", "QLC"]
    specs = (NVM_SPEC, TLC_SPEC, QLC_SPEC)
    rows = [
        ["Lifetime (P/E cycles)"] + [spec.pe_cycles for spec in specs],
        ["Cost ($/GB)"] + [f"${spec.cost_per_gb:.2f}" for spec in specs],
        ["Avg Read Latency (4KB, us)"] + [fmt(fio_random_read_latency(spec)) for spec in specs],
        ["Avg Write Latency (64MB, us)"] + [fmt(fio_large_write_latency(spec)) for spec in specs],
    ]
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 2a — RocksDB throughput on homogeneous vs heterogeneous storage
# ----------------------------------------------------------------------
def fig2a_rocksdb_storage(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["config", "throughput (kops/s)", "avg read (us)"]
    rows = []
    for name, code in LAYOUTS.items():
        result = runner.run("rocksdb", code)
        rows.append([name, fmt(result.throughput_kops), fmt(result.read_latency.mean)])
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 3 — distribution of writes and reads across levels
# ----------------------------------------------------------------------
def fig3_level_distribution(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    result = runner.run("rocksdb", "NNNTQ")
    total_writes = sum(result.per_level_write_bytes.values()) or 1
    total_reads = sum(result.reads_by_source.values()) or 1
    headers = ["level", "write bytes %", "point reads %"]
    rows = []
    for level in range(5):
        writes = result.per_level_write_bytes.get(level, 0) / total_writes
        reads = result.reads_by_source.get(f"L{level}", 0) / total_reads
        rows.append([f"L{level}", pct(writes), pct(reads)])
    rows.append(["memtable", "-", pct(result.reads_by_source.get("memtable", 0) / total_reads)])
    return headers, rows


# ----------------------------------------------------------------------
# Table 2 — point reads across levels, block cache disabled
# ----------------------------------------------------------------------
def table2_read_levels(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    result = runner.run("rocksdb", "NNNTQ", cache_disabled=True)
    total = sum(result.reads_by_source.values()) or 1
    headers = ["Memtable", "L0", "L1", "L2", "L3", "L4"]
    row = [pct(result.reads_by_source.get("memtable", 0) / total)]
    for level in range(5):
        row.append(pct(result.reads_by_source.get(f"L{level}", 0) / total))
    return headers, [row]


# ----------------------------------------------------------------------
# Fig. 4 — cost vs latency of all 3^5 configurations
# ----------------------------------------------------------------------
def fig4_cost_latency():
    evaluations = enumerate_configs()
    frontier_codes = {e.code for e in pareto_frontier(evaluations)}
    headers = ["config", "avg read latency (us)", "cost (cents/GB)", "pareto", "kind"]
    rows = []
    for e in sorted(evaluations, key=lambda e: e.avg_read_latency_usec):
        kind = "homogeneous" if e.is_homogeneous else ("default" if e.code == "NNNTQ" else "")
        rows.append(
            [e.code, fmt(e.avg_read_latency_usec), fmt(e.cost_cents_per_gb), "*" if e.code in frontier_codes else "", kind]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Table 3 — storage cost of the four named configurations
# ----------------------------------------------------------------------
def table3_storage_costs():
    costs = table3_costs()
    headers = ["Configuration"] + list(costs)
    rows = [["Storage Cost"] + [f"${cost:.0f}" for cost in costs.values()]]
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 6 — CLOCK value distribution convergence
# ----------------------------------------------------------------------
def fig6_clock_distribution(n_keys: int = 20_000, snapshots: tuple[int, ...] = (1_000, 5_000, 20_000, 60_000, 120_000)):
    """Stream zipf-0.99 reads through a tracker; snapshot the histogram."""
    mapper = ClockDistributionMapper()
    tracker = ClockTracker(max(1, n_keys // 10), mapper)
    rng = make_rng(7, "fig6")
    generator = ScrambledZipfianGenerator(n_keys, 0.99, rng)
    headers = ["reads", "clock0", "clock1", "clock2", "clock3", "tracker_full"]
    rows = []
    reads = 0
    for target in sorted(snapshots):
        while reads < target:
            index = generator.next_index()
            tracker.on_read(f"user{index:012d}".encode(), version=1)
            tracker.run_evictions()
            reads += 1
        fractions = mapper.fractions()
        rows.append([reads] + [pct(f) for f in fractions] + ["yes" if tracker.is_full else "no"])
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 9a — throughput of the three systems across storage configs
# ----------------------------------------------------------------------
def fig9a_throughput(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["config", "RocksDB", "Mutant", "PrismDB"]
    rows = []
    for name, code in LAYOUTS.items():
        row = [name]
        for system in ("rocksdb", "mutant", "prismdb"):
            if system == "mutant" and name != "Het":
                row.append("n/a")  # Mutant is only meaningful across tiers
                continue
            row.append(fmt(runner.run(system, code).throughput_kops))
        rows.append(row)
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 9b — throughput vs read/update mix on the heterogeneous config
# ----------------------------------------------------------------------
MIX_READ_PCTS = (50, 80, 95, 100)


def fig9b_throughput_mixes(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["read %", "RocksDB", "Mutant", "PrismDB"]
    rows = []
    for read_pct in MIX_READ_PCTS:
        row = [read_pct]
        for system in ("rocksdb", "mutant", "prismdb"):
            row.append(fmt(runner.run(system, "NNNTQ", read_pct=read_pct).throughput_kops))
        rows.append(row)
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 10a/b — read and update latency, avg/p50/p95/p99 (95/5, Het)
# ----------------------------------------------------------------------
def fig10ab_latencies(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["system", "read avg", "read p50", "read p95", "read p99",
               "update avg", "update p50", "update p95", "update p99"]
    rows = []
    for system in ("rocksdb", "mutant", "prismdb"):
        result = runner.run(system, "NNNTQ")
        read, update = result.read_latency, result.update_latency
        rows.append(
            [system, fmt(read.mean), fmt(read.p50), fmt(read.p95), fmt(read.p99),
             fmt(update.mean), fmt(update.p50), fmt(update.p95), fmt(update.p99)]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 10c/d — average latencies vs read/update mix
# ----------------------------------------------------------------------
def fig10cd_latency_mixes(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["read %", "RocksDB read", "Mutant read", "PrismDB read",
               "RocksDB update", "Mutant update", "PrismDB update"]
    rows = []
    for read_pct in MIX_READ_PCTS:
        row = [read_pct]
        results = [runner.run(system, "NNNTQ", read_pct=read_pct) for system in ("rocksdb", "mutant", "prismdb")]
        row.extend(fmt(r.read_latency.mean) for r in results)
        row.extend(fmt(r.update_latency.mean) if r.update_latency.count else "n/a" for r in results)
        rows.append(row)
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 11 — performance across request distributions
# ----------------------------------------------------------------------
DISTRIBUTIONS = (
    ("z0.6", "zipfian", 0.6),
    ("z0.8", "zipfian", 0.8),
    ("z0.99", "zipfian", 0.99),
    ("z1.2", "zipfian", 1.2),
    ("z1.4", "zipfian", 1.4),
    ("latest", "latest", 0.99),
)


def fig11_distributions(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["distribution", "RocksDB kops", "PrismDB kops", "RocksDB p99 rd", "PrismDB p99 rd"]
    rows = []
    for label, distribution, theta in DISTRIBUTIONS:
        rocks = runner.run("rocksdb", "NNNTQ", distribution=distribution, zipf_theta=theta)
        prism = runner.run("prismdb", "NNNTQ", distribution=distribution, zipf_theta=theta)
        rows.append(
            [label, fmt(rocks.throughput_kops), fmt(prism.throughput_kops),
             fmt(rocks.read_latency.p99), fmt(prism.read_latency.p99)]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Table 4 — DRAM (block cache) hit rate improvement
# ----------------------------------------------------------------------
def table4_hit_rates(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["Config", "RocksDB", "Mutant", "PrismDB", "Improvement", "Data Block Improvement"]
    rows = []
    for name, code in (("Optane", "NNNNN"), ("TLC", "TTTTT"), ("QLC", "QQQQQ"), ("Het", "NNNTQ")):
        rocks = runner.run("rocksdb", code)
        prism = runner.run("prismdb", code)
        mutant_cell = (
            f"{runner.run('mutant', code).cache_hit_rate * 100:.1f}%" if name == "Het" else "n/a"
        )
        improvement = prism.cache_hit_rate / rocks.cache_hit_rate if rocks.cache_hit_rate else 0.0
        data_improvement = (
            prism.cache_hit_rate_data / rocks.cache_hit_rate_data
            if rocks.cache_hit_rate_data
            else 0.0
        )
        rows.append(
            [name, f"{rocks.cache_hit_rate * 100:.1f}%", mutant_cell,
             f"{prism.cache_hit_rate * 100:.1f}%", f"{improvement:.2f}x", f"{data_improvement:.2f}x"]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 12 — I/O usage and write amplification
# ----------------------------------------------------------------------
def fig12_io_amplification(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["system", "compactions", "compaction write MB", "QLC write MB",
               "migration MB", "write amplification", "device read MB", "device write MB"]
    rows = []
    for system in ("rocksdb", "mutant", "prismdb"):
        r = runner.run(system, "NNNTQ")
        qlc_writes = sum(
            n for name, n in r.device_write_bytes.items() if name.startswith("qlc")
        )
        rows.append(
            [system, r.compactions, fmt(r.compaction_write_bytes / 2**20),
             fmt(qlc_writes / 2**20), fmt(r.migration_bytes / 2**20),
             fmt(r.write_amplification, 2), fmt(r.total_io_read_bytes / 2**20),
             fmt(r.total_io_write_bytes / 2**20)]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 13 — throughput with DRAM caching disabled
# ----------------------------------------------------------------------
def fig13_no_cache(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["config", "RocksDB (no cache)", "PrismDB (no cache)"]
    rows = []
    for name, code in (("TLC", "TTTTT"), ("Het", "NNNTQ")):
        rocks = runner.run("rocksdb", code, cache_disabled=True)
        prism = runner.run("prismdb", code, cache_disabled=True)
        rows.append([name, fmt(rocks.throughput_kops), fmt(prism.throughput_kops)])
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 14 — effect of the pinning threshold
# ----------------------------------------------------------------------
THRESHOLDS = (0.0, 0.02, 0.10, 0.25, 0.50, 0.90)


def fig14_pinning_threshold(runner: ExperimentRunner | None = None):
    runner = runner or shared_runner()
    headers = ["pinning threshold", "PrismDB kops", "compaction write MB"]
    rows = []
    for threshold in THRESHOLDS:
        result = runner.run("prismdb", "NNNTQ", pinning_threshold=threshold)
        rows.append([pct(threshold), fmt(result.throughput_kops), fmt(result.compaction_write_bytes / 2**20)])
    return headers, rows


# ----------------------------------------------------------------------
# Ablations of the design choices DESIGN.md calls out
# ----------------------------------------------------------------------
def ablation_components(runner: ExperimentRunner | None = None):
    """PrismDB with individual mechanisms disabled, vs full and RocksDB."""
    runner = runner or shared_runner()
    variants = [
        ("rocksdb (no read-awareness)", "rocksdb", {}),
        ("prismdb (full)", "prismdb", {}),
        ("prismdb, no up-compaction", "prismdb", {"up_compaction": False}),
        ("prismdb, largest-file selection", "prismdb", {"score_based_selection": False}),
        ("prismdb, pin before tracker full", "prismdb", {"require_full_tracker": False}),
    ]
    headers = ["variant", "kops", "avg read (us)", "compaction write MB", "pins", "pulls"]
    rows = []
    for label, system, overrides in variants:
        result = runner.run(system, "NNNTQ", prism_overrides=overrides)
        rows.append(
            [label, fmt(result.throughput_kops), fmt(result.read_latency.mean),
             fmt(result.compaction_write_bytes / 2**20),
             result.pinned_records, result.pulled_up_records]
        )
    return headers, rows


def ext_latency_breakdown(runner: ExperimentRunner | None = None):
    """Where does each system's read latency come from? (extension)

    Decomposes measured read latency by the source that served the read,
    making the placement mechanism visible: PrismDB shifts read *mass*
    out of the slow-tier rows.
    """
    runner = runner or shared_runner()
    headers = ["source", "RocksDB share", "RocksDB avg us", "PrismDB share", "PrismDB avg us"]
    rocks = runner.run("rocksdb", "NNNTQ")
    prism = runner.run("prismdb", "NNNTQ")
    rows = []
    sources = ["memtable", "L0", "L1", "L2", "L3", "L4", "miss"]
    for source in sources:
        row = [source]
        for result in (rocks, prism):
            total = sum(s.count for s in result.read_latency_by_source.values()) or 1
            summary = result.read_latency_by_source.get(source)
            if summary is None:
                row.extend(["0.0%", "-"])
            else:
                row.extend([pct(summary.count / total), fmt(summary.mean)])
        rows.append(row)
    return headers, rows


def ext_caching_granularity(runner: ExperimentRunner | None = None):
    """§3.3 measured: block-granular vs object-granular DRAM caching.

    Same total DRAM budget, three ways to spend it: RocksDB with a pure
    block cache (the paper's baseline), RocksDB giving half the budget to
    an object-granularity row cache, and PrismDB with a pure block cache
    (hot-cold separation makes blocks hot-dense instead).
    """
    runner = runner or shared_runner()
    variants = [
        ("rocksdb, block cache only", "rocksdb", 0.0),
        ("rocksdb, half row cache", "rocksdb", 0.5),
        ("prismdb, block cache only", "prismdb", 0.0),
    ]
    headers = ["variant", "kops", "avg read (us)", "p99 read (us)"]
    rows = []
    for label, system, row_share in variants:
        result = runner.run(system, "NNNTQ", row_cache_share=row_share)
        rows.append(
            [label, fmt(result.throughput_kops), fmt(result.read_latency.mean),
             fmt(result.read_latency.p99)]
        )
    return headers, rows


def ext_scan_workload(runner: ExperimentRunner | None = None):
    """YCSB-E-style short range scans (extension; not in the paper's eval).

    Scans stress a different path than point reads — merging iterators
    across the memtable and every level — and benefit less from pinning
    (a scan touches cold neighbours regardless). Reported for
    completeness of the YCSB substrate.
    """
    runner = runner or shared_runner()
    headers = ["system", "kops", "avg scan (us)", "p99 scan (us)"]
    rows = []
    scale = runner.scale
    for system in ("rocksdb", "prismdb"):
        config = SystemConfig(
            system=system,
            layout_code="NNNTQ",
            cache_fraction=scale.cache_fraction,
            clients=scale.clients,
            seed=scale.seed,
        )
        base = YCSBConfig(
            record_count=scale.record_count,
            operation_count=max(1, scale.operation_count // 10),  # scans are heavy
            read_proportion=0.0,
            update_proportion=0.05,
            scan_proportion=0.95,
            max_scan_length=20,
            seed=scale.seed,
            warmup_operations=max(1, scale.settle_operations // 10),
        )
        workload = YCSBWorkload(base)
        db = build_system(config, workload)
        harness = WorkloadRunner(db, clients=config.clients)
        harness.load(workload)
        harness.warmup(workload)
        elapsed = harness.run(workload)
        result = harness.result(system, config, elapsed)
        rows.append(
            [system, fmt(result.throughput_kops), fmt(result.scan_latency.mean),
             fmt(result.scan_latency.p99)]
        )
    return headers, rows


def ablation_tracker_params(runner: ExperimentRunner | None = None):
    """CLOCK bits and tracker sizing sensitivity."""
    runner = runner or shared_runner()
    variants = [
        ("2 clock bits (paper)", {}),
        ("1 clock bit (recency only)", {"clock_bits": 1}),
        ("3 clock bits", {"clock_bits": 3}),
    ]
    headers = ["variant", "kops", "avg read (us)", "pins+pulls"]
    rows = []
    for label, overrides in variants:
        result = runner.run("prismdb", "NNNTQ", prism_overrides=overrides)
        rows.append(
            [label, fmt(result.throughput_kops), fmt(result.read_latency.mean),
             result.pinned_records + result.pulled_up_records]
        )
    return headers, rows


def ext_design_space(runner: ExperimentRunner | None = None):
    """Compaction design space: shape x mix, pinned router under each.

    The policy grid of Sarkar et al. (arXiv:2202.04522) applied to
    PrismDB: every compaction shape runs with the read-aware pinned
    router, at a read-heavy and a write-heavy mix, against the leveled
    RocksDB reference. The throughput winner per mix is starred — the
    who-wins-where result the `repro-bench sweep` subcommand explores on
    bigger grids (more mixes, layouts, triggers, pickers).
    """
    runner = runner or shared_runner()
    from repro.lsm.options import COMPACTION_SHAPES

    grid = [("rocksdb", "leveling")] + [
        ("prismdb", shape) for shape in COMPACTION_SHAPES
    ]
    headers = ["system", "shape", "mix (r/w)", "kops", "p99 read (us)", "WA",
               "pinned"]
    rows = []
    for read_pct in (95, 50):
        results = [
            runner.run(system, "NNNTQ", read_pct=read_pct,
                       compaction_shape=shape)
            for system, shape in grid
        ]
        winner = max(range(len(grid)), key=lambda i: results[i].throughput_kops)
        for i, ((system, shape), result) in enumerate(zip(grid, results)):
            star = "*" if i == winner else ""
            rows.append(
                [system, shape, f"{read_pct}/{100 - read_pct}",
                 f"{fmt(result.throughput_kops)}{star}",
                 fmt(result.read_latency.p99),
                 fmt(result.write_amplification),
                 result.pinned_records]
            )
    return headers, rows
