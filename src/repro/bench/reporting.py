"""Fixed-width table rendering for experiment output.

Every benchmark regenerates the corresponding paper artifact as a plain
text table, printed to stdout and optionally written under
``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    def line(values):
        return "  ".join(value.ljust(width) for value, width in zip(values, widths)).rstrip()

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_experiment(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]], *, notes: str = "") -> str:
    """A titled table block, ready to print or save."""
    parts = [f"== {title} ==", format_table(headers, rows)]
    if notes:
        parts.append(notes)
    return "\n".join(parts) + "\n"


def fmt(value: float, digits: int = 1) -> str:
    """Compact numeric formatting for table cells."""
    return f"{value:.{digits}f}"


def pct(value: float) -> str:
    return f"{value * 100:.1f}%"


# ----------------------------------------------------------------------
# Registry-driven views (see docs/OBSERVABILITY.md)
# ----------------------------------------------------------------------
def _series_name(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def format_metrics_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as two text tables.

    Scalars (counters and gauges) come first, one series per row;
    histogram series follow with their precomputed summary columns. The
    input is the plain-dict snapshot, so this also works on snapshots
    loaded back from JSON.
    """
    scalar_rows = []
    histogram_rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        for row in entry["series"]:
            series = _series_name(name, row["labels"])
            if entry["type"] == "histogram":
                histogram_rows.append(
                    [
                        series,
                        row["count"],
                        fmt(row["mean"]),
                        fmt(row["p50"]),
                        fmt(row["p95"]),
                        fmt(row["p99"]),
                        fmt(row["max"]),
                    ]
                )
            else:
                value = row["value"]
                scalar_rows.append(
                    [series, f"{value:.0f}" if value == int(value) else fmt(value, 2)]
                )
    parts = []
    if scalar_rows:
        parts.append(format_table(["metric", "value"], scalar_rows))
    if histogram_rows:
        parts.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                histogram_rows,
            )
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"


def latency_breakdown_table(snapshot: dict) -> tuple[list[str], list[list[object]]]:
    """The Fig. 10 latency breakdown, derived from a registry snapshot.

    One row per operation kind (``op.latency_usec``) followed by one row
    per read-serving source (``read.latency_usec``), each with its share
    of operations and nearest-rank percentiles — built from the bucketed
    histograms alone, no per-sample data required.
    """
    headers = ["phase", "ops", "share", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"]
    rows: list[list[object]] = []

    def section(metric: str, prefix: str) -> None:
        entry = snapshot.get(metric)
        if entry is None:
            return
        series = [row for row in entry["series"] if row["count"]]
        total = sum(row["count"] for row in series) or 1
        for row in sorted(series, key=lambda r: -r["count"]):
            label = next(iter(row["labels"].values()), "?")
            rows.append(
                [
                    f"{prefix}{label}",
                    row["count"],
                    pct(row["count"] / total),
                    fmt(row["mean"]),
                    fmt(row["p50"]),
                    fmt(row["p95"]),
                    fmt(row["p99"]),
                    fmt(row["max"]),
                ]
            )

    section("op.latency_usec", "op:")
    section("read.latency_usec", "read from ")
    return headers, rows


# ----------------------------------------------------------------------
# Timeline views (see repro.obs.timeline and docs/OBSERVABILITY.md)
# ----------------------------------------------------------------------
SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a series as a one-line sparkline, downsampled to ``width``.

    Downsampling averages fixed-size chunks so a 4000-sample series still
    fits a terminal row; the scale is min..max of the (downsampled)
    series, so shape survives even when absolute values are huge.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk):max(int(i * chunk) + 1, int((i + 1) * chunk))])
            / max(1, int((i + 1) * chunk) - int(i * chunk))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[1] * len(values)
    steps = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[max(1, min(steps, 1 + int((v - lo) / span * (steps - 1))))]
        for v in values
    )


def _phase_spans(timeline: dict) -> str:
    markers = timeline.get("phases", [])
    if not markers:
        return ""
    parts = [f"{phase}@{at_ms:.1f}ms" for at_ms, phase in markers]
    return "phases: " + ", ".join(parts)


def render_timeline_sparklines(
    timeline: dict, series_names: Sequence[str], *, width: int = 72
) -> str:
    """One sparkline row per series, annotated with min/max/last."""
    t_ms = timeline.get("t_ms", [])
    if not t_ms:
        return "(empty timeline)"
    out = [
        f"{len(t_ms)} samples, every {timeline.get('interval_ms', 0.0):g} sim-ms, "
        f"{t_ms[0]:.1f}..{t_ms[-1]:.1f} ms"
        + (f", {timeline['dropped']} dropped" if timeline.get("dropped") else "")
    ]
    spans = _phase_spans(timeline)
    if spans:
        out.append(spans)
    name_width = max(len(name) for name in series_names)
    for name in series_names:
        values = timeline["series"].get(name, [])
        lo = min(values) if values else 0.0
        hi = max(values) if values else 0.0
        last = values[-1] if values else 0.0
        out.append(
            f"{name.ljust(name_width)}  {sparkline(values, width)}  "
            f"min={lo:g} max={hi:g} last={last:g}"
        )
    return "\n".join(out)


def render_timeline_table(
    timeline: dict, series_names: Sequence[str], *, max_rows: int = 40
) -> str:
    """Sampled rows as a fixed-width table (strided down to ``max_rows``)."""
    t_ms = timeline.get("t_ms", [])
    if not t_ms:
        return "(empty timeline)"
    stride = max(1, (len(t_ms) + max_rows - 1) // max_rows)
    headers = ["t_ms", "phase"] + list(series_names)
    rows = []
    for i in range(0, len(t_ms), stride):
        row = [f"{t_ms[i]:.1f}", timeline["phase"][i]]
        for name in series_names:
            values = timeline["series"].get(name, [])
            row.append(fmt(values[i], 2) if i < len(values) else "")
        rows.append(row)
    suffix = f"\n({len(t_ms)} samples, showing every {stride})" if stride > 1 else ""
    return format_table(headers, rows) + suffix


def timeline_to_csv(timeline: dict, series_names: Sequence[str] | None = None) -> str:
    """Full-resolution CSV export (t_ms, phase, then one column per series)."""
    names = list(series_names) if series_names else sorted(timeline.get("series", {}))
    lines = [",".join(["t_ms", "phase"] + names)]
    t_ms = timeline.get("t_ms", [])
    for i, at_ms in enumerate(t_ms):
        cells = [f"{at_ms:g}", timeline["phase"][i]]
        for name in names:
            values = timeline["series"].get(name, [])
            cells.append(f"{values[i]:g}" if i < len(values) else "")
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
