"""Fixed-width table rendering for experiment output.

Every benchmark regenerates the corresponding paper artifact as a plain
text table, printed to stdout and optionally written under
``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    def line(values):
        return "  ".join(value.ljust(width) for value, width in zip(values, widths)).rstrip()

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_experiment(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]], *, notes: str = "") -> str:
    """A titled table block, ready to print or save."""
    parts = [f"== {title} ==", format_table(headers, rows)]
    if notes:
        parts.append(notes)
    return "\n".join(parts) + "\n"


def fmt(value: float, digits: int = 1) -> str:
    """Compact numeric formatting for table cells."""
    return f"{value:.{digits}f}"


def pct(value: float) -> str:
    return f"{value * 100:.1f}%"


# ----------------------------------------------------------------------
# Registry-driven views (see docs/OBSERVABILITY.md)
# ----------------------------------------------------------------------
def _series_name(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def format_metrics_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as two text tables.

    Scalars (counters and gauges) come first, one series per row;
    histogram series follow with their precomputed summary columns. The
    input is the plain-dict snapshot, so this also works on snapshots
    loaded back from JSON.
    """
    scalar_rows = []
    histogram_rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        for row in entry["series"]:
            series = _series_name(name, row["labels"])
            if entry["type"] == "histogram":
                histogram_rows.append(
                    [
                        series,
                        row["count"],
                        fmt(row["mean"]),
                        fmt(row["p50"]),
                        fmt(row["p95"]),
                        fmt(row["p99"]),
                        fmt(row["max"]),
                    ]
                )
            else:
                value = row["value"]
                scalar_rows.append(
                    [series, f"{value:.0f}" if value == int(value) else fmt(value, 2)]
                )
    parts = []
    if scalar_rows:
        parts.append(format_table(["metric", "value"], scalar_rows))
    if histogram_rows:
        parts.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                histogram_rows,
            )
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"


def latency_breakdown_table(snapshot: dict) -> tuple[list[str], list[list[object]]]:
    """The Fig. 10 latency breakdown, derived from a registry snapshot.

    One row per operation kind (``op.latency_usec``) followed by one row
    per read-serving source (``read.latency_usec``), each with its share
    of operations and nearest-rank percentiles — built from the bucketed
    histograms alone, no per-sample data required.
    """
    headers = ["phase", "ops", "share", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"]
    rows: list[list[object]] = []

    def section(metric: str, prefix: str) -> None:
        entry = snapshot.get(metric)
        if entry is None:
            return
        series = [row for row in entry["series"] if row["count"]]
        total = sum(row["count"] for row in series) or 1
        for row in sorted(series, key=lambda r: -r["count"]):
            label = next(iter(row["labels"].values()), "?")
            rows.append(
                [
                    f"{prefix}{label}",
                    row["count"],
                    pct(row["count"] / total),
                    fmt(row["mean"]),
                    fmt(row["p50"]),
                    fmt(row["p95"]),
                    fmt(row["p99"]),
                    fmt(row["max"]),
                ]
            )

    section("op.latency_usec", "op:")
    section("read.latency_usec", "read from ")
    return headers, rows
