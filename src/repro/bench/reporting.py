"""Fixed-width table rendering for experiment output.

Every benchmark regenerates the corresponding paper artifact as a plain
text table, printed to stdout and optionally written under
``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    def line(values):
        return "  ".join(value.ljust(width) for value, width in zip(values, widths)).rstrip()

    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_experiment(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]], *, notes: str = "") -> str:
    """A titled table block, ready to print or save."""
    parts = [f"== {title} ==", format_table(headers, rows)]
    if notes:
        parts.append(notes)
    return "\n".join(parts) + "\n"


def fmt(value: float, digits: int = 1) -> str:
    """Compact numeric formatting for table cells."""
    return f"{value:.{digits}f}"


def pct(value: float) -> str:
    return f"{value * 100:.1f}%"
