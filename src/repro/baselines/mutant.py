"""The Mutant baseline (Yoon et al., SoCC'18), as configured in §6.

Mutant is a storage layer under an unmodified LSM: it tracks each SST
file's *temperature* (exponentially cooled access frequency, cooling
coefficient alpha = 0.999) and, every optimization epoch (1 s), re-ranks
files and migrates them so the hottest files sit on the fastest devices,
subject to device capacities. Placement is whole-file — no hot-cold
separation *within* a file — and each migration is real I/O that locks
the file while it moves, which is why reads stall during migrations (the
effect the paper blames for Mutant's latency spikes). The paper's
"migration resistance" optimization is deliberately not implemented,
matching the evaluation setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import seconds
from repro.errors import CapacityError, ConfigError
from repro.lsm.db import LsmDB, ReadResult, WriteResult
from repro.lsm.layout import StorageLayout
from repro.lsm.options import DBOptions
from repro.storage.tier import StorageTier


@dataclass
class MutantOptions:
    """Mutant knobs (§6 baseline configuration)."""

    #: Per-epoch multiplicative temperature decay.
    cooling_alpha: float = 0.999
    #: Optimization epoch length in simulated microseconds (paper: 1 s).
    epoch_usec: float = seconds(1)
    #: Cap on migrations per epoch; None = unlimited (paper default).
    max_migrations_per_epoch: int | None = None
    #: Mutant's "migration resistance" optimization (its paper's knob the
    #: PrismDB evaluation deliberately left off): a file only migrates if
    #: its temperature differs from the tier-boundary temperature by this
    #: relative margin, trading placement precision for fewer migrations.
    #: 0.0 disables resistance (the PrismDB paper's configuration).
    migration_resistance: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling_alpha < 1.0:
            raise ConfigError("cooling_alpha must be in (0, 1)")
        if self.epoch_usec <= 0:
            raise ConfigError("epoch_usec must be positive")
        if self.migration_resistance < 0.0:
            raise ConfigError("migration_resistance must be non-negative")


@dataclass
class MutantStats:
    """Optimizer activity counters."""

    epochs: int = 0
    migrations: int = 0
    migration_bytes: int = 0
    migrations_skipped_capacity: int = 0
    migrations_resisted: int = 0


class MutantDB(LsmDB):
    """RocksDB engine + Mutant's temperature-driven file migration."""

    def __init__(
        self,
        layout: StorageLayout,
        options: DBOptions | None = None,
        mutant_options: MutantOptions | None = None,
        **kwargs,
    ) -> None:
        kwargs.setdefault("name", "mutant")
        super().__init__(layout, options, **kwargs)
        self.mutant_options = mutant_options or MutantOptions()
        self.mutant_stats = MutantStats()
        # file_id -> cooled temperature.
        self._temperatures: dict[int, float] = {}
        self._counts_at_last_epoch: dict[int, int] = {}
        self._last_epoch_usec = self.clock.now
        # Fast-to-slow tier order for greedy placement.
        self._tiers_fast_first: list[StorageTier] = sorted(
            layout.tiers, key=lambda tier: tier.spec.read_latency_usec
        )

    @classmethod
    def create(
        cls,
        layout_code: str = "NNNTQ",
        options: DBOptions | None = None,
        mutant_options: MutantOptions | None = None,
        **kwargs,
    ) -> "MutantDB":
        from repro.common.clock import SimClock
        from repro.lsm.layout import build_layout

        options = options or DBOptions()
        clock = kwargs.pop("clock", None) or SimClock()
        layout = build_layout(layout_code, options, clock)
        return cls(layout, options, mutant_options, clock=clock, **kwargs)

    def _fresh_instance(self) -> "MutantDB":
        """Restart: temperatures are volatile and start cold."""
        return type(self)(
            self.layout,
            self.options,
            self.mutant_options,
            clock=self.clock,
            backend=self.backend,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Epoch scheduling: piggybacked on client operations, since the
    # simulation has no free-running threads.
    # ------------------------------------------------------------------
    def get(self, user_key: bytes, *, ctx=None) -> ReadResult:
        self._maybe_run_epoch()
        return super().get(user_key, ctx=ctx)

    def _write(self, record, ctx=None) -> WriteResult:
        self._maybe_run_epoch()
        return super()._write(record, ctx)

    def _maybe_run_epoch(self) -> None:
        if self.clock.now - self._last_epoch_usec >= self.mutant_options.epoch_usec:
            self._last_epoch_usec = self.clock.now
            self.run_optimizer_epoch()

    def read_lane(self):
        """Base read lane with the per-op epoch check prepended."""
        if type(self).get is not MutantDB.get:
            return self.get
        base = self._build_read_lane()
        maybe_epoch = self._maybe_run_epoch

        def lookup(user_key):
            maybe_epoch()
            return base(user_key)

        return lookup

    def write_lane(self):
        """Base write lane with the per-op epoch check prepended."""
        if type(self)._write is not MutantDB._write or type(self).put is not LsmDB.put:
            return self.put
        base = self._build_write_lane()
        maybe_epoch = self._maybe_run_epoch

        def commit(user_key, value):
            maybe_epoch()
            return base(user_key, value)

        return commit

    # ------------------------------------------------------------------
    # The optimizer
    # ------------------------------------------------------------------
    def _cool_and_update_temperatures(self) -> None:
        """temp = alpha * temp + accesses-since-last-epoch, per live file."""
        alpha = self.mutant_options.cooling_alpha
        live_ids = {table.file_id for _, table in self.manifest.all_files()}
        for file_id in list(self._temperatures):
            if file_id not in live_ids:
                del self._temperatures[file_id]
                self._counts_at_last_epoch.pop(file_id, None)
        for file_id in live_ids:
            total = self.file_read_counts.get(file_id, 0)
            delta = total - self._counts_at_last_epoch.get(file_id, 0)
            self._counts_at_last_epoch[file_id] = total
            self._temperatures[file_id] = alpha * self._temperatures.get(file_id, 0.0) + delta

    def temperature(self, file_id: int) -> float:
        return self._temperatures.get(file_id, 0.0)

    def run_optimizer_epoch(self) -> int:
        """Re-rank files by temperature and migrate; returns migrations."""
        self.mutant_stats.epochs += 1
        self._cool_and_update_temperatures()
        tables = [table for _, table in self.manifest.all_files()]
        tables.sort(key=lambda t: self._temperatures.get(t.file_id, 0.0), reverse=True)

        # Greedy assignment: hottest files onto the fastest tier until
        # its nominal capacity is spoken for, then the next tier, etc.
        # Budgets use nominal (level-target) sizes so Mutant gets the
        # same storage the leveled layouts use, not the compaction
        # headroom on top of it.
        budgets = {tier.name: tier.nominal_bytes for tier in self._tiers_fast_first}
        assignment: dict[int, StorageTier] = {}
        boundary_temp: dict[str, float] = {}
        for table in tables:
            placed = False
            for tier in self._tiers_fast_first:
                if budgets[tier.name] >= table.size_bytes:
                    budgets[tier.name] -= table.size_bytes
                    assignment[table.file_id] = tier
                    # The coldest file assigned to a tier defines its
                    # boundary temperature (tables arrive hottest-first).
                    boundary_temp[tier.name] = self._temperatures.get(table.file_id, 0.0)
                    placed = True
                    break
            if not placed:
                assignment[table.file_id] = self._tiers_fast_first[-1]

        migrations = 0
        limit = self.mutant_options.max_migrations_per_epoch
        resistance = self.mutant_options.migration_resistance
        for table in tables:
            if limit is not None and migrations >= limit:
                break
            target = assignment[table.file_id]
            if table.tier is target:
                continue
            if resistance > 0.0:
                # Hysteresis: skip files whose temperature sits within
                # the resistance band of the target tier's boundary.
                temp = self._temperatures.get(table.file_id, 0.0)
                boundary = boundary_temp.get(target.name, 0.0)
                if abs(temp - boundary) <= resistance * max(boundary, 1.0):
                    self.mutant_stats.migrations_resisted += 1
                    continue
            try:
                self.backend.migrate_file(table.file, target)
            except CapacityError:
                self.mutant_stats.migrations_skipped_capacity += 1
                continue
            migrations += 1
            self.mutant_stats.migrations += 1
            self.mutant_stats.migration_bytes += table.size_bytes
        return migrations
