"""The RocksDB baseline.

Vanilla RocksDB is the engine with its default behaviour: largest-file
compaction picking and route-everything-down merging. On a homogeneous
layout this is "RocksDB on one SSD"; on NNNTQ it is the paper's *LSM-het*
configuration (§3.2) — levels mapped to tiers but with no read-awareness,
which is exactly the strawman Fig. 2a shows barely beating pure QLC.

Per-request latency attribution flows through unchanged: the baseline
adds no components of its own, so ``get``/``put``/``scan`` accept the
inherited ``ctx`` keyword and the breakdown contains only core LSM
components (memtable, caches, filter/index/data blocks, WAL, devices).
"""

from __future__ import annotations

from repro.lsm.compaction import CompactDownRouter, LargestFilePicker
from repro.lsm.db import LsmDB
from repro.lsm.layout import StorageLayout
from repro.lsm.options import DBOptions


class RocksDBLike(LsmDB):
    """Write-aware leveled LSM: the paper's RocksDB baseline."""

    def __init__(
        self,
        layout: StorageLayout,
        options: DBOptions | None = None,
        **kwargs,
    ) -> None:
        kwargs.setdefault("name", "rocksdb")
        picker = kwargs.pop("picker", None)
        if picker is None and (options is None or options.compaction_picker == "default"):
            # RocksDB's own default; a non-"default" compaction_picker in
            # the options names an explicit override and wins instead.
            picker = LargestFilePicker()
        super().__init__(
            layout,
            options,
            picker=picker,
            router=kwargs.pop("router", None) or CompactDownRouter(),
            **kwargs,
        )
