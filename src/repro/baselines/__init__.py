"""Baseline systems the paper compares against: RocksDB and Mutant."""

from repro.baselines.mutant import MutantDB, MutantOptions, MutantStats
from repro.baselines.rocksdb import RocksDBLike

__all__ = ["MutantDB", "MutantOptions", "MutantStats", "RocksDBLike"]
