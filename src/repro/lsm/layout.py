"""Level-to-tier storage layouts.

A layout maps each LSM level to a storage tier, using the paper's
five-letter configuration strings: ``"NNNTQ"`` places L0-L2 on one NVM
tier, L3 on TLC, and L4 on QLC (the paper's default heterogeneous
configuration, Fig. 2b); ``"QQQQQ"`` is homogeneous QLC, and so on.
Consecutive levels with the same technology share one physical tier (and
therefore one device queue), as they would share one SSD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import SimClock
from repro.errors import ConfigError
from repro.lsm.options import DBOptions
from repro.storage.device import SPECS_BY_CODE
from repro.storage.tier import StorageTier


@dataclass
class StorageLayout:
    """Resolved layout: one tier per run of identical level codes."""

    code: str
    tiers: list[StorageTier]
    level_to_tier: list[StorageTier]
    wal_tier: StorageTier

    def tier_for_level(self, level: int) -> StorageTier:
        if not 0 <= level < len(self.level_to_tier):
            raise ValueError(f"level out of range: {level}")
        return self.level_to_tier[level]

    @property
    def num_levels(self) -> int:
        return len(self.level_to_tier)

    def total_cost_dollars(self) -> float:
        return sum(tier.device.cost_dollars() for tier in self.tiers)

    def describe(self) -> str:
        parts = []
        for index, tier in enumerate(self.level_to_tier):
            parts.append(f"L{index}={tier.spec.name}")
        return f"{self.code} ({', '.join(parts)})"


def build_layout(
    code: str,
    options: DBOptions,
    clock: SimClock,
    *,
    capacity_headroom: float = 4.0,
) -> StorageLayout:
    """Create tiers for a configuration string like ``"NNNTQ"``.

    Each maximal run of identical codes becomes one tier whose capacity
    is the sum of its levels' targets times ``capacity_headroom`` (room
    for compaction transients and level overshoot). The WAL lives on the
    tier hosting L0, as it does on the paper's testbed where the fastest
    device holds the log.
    """
    code = code.upper()
    if len(code) != options.num_levels:
        raise ConfigError(
            f"layout code {code!r} has {len(code)} levels but options "
            f"specify {options.num_levels}"
        )
    for letter in code:
        if letter not in SPECS_BY_CODE:
            raise ConfigError(f"unknown device code {letter!r} in {code!r}")

    tiers: list[StorageTier] = []
    level_to_tier: list[StorageTier] = []
    run_start = 0
    for level in range(len(code) + 1):
        at_end = level == len(code)
        if at_end or (level > 0 and code[level] != code[run_start]):
            letter = code[run_start]
            spec = SPECS_BY_CODE[letter]
            capacity = sum(
                options.level_target_bytes(lv) for lv in range(run_start, level)
            )
            tier = StorageTier(
                name=f"{spec.name.lower()}-L{run_start}" + (f"-L{level - 1}" if level - 1 > run_start else ""),
                spec=spec,
                capacity_bytes=max(1, int(capacity * capacity_headroom)),
                clock=clock,
                nominal_bytes=max(1, int(capacity)),
            )
            tiers.append(tier)
            for _ in range(run_start, level):
                level_to_tier.append(tier)
            run_start = level
    return StorageLayout(code=code, tiers=tiers, level_to_tier=level_to_tier, wal_tier=level_to_tier[0])


#: The paper's named configurations.
def nnntq_layout(options: DBOptions | None = None, clock: SimClock | None = None, **kwargs) -> StorageLayout:
    """The paper's default heterogeneous configuration (Fig. 2b)."""
    return build_layout("NNNTQ", options or DBOptions(), clock or SimClock(), **kwargs)


def homogeneous_layout(letter: str, options: DBOptions | None = None, clock: SimClock | None = None, **kwargs) -> StorageLayout:
    """A single-technology configuration, e.g. ``homogeneous_layout("Q")``."""
    options = options or DBOptions()
    return build_layout(letter * options.num_levels, options, clock or SimClock(), **kwargs)
