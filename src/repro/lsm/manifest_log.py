"""The MANIFEST: a durable log of version edits.

Real LSM engines persist the level structure as a log of *version edits*
(file added at level L, file removed from level L) so that the tree can
be reconstructed after a restart without scanning storage. This module
implements that log over the simulated backend: every edit is appended
(and charged as a device write on the manifest's tier), and
:func:`replay_manifest` folds the edit sequence back into the live file
set per level.

Together with the WAL this gives the engine a complete restart story:
``LsmDB.reopen`` rebuilds the manifest from this log, re-attaches the
surviving SSTables, and replays the WAL into a fresh memtable.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import CorruptionError
from repro.storage.tier import StorageTier

_RECORD = struct.Struct("<BIB")  # op, file_id, level


class EditOp(enum.IntEnum):
    ADD_FILE = 1
    REMOVE_FILE = 2


@dataclass(frozen=True)
class VersionEdit:
    """One manifest record."""

    op: EditOp
    file_id: int
    level: int

    def encode(self) -> bytes:
        return _RECORD.pack(int(self.op), self.file_id, self.level)

    @staticmethod
    def decode_from(buf: bytes, offset: int) -> tuple["VersionEdit", int]:
        if offset + _RECORD.size > len(buf):
            raise CorruptionError(f"truncated manifest record at {offset}")
        op, file_id, level = _RECORD.unpack_from(buf, offset)
        try:
            edit_op = EditOp(op)
        except ValueError as exc:
            raise CorruptionError(f"bad manifest op {op} at {offset}") from exc
        return VersionEdit(edit_op, file_id, level), offset + _RECORD.size


class ManifestLog:
    """Append-only version-edit log charged to one tier's device."""

    def __init__(self, tier: StorageTier) -> None:
        self._tier = tier
        self._edits: list[VersionEdit] = []
        self.bytes_written = 0

    def __len__(self) -> int:
        return len(self._edits)

    def record_add(self, level: int, file_id: int) -> None:
        self._append(VersionEdit(EditOp.ADD_FILE, file_id, level))

    def record_remove(self, level: int, file_id: int) -> None:
        self._append(VersionEdit(EditOp.REMOVE_FILE, file_id, level))

    def _append(self, edit: VersionEdit) -> None:
        self._edits.append(edit)
        payload = edit.encode()
        self.bytes_written += len(payload)
        # Manifest appends are small sequential writes off the critical
        # path of user operations.
        self._tier.device.write(len(payload), foreground=False)

    def serialized(self) -> bytes:
        """The full log as bytes (what a restart would read)."""
        return b"".join(edit.encode() for edit in self._edits)

    def edits(self) -> list[VersionEdit]:
        return list(self._edits)

    def compact(self, live: dict[int, int]) -> None:
        """Rewrite the log to just the live set (manifest compaction).

        ``live`` maps file_id -> level. Long-running engines periodically
        rewrite the MANIFEST so it doesn't grow without bound.
        """
        self._edits = [
            VersionEdit(EditOp.ADD_FILE, file_id, level)
            for file_id, level in sorted(live.items())
        ]
        payload_size = sum(len(edit.encode()) for edit in self._edits)
        self.bytes_written += payload_size
        self._tier.device.write(payload_size, foreground=False)


def decode_manifest(buf: bytes) -> list[VersionEdit]:
    """Parse a serialized manifest back into its edit sequence."""
    edits: list[VersionEdit] = []
    offset = 0
    while offset < len(buf):
        edit, offset = VersionEdit.decode_from(buf, offset)
        edits.append(edit)
    return edits


def replay_manifest(edits: list[VersionEdit]) -> dict[int, int]:
    """Fold edits into the live file set: file_id -> level.

    Raises :class:`CorruptionError` on impossible sequences (removing a
    file that is not live, adding a live file twice).
    """
    live: dict[int, int] = {}
    for edit in edits:
        if edit.op == EditOp.ADD_FILE:
            if edit.file_id in live:
                raise CorruptionError(f"file {edit.file_id} added twice")
            live[edit.file_id] = edit.level
        else:
            if live.get(edit.file_id) != edit.level:
                raise CorruptionError(
                    f"file {edit.file_id} removed from L{edit.level} but "
                    f"live at {live.get(edit.file_id)}"
                )
            del live[edit.file_id]
    return live
