"""Write-ahead log.

Every update is appended (a foreground device write on the WAL's tier)
before it enters the memtable, so update latency includes one log write —
the dominant device cost of the paper's update path. The log is modeled
as an append stream charged directly to the tier's device; segments are
truncated when the memtable they cover is flushed.
"""

from __future__ import annotations

from repro.lsm.record import Record
from repro.storage.tier import StorageTier


class WriteAheadLog:
    """Append-only log charged to one tier's device."""

    def __init__(self, tier: StorageTier, *, sync_every: int = 1) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1: {sync_every}")
        self._tier = tier
        self._sync_every = sync_every
        self._appends_since_sync = 0
        self._segment: list[Record] = []
        self.segment_bytes = 0
        self.total_bytes = 0
        self.total_appends = 0
        self.truncations = 0

    @property
    def tier(self) -> StorageTier:
        return self._tier

    def append(self, record: Record, ctx=None, *, size: int | None = None) -> float:
        """Log one record; returns the simulated write latency.

        With ``sync_every`` > 1, writes are group-committed: only every
        N-th append pays the device's program latency (the others ride
        in the same batch and pay only the transfer cost). ``ctx``
        attributes the log write to ``(wal, tier)`` on the request's
        latency breakdown. ``size`` lets callers that already computed
        ``record.encoded_size()`` (the write fast lane) skip recomputing
        it here.
        """
        if size is None:
            size = record.encoded_size()
        self._segment.append(record)
        self.segment_bytes += size
        self.total_bytes += size
        self.total_appends += 1
        self._appends_since_sync += 1
        if self._appends_since_sync >= self._sync_every:
            self._appends_since_sync = 0
            if ctx is not None:
                ctx.component = "wal"
            return self._tier.device.write(size, foreground=True, ctx=ctx)
        transfer = size / self._tier.spec.write_bandwidth_bps * 1_000_000.0
        self._tier.device.stats.bytes_written_foreground += size
        if ctx is not None:
            ctx.add("wal", self._tier.name, transfer)
        return transfer

    def truncate(self) -> None:
        """Drop the current segment (its memtable has been flushed)."""
        self._segment = []
        self.segment_bytes = 0
        self.truncations += 1

    def replay(self) -> list[Record]:
        """Records of the live segment, in append order (crash recovery).

        Replaying reads the segment back from the device; the read is
        charged as sequential background I/O.
        """
        if self.segment_bytes:
            self._tier.device.read(self.segment_bytes, foreground=False)
        return list(self._segment)
