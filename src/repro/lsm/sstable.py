"""Sorted String Tables.

An SSTable is one immutable on-"disk" file: a run of 4 KB data blocks in
internal-key order, followed by a bloom-filter block and an index block.
The read path is the one the paper describes for RocksDB: consult the
filter (skip the file if definitely absent), binary-search the index for
the data block, read the block, binary-search inside it. Every block
access flows through the shared :class:`~repro.lsm.block_cache.BlockCache`
so DRAM hits and device misses are charged faithfully.

Each table also carries the *popularity score* PrismDB assigns at build
time (Σ clockⁿ over its entries, §4.3), used by the read-aware compaction
picker.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import CorruptionError
from repro.lsm.block import (
    DataBlock,
    DataBlockBuilder,
    extend_records_from,
    extend_spans_from,
)
from repro.lsm.block_cache import BlockCache, BlockType
from repro.lsm.bloom import BloomFilter
from repro.lsm.record import MAX_SEQNO, Record, ValueKind
from repro.storage.backend import SimFile, StorageBackend
from repro.storage.device import DRAM_SPEC
from repro.storage.tier import StorageTier

_INDEX_COUNT = struct.Struct("<I")
_INDEX_ENTRY = struct.Struct("<HQI")  # key_len, offset, length

#: Fixed part of the footer: data_len, filter_off, filter_len,
#: index_off, index_len, entry_count, tombstones, max_seqno,
#: popularity score, created_at.
_FOOTER_FIXED = struct.Struct("<QQIQIIIQdd")
#: Footer tail, at the very end of the file: smallest_len, largest_len,
#: magic.
_FOOTER_TAIL = struct.Struct("<HHI")
_FOOTER_MAGIC = 0x5052534D  # "PRSM"

#: Score assigned to keys absent from the tracker (§4.3).
UNTRACKED_CLOCK_VALUE = -1

#: Hoisted enum member: ``record.kind is _DELETE`` on the build loop
#: avoids the ``is_tombstone`` property-descriptor call per record.
_DELETE = ValueKind.DELETE


@dataclass(frozen=True)
class IndexEntry:
    """Points at one data block; ``last_key`` is the block's final user key."""

    last_key: bytes
    offset: int
    length: int


def encode_index(entries: list[IndexEntry]) -> bytes:
    parts = [_INDEX_COUNT.pack(len(entries))]
    for entry in entries:
        parts.append(_INDEX_ENTRY.pack(len(entry.last_key), entry.offset, entry.length))
        parts.append(entry.last_key)
    return b"".join(parts)


def decode_index(buf: bytes | memoryview) -> list[IndexEntry]:
    if len(buf) < _INDEX_COUNT.size:
        raise CorruptionError("truncated index block")
    (count,) = _INDEX_COUNT.unpack_from(buf, 0)
    entries: list[IndexEntry] = []
    pos = _INDEX_COUNT.size
    is_view = type(buf) is not bytes
    for _ in range(count):
        if pos + _INDEX_ENTRY.size > len(buf):
            raise CorruptionError("truncated index entry")
        key_len, offset, length = _INDEX_ENTRY.unpack_from(buf, pos)
        pos += _INDEX_ENTRY.size
        last_key = buf[pos : pos + key_len]
        if len(last_key) != key_len:
            raise CorruptionError("truncated index key")
        pos += key_len
        # Index keys feed bisect comparisons, which memoryview slices do
        # not support; keep them as real bytes.
        entries.append(IndexEntry(bytes(last_key) if is_view else last_key, offset, length))
    return entries


class SSTable:
    """Handle to one immutable table: metadata plus the read path."""

    def __init__(
        self,
        backend: StorageBackend,
        file: SimFile,
        *,
        smallest_key: bytes,
        largest_key: bytes,
        entry_count: int,
        tombstone_count: int,
        data_length: int,
        filter_offset: int,
        filter_length: int,
        index_offset: int,
        index_length: int,
        popularity_score: float,
        created_at_usec: float,
        max_seqno: int = 0,
    ) -> None:
        self._backend = backend
        self.file = file
        self.max_seqno = max_seqno
        self.smallest_key = smallest_key
        self.largest_key = largest_key
        self.entry_count = entry_count
        self.tombstone_count = tombstone_count
        self.data_length = data_length
        self.filter_offset = filter_offset
        self.filter_length = filter_length
        self.index_offset = index_offset
        self.index_length = index_length
        self.popularity_score = popularity_score
        self.created_at_usec = created_at_usec
        self._bloom: BloomFilter | None = None
        self._index: list[IndexEntry] | None = None
        self._index_keys: list[bytes] | None = None
        # Resident filter/index hits charge one DRAM access for a fixed
        # block length; the latency is a pure function of that length,
        # so it is computed once per table instead of once per probe.
        self._bloom_hit_latency = DRAM_SPEC.read_time_usec(filter_length)
        self._index_hit_latency = DRAM_SPEC.read_time_usec(index_length)

    @property
    def file_id(self) -> int:
        return self.file.file_id

    @property
    def size_bytes(self) -> int:
        return self.file.size

    @property
    def tier(self) -> StorageTier:
        return self.file.tier

    def overlaps(self, lo: bytes, hi: bytes) -> bool:
        """True if [smallest, largest] intersects [lo, hi]."""
        return not (self.largest_key < lo or hi < self.smallest_key)

    def contains_key_range(self, user_key: bytes) -> bool:
        return self.smallest_key <= user_key <= self.largest_key

    # ------------------------------------------------------------------
    # Block fetch helpers (cache-mediated, latency-charged)
    # ------------------------------------------------------------------
    def _bloom_filter(self, cache: BlockCache, *, foreground: bool = True, ctx=None) -> tuple[BloomFilter, float]:
        # Filter blocks behave like RocksDB's table cache: loaded from
        # the device on first access, then resident in table memory for
        # the file's lifetime. Resident accesses are DRAM hits.
        if self._bloom is not None:
            cache.record_resident_hit(BlockType.FILTER)
            latency = self._bloom_hit_latency
            if ctx is not None:
                ctx.add("filter", "dram", latency)
            return self._bloom, latency

        def loader() -> tuple[bytes, float]:
            return self._backend.read(
                self.file, self.filter_offset, self.filter_length,
                foreground=foreground, ctx=ctx,
            )

        bloom, latency = cache.get_or_load_decoded(
            self.file_id, self.filter_offset, BlockType.FILTER, loader,
            BloomFilter.decode, ctx,
        )
        self._bloom = bloom
        return bloom, latency

    def _index_entries(self, cache: BlockCache, *, foreground: bool = True, ctx=None) -> tuple[list[IndexEntry], float]:
        # Index blocks live in the table cache as well (see above).
        if self._index is not None:
            cache.record_resident_hit(BlockType.INDEX)
            latency = self._index_hit_latency
            if ctx is not None:
                ctx.add("index", "dram", latency)
            return self._index, latency

        def loader() -> tuple[bytes, float]:
            return self._backend.read(
                self.file, self.index_offset, self.index_length,
                foreground=foreground, ctx=ctx,
            )

        entries, latency = cache.get_or_load_decoded(
            self.file_id, self.index_offset, BlockType.INDEX, loader,
            decode_index, ctx,
        )
        self._index = entries
        self._index_keys = [entry.last_key for entry in entries]
        return entries, latency

    def _data_block(self, entry: IndexEntry, cache: BlockCache, *, foreground: bool = True, ctx=None) -> tuple[DataBlock, float]:
        def loader() -> tuple[bytes, float]:
            return self._backend.read(
                self.file, entry.offset, entry.length,
                foreground=foreground, ctx=ctx,
            )

        return cache.get_or_load_decoded(
            self.file_id, entry.offset, BlockType.DATA, loader, DataBlock, ctx
        )

    # ------------------------------------------------------------------
    # Point lookup
    # ------------------------------------------------------------------
    def get(self, user_key: bytes, cache: BlockCache, *, foreground: bool = True, ctx=None) -> tuple[Record | None, float, bool]:
        """Look up ``user_key``.

        Returns (record-or-None, simulated latency, filtered) where
        ``filtered`` is True when the bloom filter short-circuited the
        lookup without touching index or data blocks.
        """
        bloom, latency = self._bloom_filter(cache, foreground=foreground, ctx=ctx)
        may_contain = bloom.may_contain(user_key)
        if ctx is not None:
            ctx.note_probe(may_contain, n_probes=bloom.n_probes)
        if not may_contain:
            return None, latency, True
        index, index_latency = self._index_entries(cache, foreground=foreground, ctx=ctx)
        latency += index_latency
        assert self._index_keys is not None
        pos = bisect.bisect_left(self._index_keys, user_key)
        if pos >= len(index):
            return None, latency, False
        block, block_latency = self._data_block(index[pos], cache, foreground=foreground, ctx=ctx)
        latency += block_latency
        # Lazy point search: binary-search the encoded buffer through the
        # restart-point offsets and decode only the candidate record.
        return block.search(user_key), latency, False

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def iter_from(self, user_key: bytes, cache: BlockCache, *, foreground: bool = True, ctx=None) -> Iterator[tuple[Record, float]]:
        """Yield (record, latency-of-this-step) for keys >= ``user_key``.

        The latency of the index fetch and of each block fetch is
        attributed to the first record yielded after that fetch.
        """
        index, pending_latency = self._index_entries(cache, foreground=foreground, ctx=ctx)
        assert self._index_keys is not None
        pos = bisect.bisect_left(self._index_keys, user_key)
        for entry in index[pos:]:
            block, block_latency = self._data_block(entry, cache, foreground=foreground, ctx=ctx)
            pending_latency += block_latency
            for record in block.records():
                if record.user_key < user_key:
                    continue
                yield record, pending_latency
                pending_latency = 0.0

    def read_all_records(self, *, foreground: bool = False) -> tuple[list[Record], float]:
        """Sequentially read every record (compaction input scan).

        Zero-copy: records are decoded directly out of the file's own
        buffer at the offsets the index gives — no per-block slice is
        ever materialized.
        """
        _, latency = self._backend.read(self.file, 0, self.data_length, foreground=foreground)
        # The data region starts at byte 0, so index offsets are file
        # offsets: decode straight from the file's immutable bytes.
        data = self.file.data
        records: list[Record] = []
        # Blocks are parsed via the index so boundaries are exact.
        index, index_latency = self._index_from_disk(foreground=foreground)
        latency += index_latency
        for entry in index:
            extend_records_from(data, entry.offset, entry.length, records)
        return records, latency

    def read_all_spans(
        self,
        keys: list[bytes],
        seqnos: list[int],
        kinds: list[int],
        starts: list[int],
        ends: list[int],
        *,
        foreground: bool = False,
    ) -> tuple[bytes, int, float]:
        """Sequentially read every record as an encoded span.

        The encoded-domain counterpart of :meth:`read_all_records`: the
        device reads are identical (whole data region, then the index if
        cold), but instead of constructing Record objects it appends one
        entry per record to the parallel output arrays. The returned
        buffer is the file's own immutable bytes; spans index into it.
        Returns (buffer, record_count, latency).
        """
        _, latency = self._backend.read(self.file, 0, self.data_length, foreground=foreground)
        data = self.file.data
        index, index_latency = self._index_from_disk(foreground=foreground)
        latency += index_latency
        count = 0
        for entry in index:
            count += extend_spans_from(
                data, entry.offset, entry.length, keys, seqnos, kinds, starts, ends
            )
        return data, count, latency

    def _index_from_disk(self, *, foreground: bool) -> tuple[list[IndexEntry], float]:
        if self._index is not None:
            return self._index, 0.0
        data, latency = self._backend.read(
            self.file, self.index_offset, self.index_length, foreground=foreground
        )
        self._index = decode_index(data)
        self._index_keys = [entry.last_key for entry in self._index]
        return self._index, latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTable(id={self.file_id}, tier={self.tier.name}, "
            f"[{self.smallest_key!r}..{self.largest_key!r}], "
            f"{self.entry_count} entries, score={self.popularity_score:.0f})"
        )

    @staticmethod
    def open(backend: StorageBackend, file: SimFile, *, foreground: bool = False) -> "SSTable":
        """Reconstruct a table handle from its on-"disk" footer.

        The restart path: reads the footer tail, then the fixed footer
        and boundary keys, and returns a handle with cold (not yet
        resident) filter and index. Raises :class:`CorruptionError` on a
        bad magic number or malformed footer.
        """
        tail_size = _FOOTER_TAIL.size
        if file.size < tail_size:
            raise CorruptionError(f"file {file.file_id} too small for a footer")
        tail_bytes, _ = backend.read(file, file.size - tail_size, tail_size, foreground=foreground)
        smallest_len, largest_len, magic = _FOOTER_TAIL.unpack(tail_bytes)
        if magic != _FOOTER_MAGIC:
            raise CorruptionError(f"file {file.file_id}: bad footer magic {magic:#x}")
        footer_size = _FOOTER_FIXED.size + smallest_len + largest_len + tail_size
        if file.size < footer_size:
            raise CorruptionError(f"file {file.file_id}: truncated footer")
        footer_bytes, _ = backend.read(
            file, file.size - footer_size, footer_size - tail_size, foreground=foreground
        )
        (
            data_length,
            filter_offset,
            filter_length,
            index_offset,
            index_length,
            entry_count,
            tombstone_count,
            max_seqno,
            popularity_score,
            created_at_usec,
        ) = _FOOTER_FIXED.unpack_from(footer_bytes, 0)
        keys_start = _FOOTER_FIXED.size
        # footer_bytes is a zero-copy view; boundary keys live on in the
        # table handle (and in key comparisons), so pin them as bytes.
        smallest_key = bytes(footer_bytes[keys_start : keys_start + smallest_len])
        largest_key = bytes(
            footer_bytes[keys_start + smallest_len : keys_start + smallest_len + largest_len]
        )
        return SSTable(
            backend,
            file,
            smallest_key=smallest_key,
            largest_key=largest_key,
            entry_count=entry_count,
            tombstone_count=tombstone_count,
            data_length=data_length,
            filter_offset=filter_offset,
            filter_length=filter_length,
            index_offset=index_offset,
            index_length=index_length,
            popularity_score=popularity_score,
            created_at_usec=created_at_usec,
            max_seqno=max_seqno,
        )


class SSTableBuilder:
    """Builds one SSTable from records supplied in internal-key order.

    ``clock_value_fn`` maps a user key to its tracker CLOCK value (or
    :data:`UNTRACKED_CLOCK_VALUE`); the builder accumulates the paper's
    popularity score Σ clockⁿ as entries stream in.
    """

    def __init__(
        self,
        backend: StorageBackend,
        tier: StorageTier,
        *,
        block_bytes: int,
        target_file_bytes: int,
        bits_per_key: int = 10,
        clock_value_fn: Callable[[bytes], int] | None = None,
        score_exponent: int = 3,
    ) -> None:
        self._backend = backend
        self._tier = tier
        self._block_bytes = block_bytes
        self.target_file_bytes = target_file_bytes
        self._bits_per_key = bits_per_key
        self._clock_value_fn = clock_value_fn
        self._score_exponent = score_exponent
        self._block = DataBlockBuilder(block_bytes)
        self._finished_blocks: list[bytes] = []
        self._index: list[IndexEntry] = []
        self._data_bytes = 0
        self._keys: list[bytes] = []
        self._smallest: bytes | None = None
        self._largest: bytes | None = None
        self._entry_count = 0
        self._tombstones = 0
        self._max_seqno = 0
        self._score = 0.0

    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def estimated_bytes(self) -> int:
        return self._data_bytes + self._block.estimated_bytes

    def should_finish(self) -> bool:
        """True when the file has reached its target size."""
        return self.estimated_bytes >= self.target_file_bytes

    def add(self, record: Record) -> None:
        key = record.user_key
        if self._smallest is None:
            self._smallest = key
        self._largest = key
        # DataBlockBuilder.add, inlined: every memtable flush (and the
        # record-path compaction merge) funnels each record through
        # here, so one call frame replaces three. Side effects and
        # their order match the layered path exactly.
        block = self._block
        inv = MAX_SEQNO - record.seqno
        last_key = block._last_key
        if last_key is not None and (
            key < last_key or (key == last_key and inv <= block._last_inv)
        ):
            raise ValueError(
                f"records out of order: {key!r}@{record.seqno} "
                f"after {last_key!r}@{MAX_SEQNO - block._last_inv}"
            )
        if block._first_key is None:
            block._first_key = key
        block._last_key = key
        block._last_inv = inv
        encoded = record.encode()
        block._offsets.append(block._position)
        block._parts.append(encoded)
        size = len(encoded)
        block._position += size
        # 4 = the per-record u32 restart-offset cost (block._OFFSET.size).
        block._estimated = block_estimated = block._estimated + 4 + size
        self._keys.append(key)
        self._entry_count += 1
        if record.kind is _DELETE:
            self._tombstones += 1
        if record.seqno > self._max_seqno:
            self._max_seqno = record.seqno
        if self._clock_value_fn is not None:
            clock = float(self._clock_value_fn(key))
            if self._score_exponent == 3:
                # Exact for the integer CLOCK values the trackers emit;
                # three multiplies beat a pow() call on this hot path.
                self._score += clock * clock * clock
            else:
                self._score += clock ** self._score_exponent
        if block_estimated >= block.target_bytes:
            self._flush_block()

    def add_encoded(
        self, key: bytes, seqno: int, kind_code: int, buf, start: int, end: int
    ) -> None:
        """Add one record from its encoded bytes (encoded compaction path).

        Mirrors every side effect of :meth:`add` — boundary keys, bloom
        key list, tombstone/seqno/score accounting, block rotation —
        while the payload flows through as a slice of the input file, so
        the finished table is byte-identical to one built from the
        equivalent Record objects.
        """
        if self._smallest is None:
            self._smallest = key
        self._largest = key
        self._block.add_span(key, seqno, buf, start, end)
        self._keys.append(key)
        self._entry_count += 1
        if kind_code == 0:
            self._tombstones += 1
        if seqno > self._max_seqno:
            self._max_seqno = seqno
        if self._clock_value_fn is not None:
            clock = float(self._clock_value_fn(key))
            if self._score_exponent == 3:
                self._score += clock * clock * clock
            else:
                self._score += clock ** self._score_exponent
        if self._block.is_full():
            self._flush_block()

    def _flush_block(self) -> None:
        if len(self._block) == 0:
            return
        last_key = self._block.last_key
        assert last_key is not None
        payload = self._block.finish()
        self._index.append(IndexEntry(last_key, self._data_bytes, len(payload)))
        self._finished_blocks.append(payload)
        self._data_bytes += len(payload)

    def finish(self, *, foreground: bool = False) -> tuple[SSTable, float]:
        """Serialize remaining state and write the file to the tier."""
        if self._entry_count == 0:
            raise ValueError("cannot finish an empty SSTable")
        self._flush_block()
        bloom = BloomFilter.for_capacity(len(self._keys), self._bits_per_key)
        bloom.add_many(self._keys)
        filter_block = bloom.encode()
        index_block = encode_index(self._index)
        assert self._smallest is not None and self._largest is not None
        created_at = self._backend.clock.now
        footer = (
            _FOOTER_FIXED.pack(
                self._data_bytes,
                self._data_bytes,
                len(filter_block),
                self._data_bytes + len(filter_block),
                len(index_block),
                self._entry_count,
                self._tombstones,
                self._max_seqno,
                self._score,
                created_at,
            )
            + self._smallest
            + self._largest
            + _FOOTER_TAIL.pack(len(self._smallest), len(self._largest), _FOOTER_MAGIC)
        )
        payload = b"".join(self._finished_blocks) + filter_block + index_block + footer
        file, latency = self._backend.create_file(self._tier, payload, foreground=foreground)
        table = SSTable(
            self._backend,
            file,
            smallest_key=self._smallest,
            largest_key=self._largest,
            entry_count=self._entry_count,
            tombstone_count=self._tombstones,
            data_length=self._data_bytes,
            filter_offset=self._data_bytes,
            filter_length=len(filter_block),
            index_offset=self._data_bytes + len(filter_block),
            index_length=len(index_block),
            popularity_score=self._score,
            created_at_usec=created_at,
            max_seqno=self._max_seqno,
        )
        # A freshly written table's filter and index are already in
        # memory (we just built them): resident from birth, as in
        # RocksDB's table cache.
        table._bloom = bloom
        table._index = list(self._index)
        table._index_keys = [entry.last_key for entry in self._index]
        return table, latency
