"""Internal record representation and ordering.

Every write is versioned with a monotonically increasing sequence number
and a kind (PUT or DELETE). The LSM's consistency guarantee — readers see
the newest committed version — rests on the *internal key order*: records
sort by user key ascending, then by sequence number **descending**, so a
merge over multiple sources always yields the newest version of a key
first.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import CorruptionError


class ValueKind(enum.IntEnum):
    """Record type tag; DELETE records are tombstones."""

    DELETE = 0
    PUT = 1


#: Largest sequence number; used to build seek keys that sort before all
#: versions of a user key (because seqnos sort descending internally).
MAX_SEQNO = (1 << 56) - 1

_HEADER = struct.Struct("<HIBQ")  # key_len, value_len, kind, seqno


@dataclass(frozen=True, slots=True)
class Record:
    """One versioned key-value record.

    ``slots=True`` matters for throughput: records are the unit of work in
    block decode, merge, and compaction, and slot access avoids the
    per-instance ``__dict__`` lookup on the hot attribute reads
    (``user_key``/``seqno``) those paths hammer.
    """

    user_key: bytes
    seqno: int
    kind: ValueKind
    value: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.seqno <= MAX_SEQNO:
            raise ValueError(f"seqno out of range: {self.seqno}")
        if len(self.user_key) > 0xFFFF:
            raise ValueError(f"key too long: {len(self.user_key)} bytes")

    @property
    def is_tombstone(self) -> bool:
        return self.kind == ValueKind.DELETE

    def internal_sort_key(self) -> tuple[bytes, int]:
        """Sort key: user key ascending, then seqno descending."""
        return (self.user_key, MAX_SEQNO - self.seqno)

    def encoded_size(self) -> int:
        return _HEADER.size + len(self.user_key) + len(self.value)

    def encode(self) -> bytes:
        """Serialize to the on-"disk" wire format."""
        return (
            _HEADER.pack(len(self.user_key), len(self.value), int(self.kind), self.seqno)
            + self.user_key
            + self.value
        )

    @staticmethod
    def decode_from(buf: bytes, offset: int) -> tuple["Record", int]:
        """Decode one record at ``offset``; returns (record, next_offset)."""
        if offset + _HEADER.size > len(buf):
            raise CorruptionError(f"truncated record header at offset {offset}")
        key_len, value_len, kind, seqno = _HEADER.unpack_from(buf, offset)
        start = offset + _HEADER.size
        end = start + key_len + value_len
        if end > len(buf):
            raise CorruptionError(f"truncated record body at offset {offset}")
        try:
            value_kind = ValueKind(kind)
        except ValueError as exc:
            raise CorruptionError(f"bad record kind {kind} at offset {offset}") from exc
        user_key = buf[start : start + key_len]
        value = buf[start + key_len : end]
        return Record(user_key, seqno, value_kind, value), end


def record_sort_key(record: Record) -> tuple[bytes, int]:
    """Module-level alias usable as a ``sorted`` key function."""
    return record.internal_sort_key()
