"""Internal record representation and ordering.

Every write is versioned with a monotonically increasing sequence number
and a kind (PUT or DELETE). The LSM's consistency guarantee — readers see
the newest committed version — rests on the *internal key order*: records
sort by user key ascending, then by sequence number **descending**, so a
merge over multiple sources always yields the newest version of a key
first.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import CorruptionError


class ValueKind(enum.IntEnum):
    """Record type tag; DELETE records are tombstones."""

    DELETE = 0
    PUT = 1


#: Largest sequence number; used to build seek keys that sort before all
#: versions of a user key (because seqnos sort descending internally).
MAX_SEQNO = (1 << 56) - 1

_HEADER = struct.Struct("<HIBQ")  # key_len, value_len, kind, seqno
_HEADER_SIZE = _HEADER.size
_UNPACK_HEADER = _HEADER.unpack_from
#: Wire code -> enum member. Indexing this tuple is ~6x cheaper than the
#: ``ValueKind(kind)`` enum call on the block-decode hot path.
_KIND_BY_CODE = (ValueKind.DELETE, ValueKind.PUT)
#: Allocator used by :meth:`Record.decode_from` to build records without
#: re-running ``__post_init__`` validation (the wire fields are already
#: range-checked during decode).
_NEW_RECORD = object.__new__


@dataclass(slots=True)
class Record:
    """One versioned key-value record.

    ``slots=True`` matters for throughput: records are the unit of work in
    block decode, merge, and compaction, and slot access avoids the
    per-instance ``__dict__`` lookup on the hot attribute reads
    (``user_key``/``seqno``) those paths hammer. The class is not frozen
    — frozen dataclasses route construction through
    ``object.__setattr__``, roughly tripling the cost of the ~60k Record
    constructions a smoke run performs — but instances are immutable by
    convention: nothing in the engine mutates a record after creation.
    """

    user_key: bytes
    seqno: int
    kind: ValueKind
    value: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.seqno <= MAX_SEQNO:
            raise ValueError(f"seqno out of range: {self.seqno}")
        if len(self.user_key) > 0xFFFF:
            raise ValueError(f"key too long: {len(self.user_key)} bytes")

    @property
    def is_tombstone(self) -> bool:
        return self.kind == ValueKind.DELETE

    def internal_sort_key(self) -> tuple[bytes, int]:
        """Sort key: user key ascending, then seqno descending."""
        return (self.user_key, MAX_SEQNO - self.seqno)

    def encoded_size(self) -> int:
        return _HEADER.size + len(self.user_key) + len(self.value)

    def encode(self) -> bytes:
        """Serialize to the on-"disk" wire format."""
        return (
            _HEADER.pack(len(self.user_key), len(self.value), int(self.kind), self.seqno)
            + self.user_key
            + self.value
        )

    @staticmethod
    def decode_from(buf: bytes | memoryview, offset: int) -> tuple["Record", int]:
        """Decode one record at ``offset``; returns (record, next_offset).

        Accepts a ``memoryview`` (zero-copy block reads) as well as
        ``bytes``; the decoded key/value are always independent ``bytes``
        objects either way.
        """
        if offset + _HEADER_SIZE > len(buf):
            raise CorruptionError(f"truncated record header at offset {offset}")
        key_len, value_len, kind, seqno = _UNPACK_HEADER(buf, offset)
        start = offset + _HEADER_SIZE
        end = start + key_len + value_len
        if end > len(buf):
            raise CorruptionError(f"truncated record body at offset {offset}")
        if kind > 1:
            raise CorruptionError(f"bad record kind {kind} at offset {offset}")
        if seqno > MAX_SEQNO:
            raise CorruptionError(f"seqno out of range at offset {offset}: {seqno}")
        key_end = start + key_len
        user_key = buf[start:key_end]
        value = buf[key_end:end]
        if type(user_key) is not bytes:
            user_key = bytes(user_key)
            value = bytes(value)
        # Fields already validated above (kind, seqno; key_len is a u16 so
        # it cannot exceed the key-length cap), so the record is assembled
        # directly instead of through the dataclass __init__/__post_init__
        # pair — measurably cheaper at ~40k decodes per smoke run.
        record = _NEW_RECORD(Record)
        record.user_key = user_key
        record.seqno = seqno
        record.kind = _KIND_BY_CODE[kind]
        record.value = value
        return record, end


def record_sort_key(record: Record) -> tuple[bytes, int]:
    """Module-level alias usable as a ``sorted`` key function."""
    return record.internal_sort_key()


#: Fixed per-record wire overhead; exported so hot paths can compute
#: ``encoded_size`` without a method call on a Record in hand.
RECORD_HEADER_SIZE = _HEADER_SIZE

_PUT = ValueKind.PUT


def make_put_record(user_key: bytes, seqno: int, value: bytes) -> Record:
    """Build a PUT record without the dataclass ``__init__`` walk.

    The write fast lane constructs one record per operation; seqnos are
    engine-assigned (always in range), so only the user-supplied key
    length needs checking.
    """
    if len(user_key) > 0xFFFF:
        raise ValueError(f"key too long: {len(user_key)} bytes")
    record = _NEW_RECORD(Record)
    record.user_key = user_key
    record.seqno = seqno
    record.kind = _PUT
    record.value = value
    return record
