"""Merging iterators.

Range scans and compactions both consume multiple sorted record sources
and need a single stream in internal-key order with version shadowing
resolved (newest version of each user key wins; older versions are
dropped). ``merge_records`` provides the raw ordered merge;
``newest_versions`` layers the shadowing on top.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.lsm.record import Record


def merge_records(sources: Iterable[Iterable[Record]]) -> Iterator[Record]:
    """Merge pre-sorted record streams into internal-key order.

    Each source must already be sorted by (user key asc, seqno desc).
    Ties across sources are broken by source index, which is irrelevant
    for correctness because sequence numbers are globally unique.
    """
    return heapq.merge(*sources, key=lambda record: record.internal_sort_key())


def newest_versions(merged: Iterable[Record]) -> Iterator[Record]:
    """Collapse an internal-key-ordered stream to one record per user key.

    The first record seen for a user key is the newest (internal order
    puts higher seqnos first); all older versions are shadowed.
    Tombstones are *kept* — dropping them is a compaction decision that
    depends on the output level.
    """
    previous_key: bytes | None = None
    for record in merged:
        if record.user_key == previous_key:
            continue
        previous_key = record.user_key
        yield record


def visible_records(merged: Iterable[Record]) -> Iterator[Record]:
    """Like :func:`newest_versions` but also drops tombstoned keys.

    This is the read-path view used by range scans: a key whose newest
    version is a DELETE simply does not exist.
    """
    for record in newest_versions(merged):
        if not record.is_tombstone:
            yield record
