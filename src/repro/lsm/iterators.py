"""Merging iterators.

Range scans and compactions both consume multiple sorted record sources
and need a single stream in internal-key order with version shadowing
resolved (newest version of each user key wins; older versions are
dropped). ``merge_records`` provides the raw ordered merge;
``newest_versions`` layers the shadowing on top.

Two merge strategies, picked per call:

* **Materialized sources** (every source is a ``list`` — the compaction
  and flush case, where inputs are fully decoded before merging):
  concatenate with ``list.extend`` and sort the combined list twice with
  C-implemented ``attrgetter`` keys — first by seqno descending, then
  stably by user key ascending. Timsort's stability makes the second
  pass preserve the first's order within equal user keys, yielding
  internal-key order with *zero Python-level calls per record*, and its
  galloping mode tears through the pre-sorted runs. This is ~4x faster
  than a ``heapq.merge`` generator pipeline at compaction-typical sizes.
* **Streaming sources** (anything lazy, e.g. SSTable range iterators):
  ``heapq.merge`` over streams decorated once per record with
  ``(user_key, MAX_SEQNO - seqno, record)``, preserving laziness. The
  decoration replaces a ``key=`` lambda that would otherwise run per
  heap *sift*; it forms a strict total order because sequence numbers
  are globally unique, so the trailing record is never compared.
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from typing import Iterable, Iterator

from repro.lsm.record import MAX_SEQNO, Record, ValueKind

_BY_SEQNO = attrgetter("seqno")
_BY_USER_KEY = attrgetter("user_key")


def keyed_records(source: Iterable[Record]) -> Iterator[tuple[bytes, int, Record]]:
    """Decorate records as ``(user_key, inverted_seqno, record)`` tuples."""
    inverted = MAX_SEQNO
    for record in source:
        yield (record.user_key, inverted - record.seqno, record)


def merge_sorted_lists(sources: list[list[Record]]) -> list[Record]:
    """Merge materialized sorted record lists into one internal-key-ordered list.

    Two stable C-keyed sorts: secondary key first (seqno descending),
    then primary (user key ascending). See the module docstring for why
    this beats a heap merge.
    """
    combined: list[Record] = []
    for source in sources:
        combined.extend(source)
    combined.sort(key=_BY_SEQNO, reverse=True)
    combined.sort(key=_BY_USER_KEY)
    return combined


def merge_records(sources: Iterable[Iterable[Record]]) -> Iterator[Record]:
    """Merge pre-sorted record streams into internal-key order.

    Each source must already be sorted by (user key asc, seqno desc).
    Ties across sources are impossible (sequence numbers are globally
    unique). List sources take the sort-based fast path; lazy sources
    stream through ``heapq.merge``.
    """
    sources = list(sources)
    if all(isinstance(source, list) for source in sources):
        return iter(merge_sorted_lists(sources))
    return (item[2] for item in heapq.merge(*(keyed_records(source) for source in sources)))


def newest_versions(merged: Iterable[Record]) -> Iterator[Record]:
    """Collapse an internal-key-ordered stream to one record per user key.

    The first record seen for a user key is the newest (internal order
    puts higher seqnos first); all older versions are shadowed.
    Tombstones are *kept* — dropping them is a compaction decision that
    depends on the output level.
    """
    previous_key: bytes | None = None
    for record in merged:
        if record.user_key == previous_key:
            continue
        previous_key = record.user_key
        yield record


def visible_records(merged: Iterable[Record]) -> Iterator[Record]:
    """Like :func:`newest_versions` but also drops tombstoned keys.

    This is the read-path view used by range scans: a key whose newest
    version is a DELETE simply does not exist.
    """
    delete = ValueKind.DELETE
    for record in newest_versions(merged):
        if record.kind is not delete:
            yield record
