"""A probabilistic skiplist, the memtable's ordered index.

LSM memtables (RocksDB, LevelDB) are skiplists because they offer sorted
iteration for flushes plus O(log n) point access. This implementation is
single-writer (the simulator is single-process) but otherwise faithful:
randomized tower heights with p = 1/4, forward-only pointers, ordered
iteration, and floor/ceiling seeks used by range scans.
"""

from __future__ import annotations

import random
from typing import Any, Iterator

_MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, height: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[_Node | None] = [None] * height


class SkipList:
    """Sorted map from comparable keys to values."""

    def __init__(self, seed: int = 0) -> None:
        self._head = _Node(None, None, _MAX_HEIGHT)
        self._height = 1
        self._size = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return self._size

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_predecessors(self, key: Any) -> list[_Node]:
        """Per level, the last node with a key strictly less than ``key``."""
        preds = [self._head] * _MAX_HEIGHT
        node = self._head
        for level in range(self._height - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
            preds[level] = node
        return preds

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        preds = self._find_predecessors(key)
        candidate = preds[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        height = self._random_height()
        if height > self._height:
            self._height = height
        node = _Node(key, value, height)
        for level in range(height):
            node.forward[level] = preds[level].forward[level]
            preds[level].forward[level] = node
        self._size += 1

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find_predecessors(key)[0].forward[0]
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def seek_ceiling(self, key: Any) -> Iterator[tuple[Any, Any]]:
        """Iterate (key, value) pairs starting at the first key >= ``key``."""
        node = self._find_predecessors(key)[0].forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Iterate all (key, value) pairs in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def first_key(self) -> Any:
        node = self._head.forward[0]
        return None if node is None else node.key

    def last_key(self) -> Any:
        node = self._head
        for level in range(self._height - 1, -1, -1):
            while node.forward[level] is not None:
                node = node.forward[level]
        return None if node is self._head else node.key
