"""The LSM key-value store.

:class:`LsmDB` is the engine every system in the reproduction runs on:
vanilla RocksDB-style behaviour falls out of the default picker/router,
PrismDB plugs in its read-aware picker/router, and Mutant wraps the same
engine with a file-migration layer. Compaction *shape* and *trigger* are
a third seam: ``DBOptions.compaction_shape`` / ``compaction_trigger``
select a :class:`~repro.lsm.strategy.CompactionStrategy` (leveling by
default; tiering and lazy-leveling stack multiple sorted runs per
level). All reads and writes return simulated latencies; the harness's
closed-loop runner turns those into throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.stats import CounterSet
from repro.errors import DBClosedError
from repro.lsm.block_cache import BlockCache
from repro.lsm.compaction import (
    CompactDownRouter,
    CompactionExecutor,
    CompactionPicker,
    LargestFilePicker,
    MergeRouter,
)
from repro.lsm.iterators import merge_records, visible_records
from repro.lsm.layout import StorageLayout
from repro.lsm.manifest_log import ManifestLog, replay_manifest
from repro.lsm.memtable import Memtable
from repro.lsm.options import DBOptions
from repro.lsm.record import RECORD_HEADER_SIZE, Record, ValueKind, make_put_record
from repro.lsm.row_cache import RowCache
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.strategy import CompactionStrategy, make_picker, make_strategy
from repro.lsm.version import LevelManifest
from repro.lsm.wal import WriteAheadLog
from repro.obs import MetricsRegistry, Tracer
from repro.storage.backend import StorageBackend
from repro.storage.device import DRAM_SPEC

_DELETE = ValueKind.DELETE


@dataclass(slots=True)
class ReadResult:
    """Outcome of a point lookup.

    Result objects are built once per operation — the hottest allocation
    in the engine after records — so they use ``slots=True`` and skip
    ``frozen`` (frozen construction routes through
    ``object.__setattr__``); they are immutable by convention.
    """

    value: bytes | None
    latency_usec: float
    served_by: str  # "memtable", "L0".."L<n>", or "miss"
    #: Sequence number of the version served (None on miss); the tracker
    #: uses it as the key-version tag (§5).
    seqno: int | None = None

    @property
    def found(self) -> bool:
        return self.value is not None


@dataclass(slots=True)
class WriteResult:
    """Outcome of a put/delete."""

    latency_usec: float
    triggered_flush: bool
    triggered_compactions: int


@dataclass(slots=True)
class ScanResult:
    """Outcome of a range scan."""

    items: list[tuple[bytes, bytes]]
    latency_usec: float


@dataclass
class DBStats:
    """Engine-level counters the experiments read."""

    user_reads: int = 0
    user_writes: int = 0
    user_scans: int = 0
    user_read_bytes: int = 0
    user_write_bytes: int = 0
    reads_by_source: CounterSet = field(default_factory=CounterSet)
    flush_count: int = 0
    flush_bytes: int = 0
    wal_bytes: int = 0
    bloom_negative_skips: int = 0

    def write_amplification(self, compaction_write_bytes: int) -> float:
        """(flush + compaction + WAL bytes) / user bytes written."""
        if self.user_write_bytes == 0:
            return 0.0
        total = self.flush_bytes + compaction_write_bytes + self.wal_bytes
        return total / self.user_write_bytes


class LsmDB:
    """A leveled LSM key-value store over simulated heterogeneous storage."""

    def __init__(
        self,
        layout: StorageLayout,
        options: DBOptions | None = None,
        *,
        clock: SimClock | None = None,
        backend: StorageBackend | None = None,
        picker: CompactionPicker | None = None,
        router: MergeRouter | None = None,
        strategy: CompactionStrategy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        name: str = "lsm",
    ) -> None:
        self.options = options or DBOptions()
        if layout.num_levels != self.options.num_levels:
            raise ValueError(
                f"layout has {layout.num_levels} levels, options expect "
                f"{self.options.num_levels}"
            )
        self.name = name
        self.layout = layout
        self.clock = clock or SimClock()
        self.backend = backend or StorageBackend(self.clock)
        #: The observability substrate: one registry + tracer per DB
        #: instance. The tracer starts disabled (zero overhead); call
        #: ``db.tracer.enable()`` to record spans.
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or Tracer(self.clock, enabled=False)
        for tier in layout.tiers:
            tier.device.bind_observability(self.metrics, tier=tier.name)
        self.cache = BlockCache(self.options.block_cache_bytes)
        self.cache.bind_observability(self.metrics)
        self.row_cache = RowCache(self.options.row_cache_bytes)
        if self.options.row_cache_bytes:
            self.row_cache.bind_observability(self.metrics)
        # Options consulted once per operation, cached as plain attributes
        # so the hot paths skip the dataclass attribute walk.
        self._row_cache_enabled = bool(self.options.row_cache_bytes)
        self._memtable_limit = self.options.memtable_bytes
        self._cpu_overhead = self.options.cpu_overhead_usec
        #: The compaction shape+trigger composite; an explicit instance
        #: wins, otherwise DBOptions.compaction_shape/_trigger select one.
        self.strategy = strategy or make_strategy(self.options)
        self.manifest = LevelManifest(
            self.options.num_levels,
            run_stacked_levels=self.strategy.run_stacked_levels(self.options),
        )
        #: Picker precedence: explicit instance, then the
        #: DBOptions.compaction_picker name, then the classic default.
        self.picker = (
            picker or make_picker(self.options.compaction_picker) or LargestFilePicker()
        )
        self.router = router or CompactDownRouter()
        self.executor = CompactionExecutor(
            self.backend,
            self.manifest,
            layout,
            self.options,
            self.cache,
            self.picker,
            self.router,
            strategy=self.strategy,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.wal = (
            WriteAheadLog(layout.wal_tier, sync_every=self.options.wal_sync_every)
            if self.options.wal_enabled
            else None
        )
        # The MANIFEST lives next to the WAL on the fastest tier; every
        # add/remove of an SSTable is logged so the level structure can
        # be rebuilt on restart (see reopen()).
        self.manifest_log = ManifestLog(layout.wal_tier)
        self.manifest.observer = self.manifest_log
        self.stats = DBStats()
        #: Per-SST-file probe counts (Mutant's temperature signal).
        self.file_read_counts: dict[int, int] = {}
        self._memtable = Memtable(seed=self.options.seed)
        self._seqno = 0
        self._closed = False
        #: Memoized per-source counters for the read path (avoids a
        #: registry lookup per get).
        self._read_source_counters: dict[str, object] = {}
        self._obs_user_writes = self.metrics.counter("db.writes")
        self._obs_user_write_bytes = self.metrics.counter("db.write_bytes")
        self._obs_flush_count = self.metrics.counter("db.flush.count")
        self._obs_flush_bytes = self.metrics.counter("db.flush.bytes")
        self._obs_bloom_skips = self.metrics.counter("db.bloom_negative_skips")
        #: Optional hook invoked as hook(user_key, record) on each read
        #: hit; PrismDB attaches the tracker here.
        self.read_hook = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, layout_code: str = "NNNTQ", options: DBOptions | None = None, **kwargs) -> "LsmDB":
        """Convenience constructor building the layout from a code string."""
        from repro.lsm.layout import build_layout

        options = options or DBOptions()
        clock = kwargs.pop("clock", None) or SimClock()
        layout = build_layout(layout_code, options, clock)
        return cls(layout, options, clock=clock, **kwargs)

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise DBClosedError(f"database {self.name!r} is closed")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, user_key: bytes, value: bytes, *, ctx=None) -> WriteResult:
        """Insert or update a key."""
        return self._write(
            Record(user_key, self._next_seqno(), ValueKind.PUT, value), ctx
        )

    def delete(self, user_key: bytes, *, ctx=None) -> WriteResult:
        """Delete a key (writes a tombstone)."""
        return self._write(Record(user_key, self._next_seqno(), ValueKind.DELETE), ctx)

    def _next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def _write(self, record: Record, ctx=None) -> WriteResult:
        self._check_open()
        latency = self._cpu_overhead
        if ctx is not None and latency:
            ctx.add("cpu", "-", latency)
        if self.wal is not None:
            latency += self.wal.append(record, ctx=ctx)
        self.row_cache.invalidate(record.user_key)
        self._memtable.add(record)
        encoded_size = record.encoded_size()
        memtable_latency = DRAM_SPEC.write_time_usec(encoded_size)
        if ctx is not None:
            ctx.add("memtable", "dram", memtable_latency)
        latency += memtable_latency
        self.stats.user_writes += 1
        self.stats.user_write_bytes += encoded_size
        self._obs_user_writes.inc()
        self._obs_user_write_bytes.inc(encoded_size)
        flushed = False
        compactions = 0
        if self._memtable.approximate_bytes >= self._memtable_limit:
            self._flush_memtable()
            flushed = True
            compactions = self.executor.maybe_compact()
        if self.wal is not None:
            self.stats.wal_bytes = self.wal.total_bytes
        return WriteResult(latency, flushed, compactions)

    def flush(self) -> int:
        """Force-flush the memtable; returns compactions triggered."""
        self._check_open()
        if len(self._memtable) == 0:
            return 0
        self._flush_memtable()
        return self.executor.maybe_compact()

    def _fresh_instance(self) -> "LsmDB":
        """A blank instance on the same layout/backend/clock (restart)."""
        return type(self)(
            self.layout,
            self.options,
            clock=self.clock,
            backend=self.backend,
            picker=self.picker,
            router=self.router,
            strategy=self.strategy,
            name=self.name,
        )

    def reopen(self) -> "LsmDB":
        """Simulate a full process restart and return the reopened DB.

        Durable state survives: SSTables (with their footers), the
        MANIFEST log, and the live WAL segment. Volatile state does not:
        the memtable is rebuilt from the WAL, the block cache starts
        cold, and every table's filter/index must be re-read on first
        use. The returned instance shares the storage backend, layout
        and clock — the "machine" — but none of the in-memory state.
        """
        self._check_open()
        self.close()
        reopened = self._fresh_instance()
        # Rebuild the level structure from the manifest log.
        live = replay_manifest(self.manifest_log.edits())
        max_seqno = 0
        by_level: dict[int, list] = {}
        for file_id, level in live.items():
            table = SSTable.open(self.backend, self.backend.get_file(file_id))
            by_level.setdefault(level, []).append(table)
            max_seqno = max(max_seqno, table.max_seqno)
        reopened.manifest.observer = None  # don't re-log recovered adds
        for level, tables in sorted(by_level.items()):
            # add_file prepends at L0, so feeding ascending file ids
            # (ids are monotonic in creation time) restores newest-first.
            for table in sorted(tables, key=lambda t: t.file_id):
                reopened.manifest.add_file(level, table)
        reopened.manifest_log.compact(live)
        reopened.manifest.observer = reopened.manifest_log
        # Replay the WAL into the fresh memtable.
        if self.wal is not None and reopened.wal is not None:
            for record in self.wal.replay():
                reopened._memtable.add(record)
                max_seqno = max(max_seqno, record.seqno)
                reopened.wal.append(record)
        reopened._seqno = max_seqno
        return reopened

    def simulate_crash_and_recover(self) -> int:
        """Lose all volatile state, then recover from durable state.

        Drops the memtable and the DRAM block cache (as a power loss
        would), then replays the live WAL segment to rebuild the
        memtable — the recovery path every WAL-backed LSM implements.
        Returns the number of records replayed. Without a WAL, unflushed
        writes are simply gone (the data-loss mode the WAL exists to
        prevent); the sequence counter is preserved either way so new
        writes stay newer than every surviving version.
        """
        self._check_open()
        self._memtable = Memtable(seed=self.options.seed + self.stats.flush_count + 1)
        self.cache.clear()
        self.row_cache.clear()
        if self.wal is None:
            return 0
        replayed = self.wal.replay()
        for record in replayed:
            self._memtable.add(record)
        return len(replayed)

    def _flush_memtable(self) -> None:
        builder = SSTableBuilder(
            self.backend,
            self.layout.tier_for_level(0),
            block_bytes=self.options.block_bytes,
            target_file_bytes=max(
                self.options.target_file_bytes, self._memtable.approximate_bytes * 2
            ),
            bits_per_key=self.options.bits_per_key,
            clock_value_fn=self.router.clock_value_fn(),
            score_exponent=self.options.score_exponent,
        )
        l0_tier = self.layout.tier_for_level(0)
        busy_before = l0_tier.device.stats.busy_usec
        with self.tracer.span(
            "flush", tier=l0_tier.name, entries=len(self._memtable)
        ) as span:
            for record in self._memtable.records():
                builder.add(record)
            table, _ = builder.finish(foreground=False)
            self.manifest.add_file(0, table)
            # Flush I/O is background: the clock does not advance, so the
            # span duration is the modeled device service time instead.
            span.set_duration(l0_tier.device.stats.busy_usec - busy_before)
        self.stats.flush_count += 1
        self.stats.flush_bytes += table.size_bytes
        self._obs_flush_count.inc()
        self._obs_flush_bytes.inc(table.size_bytes)
        self.executor.note_level_write(0, table.size_bytes)
        if self.wal is not None:
            self.wal.truncate()
        self._memtable = Memtable(seed=self.options.seed + self.stats.flush_count)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, user_key: bytes, *, ctx=None) -> ReadResult:
        """Point lookup; returns the newest committed value or None.

        ``ctx`` (an :class:`~repro.obs.attribution.OpContext`) records a
        per-component latency breakdown of the lookup; it never changes
        the simulated latency itself.
        """
        self._check_open()
        latency = self._cpu_overhead
        if ctx is not None and latency:
            ctx.add("cpu", "-", latency)
        result = None

        record = self._memtable.get(user_key)
        row_hit = False
        if record is not None:
            memtable_latency = DRAM_SPEC.read_time_usec(record.encoded_size())
            if ctx is not None:
                ctx.add("memtable", "dram", memtable_latency)
            latency += memtable_latency
            result = ReadResult(
                None if record.kind is _DELETE else record.value,
                latency,
                "memtable",
                seqno=record.seqno,
            )
        else:
            if self._row_cache_enabled:
                row_hit, row_value, row_seqno, row_latency = self.row_cache.lookup(
                    user_key, ctx
                )
                if row_hit:
                    latency += row_latency
                    result = ReadResult(row_value, latency, "rowcache", seqno=row_seqno)
        if result is None:
            for level in range(self.manifest.num_levels):
                candidates = self.manifest.candidates_for_key(level, user_key)
                found = None
                for table in candidates:
                    if ctx is not None:
                        ctx.scope = f"L{level}:f{table.file_id}"
                    hit, table_latency, filtered = table.get(
                        user_key, self.cache, foreground=True, ctx=ctx
                    )
                    latency += table_latency
                    self.file_read_counts[table.file_id] = (
                        self.file_read_counts.get(table.file_id, 0) + 1
                    )
                    if filtered:
                        self.stats.bloom_negative_skips += 1
                        self._obs_bloom_skips.inc()
                    if hit is not None:
                        found = hit
                        break
                if found is not None:
                    result = ReadResult(
                        None if found.kind is _DELETE else found.value,
                        latency,
                        f"L{level}",
                        seqno=found.seqno,
                    )
                    break
            if result is None:
                result = ReadResult(None, latency, "miss")
            if self._row_cache_enabled:
                # Remember what the tree walk resolved (value or absence).
                self.row_cache.insert(user_key, result.value, result.seqno or 0)

        self.stats.user_reads += 1
        if result.value is not None:
            self.stats.user_read_bytes += len(result.value)
        self.stats.reads_by_source.add(result.served_by)
        counter = self._read_source_counters.get(result.served_by)
        if counter is None:
            counter = self.metrics.counter("db.reads", source=result.served_by)
            self._read_source_counters[result.served_by] = counter
        counter.inc()
        if self.read_hook is not None:
            self.read_hook(user_key, result)
        return result

    # ------------------------------------------------------------------
    # Fast lanes (batched hot paths)
    #
    # A *lane* is a phase-scoped closure equivalent to one operation kind
    # with ``ctx=None``: every stable handle (stats, manifest, caches,
    # counters, option scalars) is bound once at build time, and the
    # attribution branches are compiled out entirely. The closures
    # re-read only the state that legitimately changes between calls
    # (``self._memtable`` swaps on flush, ``self.read_hook`` is settable
    # at runtime). Simulated latencies, counter updates and their
    # ordering are bit-identical to :meth:`get` / :meth:`put` — the
    # determinism tests pin this.
    #
    # Subclass safety: ``read_lane``/``write_lane`` only build the
    # inlined closure when the operation methods they replicate are the
    # ones defined at this class; a subclass that overrides ``get`` or
    # ``_write`` without supplying its own lane transparently falls back
    # to the plain per-op call.
    # ------------------------------------------------------------------
    def read_lane(self):
        """Return ``lookup(user_key) -> ReadResult``, equivalent to
        :meth:`get` with ``ctx=None``."""
        if type(self).get is not LsmDB.get:
            return self.get
        return self._build_read_lane()

    def write_lane(self):
        """Return ``commit(user_key, value) -> WriteResult``, equivalent
        to :meth:`put` with ``ctx=None``."""
        if type(self)._write is not LsmDB._write or type(self).put is not LsmDB.put:
            return self.put
        return self._build_write_lane()

    def _build_read_lane(self):
        """The inlined base read path shared by every system's lane."""
        self._check_open()
        cpu_overhead = self._cpu_overhead
        row_cache_enabled = self._row_cache_enabled
        row_lookup = self.row_cache.lookup
        row_insert = self.row_cache.insert
        candidates_for_key = self.manifest.candidates_for_key
        num_levels = self.manifest.num_levels
        level_names = [f"L{level}" for level in range(num_levels)]
        level_range = range(num_levels)
        cache = self.cache
        file_read_counts = self.file_read_counts
        stats = self.stats
        reads_by_source_add = self.stats.reads_by_source.add
        source_counters = self._read_source_counters
        metrics_counter = self.metrics.counter
        obs_bloom_skips_inc = self._obs_bloom_skips.inc
        dram_read_time = DRAM_SPEC.read_time_usec

        def lookup(user_key):
            latency = cpu_overhead
            result = None
            record = self._memtable.get(user_key)
            if record is not None:
                latency += dram_read_time(record.encoded_size())
                result = ReadResult(
                    None if record.kind is _DELETE else record.value,
                    latency,
                    "memtable",
                    seqno=record.seqno,
                )
            elif row_cache_enabled:
                row_hit, row_value, row_seqno, row_latency = row_lookup(user_key)
                if row_hit:
                    latency += row_latency
                    result = ReadResult(row_value, latency, "rowcache", seqno=row_seqno)
            if result is None:
                for level in level_range:
                    found = None
                    for table in candidates_for_key(level, user_key):
                        hit, table_latency, filtered = table.get(
                            user_key, cache, foreground=True
                        )
                        latency += table_latency
                        file_id = table.file_id
                        file_read_counts[file_id] = (
                            file_read_counts.get(file_id, 0) + 1
                        )
                        if filtered:
                            stats.bloom_negative_skips += 1
                            obs_bloom_skips_inc()
                        if hit is not None:
                            found = hit
                            break
                    if found is not None:
                        result = ReadResult(
                            None if found.kind is _DELETE else found.value,
                            latency,
                            level_names[level],
                            seqno=found.seqno,
                        )
                        break
                if result is None:
                    result = ReadResult(None, latency, "miss")
                if row_cache_enabled:
                    row_insert(user_key, result.value, result.seqno or 0)
            stats.user_reads += 1
            value = result.value
            if value is not None:
                stats.user_read_bytes += len(value)
            served_by = result.served_by
            reads_by_source_add(served_by)
            counter = source_counters.get(served_by)
            if counter is None:
                counter = metrics_counter("db.reads", source=served_by)
                source_counters[served_by] = counter
            counter.inc()
            hook = self.read_hook
            if hook is not None:
                hook(user_key, result)
            return result

        return lookup

    def _build_write_lane(self):
        """The inlined base put path shared by every system's lane."""
        self._check_open()
        cpu_overhead = self._cpu_overhead
        wal = self.wal
        wal_append = wal.append if wal is not None else None
        row_invalidate = self.row_cache.invalidate
        stats = self.stats
        obs_writes_inc = self._obs_user_writes.inc
        obs_write_bytes_inc = self._obs_user_write_bytes.inc
        memtable_limit = self._memtable_limit
        dram_write_time = DRAM_SPEC.write_time_usec
        flush_memtable = self._flush_memtable
        maybe_compact = self.executor.maybe_compact
        header_size = RECORD_HEADER_SIZE

        def commit(user_key, value):
            seqno = self._seqno + 1
            self._seqno = seqno
            record = make_put_record(user_key, seqno, value)
            encoded_size = header_size + len(user_key) + len(value)
            latency = cpu_overhead
            if wal_append is not None:
                latency += wal_append(record, size=encoded_size)
            row_invalidate(user_key)
            memtable = self._memtable
            memtable.add(record)
            latency += dram_write_time(encoded_size)
            stats.user_writes += 1
            stats.user_write_bytes += encoded_size
            obs_writes_inc()
            obs_write_bytes_inc(encoded_size)
            flushed = False
            compactions = 0
            if memtable.approximate_bytes >= memtable_limit:
                flush_memtable()
                flushed = True
                compactions = maybe_compact()
            if wal is not None:
                stats.wal_bytes = wal.total_bytes
            return WriteResult(latency, flushed, compactions)

        return commit

    def scan(self, start_key: bytes, count: int, *, ctx=None) -> ScanResult:
        """Return up to ``count`` live key-value pairs from ``start_key``."""
        self._check_open()
        if count < 0:
            raise ValueError(f"negative scan count: {count}")
        latency = self._cpu_overhead
        if ctx is not None and latency:
            ctx.add("cpu", "-", latency)
        latencies = [0.0]

        def charged(source):
            for record, step_latency in source:
                latencies[0] += step_latency
                yield record

        def level_iter(files):
            # Chain a sorted level's files lazily: the next file opens
            # only once the previous one is exhausted, so a short scan
            # touches one or two files per level instead of all of them.
            for table in files:
                if table.largest_key < start_key:
                    continue
                yield from table.iter_from(start_key, self.cache, ctx=ctx)

        sources = [self._memtable.scan_from(start_key)]
        # L0 files overlap, so each needs its own cursor.
        for table in self.manifest.files(0):
            if table.largest_key >= start_key:
                sources.append(
                    charged(table.iter_from(start_key, self.cache, ctx=ctx))
                )
        for level in range(1, self.manifest.num_levels):
            if self.manifest.is_run_stacked(level):
                # Runs within a stacked level overlap each other, so each
                # run needs its own cursor (files *within* a run are
                # disjoint and can share one, like a leveled level).
                for run in self.manifest.runs(level):
                    sources.append(charged(level_iter(run)))
            else:
                sources.append(charged(level_iter(self.manifest.files(level))))
        items: list[tuple[bytes, bytes]] = []
        for record in visible_records(merge_records(sources)):
            if len(items) >= count:
                break
            items.append((record.user_key, record.value))
        latency += latencies[0]
        self.stats.user_scans += 1
        return ScanResult(items, latency)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """A JSON-safe snapshot of every registered metric series."""
        return self.metrics.snapshot()

    @property
    def memtable_bytes(self) -> int:
        """Approximate bytes buffered in the active memtable."""
        return self._memtable.approximate_bytes

    @property
    def l0_file_count(self) -> int:
        """Files currently at L0 (the flush backlog the sampler plots)."""
        return self.manifest.file_count(0)

    def total_data_bytes(self) -> int:
        """Bytes currently stored across all levels (excl. memtable)."""
        return self.manifest.total_bytes()

    def level_summary(self) -> list[dict]:
        """Per-level file count / bytes / tier, for debugging and reports."""
        rows = []
        for level in range(self.manifest.num_levels):
            rows.append(
                {
                    "level": level,
                    "files": self.manifest.file_count(level),
                    "bytes": self.manifest.level_bytes(level),
                    "target": self.options.level_target_bytes(level),
                    "tier": self.layout.tier_for_level(level).name,
                }
            )
        return rows

    def describe(self) -> str:
        """A human-readable status report (levels, caches, I/O, policy)."""
        lines = [
            f"{type(self).__name__} {self.name!r} on {self.layout.describe()}",
            f"  clock: {self.clock.now / 1_000_000.0:.3f} sim-seconds",
            f"  memtable: {len(self._memtable)} entries, "
            f"{self._memtable.approximate_bytes} B "
            f"(flush at {self.options.memtable_bytes} B)",
        ]
        for row in self.level_summary():
            fill = row["bytes"] / row["target"] if row["target"] else 0.0
            lines.append(
                f"  L{row['level']}: {row['files']:4d} files, {row['bytes']:>12,} B "
                f"({fill:5.1%} of target) on {row['tier']}"
            )
        cache = self.cache.stats
        lines.append(
            f"  block cache: {self.cache.used_bytes}/{self.cache.capacity_bytes} B, "
            f"hit rate {cache.hit_rate():.1%}"
        )
        if self.options.row_cache_bytes:
            lines.append(
                f"  row cache: {self.row_cache.used_bytes}/{self.row_cache.capacity_bytes} B, "
                f"hit rate {self.row_cache.stats.hit_rate:.1%}"
            )
        exec_stats = self.executor.stats
        lines.append(
            f"  compactions: {exec_stats.compactions} "
            f"(+{exec_stats.trivial_moves} trivial moves), "
            f"{exec_stats.bytes_written / 2**20:.1f} MB written, "
            f"{exec_stats.records_pinned} pinned / "
            f"{exec_stats.records_pulled_up} pulled up"
        )
        lines.append(
            f"  user I/O: {self.stats.user_reads} reads, {self.stats.user_writes} writes, "
            f"WA {self.stats.write_amplification(exec_stats.bytes_written):.2f}"
        )
        for tier in self.layout.tiers:
            device = tier.device
            lines.append(
                f"  {tier.name}: {device.stats.bytes_read / 2**20:.1f} MB read, "
                f"{device.stats.bytes_written / 2**20:.1f} MB written, "
                f"wear {device.wear_cycles:.3f} P/E cycles"
            )
        return "\n".join(lines)

    def check_invariants(self) -> None:
        """Verify level structure and newest-version-on-top consistency.

        The consistency rule pinned compaction must preserve (§4.4): for
        any user key, *every* version at a deeper level is older than
        *every* version at a shallower level. We track the minimum seqno
        seen at shallower levels and require each level's maximum to stay
        below it. Run-stacked levels get the same rule *within* the
        level, run by run: point reads probe the newest run first and
        stop at the first hit, so a newer run must never hold an older
        version of a key than a run beneath it.
        """
        self.manifest.check_invariants()
        for level in range(self.manifest.num_levels):
            if not self.manifest.is_run_stacked(level):
                continue
            min_seqno_newer: dict[bytes, int] = {}
            for run in self.manifest.runs(level):  # newest first
                run_versions: dict[bytes, tuple[int, int]] = {}
                for table in run:
                    records, _ = table.read_all_records(foreground=False)
                    for record in records:
                        key = record.user_key
                        lo, hi = run_versions.get(key, (record.seqno, record.seqno))
                        run_versions[key] = (min(lo, record.seqno), max(hi, record.seqno))
                for user_key, (lo, hi) in run_versions.items():
                    newer = min_seqno_newer.get(user_key)
                    if newer is not None and hi >= newer:
                        raise AssertionError(
                            f"consistency violation: key {user_key!r} version "
                            f"seqno {hi} at L{level} is not older than seqno "
                            f"{newer} in a newer run of the same level"
                        )
                    min_seqno_newer[user_key] = lo if newer is None else min(newer, lo)
        min_seqno_above: dict[bytes, int] = {}
        for level in range(self.manifest.num_levels):
            level_min: dict[bytes, int] = {}
            level_max: dict[bytes, int] = {}
            for table in self.manifest.files(level):
                records, _ = table.read_all_records(foreground=False)
                for record in records:
                    key = record.user_key
                    level_min[key] = min(level_min.get(key, record.seqno), record.seqno)
                    level_max[key] = max(level_max.get(key, record.seqno), record.seqno)
            for user_key, seqno in level_max.items():
                above = min_seqno_above.get(user_key)
                if above is not None and seqno >= above:
                    raise AssertionError(
                        f"consistency violation: key {user_key!r} version "
                        f"seqno {seqno} at L{level} is not older than "
                        f"seqno {above} at a shallower level"
                    )
            for user_key, seqno in level_min.items():
                above = min_seqno_above.get(user_key)
                min_seqno_above[user_key] = seqno if above is None else min(above, seqno)
