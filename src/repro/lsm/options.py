"""Engine configuration.

Defaults are scaled-down but proportionate to the paper's setup: the
level size multiplier, L0 trigger, block size, and bits-per-key match
RocksDB's; absolute sizes are shrunk so simulations of 10⁴–10⁶ keys run
in seconds (see DESIGN.md, "Reproduction mode").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KIB
from repro.errors import ConfigError


@dataclass
class DBOptions:
    """Tuning knobs for :class:`~repro.lsm.db.LsmDB` and its components."""

    #: Memtable flush threshold.
    memtable_bytes: int = 64 * KIB
    #: Data block target size (the caching granularity, §3.3).
    block_bytes: int = 4 * KIB
    #: SSTable target size.
    target_file_bytes: int = 64 * KIB
    #: Number of on-disk levels (L0..L{n-1}); the paper uses 5.
    num_levels: int = 5
    #: L0 file count that triggers an L0->L1 compaction.
    l0_compaction_trigger: int = 4
    #: Target size of L1; deeper levels multiply by the level multiplier.
    level1_target_bytes: int = 256 * KIB
    #: Ratio between consecutive level targets (RocksDB default 10; the
    #: paper's Fig. 1 example uses 8).
    level_size_multiplier: int = 8
    #: Bloom filter density (RocksDB default).
    bits_per_key: int = 10
    #: DRAM block cache capacity; 0 disables caching (Fig. 13).
    block_cache_bytes: int = 512 * KIB
    #: Optional object-granularity row cache (RocksDB's row_cache); 0
    #: disables it. Used by the §3.3 caching-granularity extension.
    row_cache_bytes: int = 0
    #: Whether updates are logged to the WAL before the memtable.
    wal_enabled: bool = True
    #: Per-operation CPU cost (request parsing, memtable walk, etc.).
    cpu_overhead_usec: float = 2.0
    #: Extra per-read CPU cost of PrismDB's tracker insertion; the paper
    #: microbenchmarks it at < 2 us (§6.5). Applied only when a tracker
    #: is attached.
    tracker_overhead_usec: float = 1.5
    #: Exponent n in the SST popularity score Σ clockⁿ (§4.3; paper uses 3).
    score_exponent: int = 3
    #: Fraction of each level's target reserved for pinned (hot) data.
    #: Hot-scored file bytes up to this reserve are excluded from the
    #: level's compaction score, so retaining popular keys does not
    #: re-trigger compaction of the level that holds them — the
    #: level-sizing accommodation that keeps pinning from churning
    #: (§4.3's "placer must take level sizing into account").
    pin_reserve_fraction: float = 0.5
    #: RNG seed for skiplists and any stochastic policy decisions.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.memtable_bytes <= 0:
            raise ConfigError("memtable_bytes must be positive")
        if self.block_bytes <= 0 or self.block_bytes > self.target_file_bytes:
            raise ConfigError("block_bytes must be in (0, target_file_bytes]")
        if self.num_levels < 2:
            raise ConfigError("num_levels must be at least 2")
        if self.l0_compaction_trigger < 1:
            raise ConfigError("l0_compaction_trigger must be >= 1")
        if self.level_size_multiplier < 2:
            raise ConfigError("level_size_multiplier must be >= 2")
        if self.level1_target_bytes < self.target_file_bytes:
            raise ConfigError("level1_target_bytes must hold at least one file")

    def level_target_bytes(self, level: int) -> int:
        """Size target of ``level``; L0's target is the trigger in bytes."""
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level out of range: {level}")
        if level == 0:
            return self.l0_compaction_trigger * self.memtable_bytes
        return self.level1_target_bytes * self.level_size_multiplier ** (level - 1)

    def total_capacity_bytes(self) -> int:
        """Sum of all level targets."""
        return sum(self.level_target_bytes(level) for level in range(self.num_levels))


def options_for_db_size(
    db_bytes: int,
    *,
    num_levels: int = 5,
    level_size_multiplier: int = 10,
    **overrides,
) -> DBOptions:
    """Build options whose bottom level holds the bulk of ``db_bytes``.

    Mirrors RocksDB's dynamic level sizing: the bottom level's target is
    the database size and each shallower level divides by the multiplier,
    so ~90 % of the data lives at the bottom — matching the paper's
    configuration where the last level "contains the key space of the
    entire database" and the NVM:TLC:QLC split is roughly 1:9:90.
    """
    if db_bytes <= 0:
        raise ConfigError("db_bytes must be positive")
    level1 = int(db_bytes / level_size_multiplier ** (num_levels - 2))
    defaults = {
        "memtable_bytes": 16 * KIB,
        "target_file_bytes": 16 * KIB,
    }
    defaults.update(overrides)
    file_bytes = defaults["target_file_bytes"]
    level1 = max(level1, file_bytes)
    return DBOptions(
        num_levels=num_levels,
        level_size_multiplier=level_size_multiplier,
        level1_target_bytes=level1,
        **defaults,
    )
