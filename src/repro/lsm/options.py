"""Engine configuration.

Defaults are scaled-down but proportionate to the paper's setup: the
level size multiplier, L0 trigger, block size, and bits-per-key match
RocksDB's; absolute sizes are shrunk so simulations of 10⁴–10⁶ keys run
in seconds (see DESIGN.md, "Reproduction mode").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import KIB
from repro.errors import ConfigError

#: Compaction *shape* axis (see repro.lsm.strategy / docs/COMPACTION.md):
#: how runs are arranged per level and what a compaction job merges.
COMPACTION_SHAPES = ("leveling", "tiering", "lazy-leveling")
#: Compaction *trigger* axis: when a level is considered over-full.
COMPACTION_TRIGGERS = ("size-ratio", "file-count", "staleness")
#: Compaction *picking* axis: which file(s) a partial compaction takes.
#: "default" defers to the system (RocksDB: largest; PrismDB: lowest
#: popularity score).
COMPACTION_PICKERS = ("default", "largest", "oldest", "lowest-score", "round-robin")


@dataclass
class DBOptions:
    """Tuning knobs for :class:`~repro.lsm.db.LsmDB` and its components."""

    #: Memtable flush threshold.
    memtable_bytes: int = 64 * KIB
    #: Data block target size (the caching granularity, §3.3).
    block_bytes: int = 4 * KIB
    #: SSTable target size.
    target_file_bytes: int = 64 * KIB
    #: Number of on-disk levels (L0..L{n-1}); the paper uses 5.
    num_levels: int = 5
    #: L0 file count that triggers an L0->L1 compaction.
    l0_compaction_trigger: int = 4
    #: Target size of L1; deeper levels multiply by the level multiplier.
    level1_target_bytes: int = 256 * KIB
    #: Ratio between consecutive level targets (RocksDB default 10; the
    #: paper's Fig. 1 example uses 8).
    level_size_multiplier: int = 8
    #: Bloom filter density (RocksDB default).
    bits_per_key: int = 10
    #: DRAM block cache capacity; 0 disables caching (Fig. 13).
    block_cache_bytes: int = 512 * KIB
    #: Optional object-granularity row cache (RocksDB's row_cache); 0
    #: disables it. Used by the §3.3 caching-granularity extension.
    row_cache_bytes: int = 0
    #: Whether updates are logged to the WAL before the memtable.
    wal_enabled: bool = True
    #: Group-commit factor: only every N-th WAL append pays the device's
    #: program latency; the others ride in the same batch and pay only
    #: transfer cost. 1 (the default) syncs every append — the paper's
    #: single-instance configuration. The fleet router raises this to
    #: model router-side batched WAL (see docs/FLEET.md).
    wal_sync_every: int = 1
    #: Per-operation CPU cost (request parsing, memtable walk, etc.).
    cpu_overhead_usec: float = 2.0
    #: Extra per-read CPU cost of PrismDB's tracker insertion; the paper
    #: microbenchmarks it at < 2 us (§6.5). Applied only when a tracker
    #: is attached.
    tracker_overhead_usec: float = 1.5
    #: Exponent n in the SST popularity score Σ clockⁿ (§4.3; paper uses 3).
    score_exponent: int = 3
    #: Fraction of each level's target reserved for pinned (hot) data.
    #: Hot-scored file bytes up to this reserve are excluded from the
    #: level's compaction score, so retaining popular keys does not
    #: re-trigger compaction of the level that holds them — the
    #: level-sizing accommodation that keeps pinning from churning
    #: (§4.3's "placer must take level sizing into account").
    pin_reserve_fraction: float = 0.5
    #: RNG seed for skiplists and any stochastic policy decisions.
    seed: int = 0
    #: Run compaction merges in the encoded domain: inputs are scanned as
    #: byte spans, ordered/shadowed/routed over parallel arrays, and
    #: re-emitted as slices — no Record objects on the merge path.
    #: Simulated results are bit-identical to the record-based merge
    #: (pinned by tests/lsm/test_encoded_merge.py); disable to force the
    #: record path, which also serves as the executable specification.
    #: Routers that do not declare ``supports_encoded_routing`` fall back
    #: to the record path regardless of this flag.
    encoded_compaction: bool = True
    #: Compaction shape by name: "leveling" (one sorted run per level,
    #: the default and the paper's configuration), "tiering" (a stack of
    #: sorted runs per level; a full level merges into one new run one
    #: level down), or "lazy-leveling" (tiering in the middle levels,
    #: leveling at the last — Dostoevsky's hybrid).
    compaction_shape: str = "leveling"
    #: Compaction trigger by name: "size-ratio" (RocksDB-style level
    #: bytes vs target, L0 by file count), "file-count" (any level fires
    #: at ``file_count_trigger`` files), or "staleness" (size-ratio plus
    #: a fire when a level's oldest file falls ``staleness_file_window``
    #: file-ids behind the newest file in the tree).
    compaction_trigger: str = "size-ratio"
    #: Compaction picker by name; "default" defers to the system's
    #: choice (largest-file unless a picker is injected, as PrismDB's
    #: lowest-score picker is). Picking only matters for partial
    #: (leveled) compactions — tiered shapes always merge whole levels.
    compaction_picker: str = "default"
    #: Tiering / lazy-leveling: a run-stacked level compacts when it
    #: holds this many sorted runs.
    tiering_run_trigger: int = 4
    #: "file-count" trigger: a leveled level (L1+) compacts at this many
    #: files; L0 keeps using ``l0_compaction_trigger``.
    file_count_trigger: int = 8
    #: "staleness" trigger: a level fires when its oldest file's id lags
    #: the newest file id in the tree by at least this window.
    staleness_file_window: int = 64

    def __post_init__(self) -> None:
        if self.memtable_bytes <= 0:
            raise ConfigError("memtable_bytes must be positive")
        if self.block_bytes <= 0 or self.block_bytes > self.target_file_bytes:
            raise ConfigError("block_bytes must be in (0, target_file_bytes]")
        if self.num_levels < 2:
            raise ConfigError("num_levels must be at least 2")
        if self.l0_compaction_trigger < 1:
            raise ConfigError("l0_compaction_trigger must be >= 1")
        if self.level_size_multiplier < 2:
            raise ConfigError("level_size_multiplier must be >= 2")
        if self.level1_target_bytes < self.target_file_bytes:
            raise ConfigError("level1_target_bytes must hold at least one file")
        if self.compaction_shape not in COMPACTION_SHAPES:
            raise ConfigError(
                f"unknown compaction_shape {self.compaction_shape!r}; "
                f"choose from {COMPACTION_SHAPES}"
            )
        if self.compaction_trigger not in COMPACTION_TRIGGERS:
            raise ConfigError(
                f"unknown compaction_trigger {self.compaction_trigger!r}; "
                f"choose from {COMPACTION_TRIGGERS}"
            )
        if self.compaction_picker not in COMPACTION_PICKERS:
            raise ConfigError(
                f"unknown compaction_picker {self.compaction_picker!r}; "
                f"choose from {COMPACTION_PICKERS}"
            )
        if self.tiering_run_trigger < 2:
            raise ConfigError("tiering_run_trigger must be >= 2")
        if self.file_count_trigger < 1:
            raise ConfigError("file_count_trigger must be >= 1")
        if self.staleness_file_window < 1:
            raise ConfigError("staleness_file_window must be >= 1")
        if self.wal_sync_every < 1:
            raise ConfigError("wal_sync_every must be >= 1")

    def level_target_bytes(self, level: int) -> int:
        """Size target of ``level``; L0's target is the trigger in bytes."""
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level out of range: {level}")
        if level == 0:
            return self.l0_compaction_trigger * self.memtable_bytes
        return self.level1_target_bytes * self.level_size_multiplier ** (level - 1)

    def total_capacity_bytes(self) -> int:
        """Sum of all level targets."""
        return sum(self.level_target_bytes(level) for level in range(self.num_levels))


def options_for_db_size(
    db_bytes: int,
    *,
    num_levels: int = 5,
    level_size_multiplier: int = 10,
    **overrides,
) -> DBOptions:
    """Build options whose bottom level holds the bulk of ``db_bytes``.

    Mirrors RocksDB's dynamic level sizing: the bottom level's target is
    the database size and each shallower level divides by the multiplier,
    so ~90 % of the data lives at the bottom — matching the paper's
    configuration where the last level "contains the key space of the
    entire database" and the NVM:TLC:QLC split is roughly 1:9:90.
    """
    if db_bytes <= 0:
        raise ConfigError("db_bytes must be positive")
    level1 = int(db_bytes / level_size_multiplier ** (num_levels - 2))
    defaults = {
        "memtable_bytes": 16 * KIB,
        "target_file_bytes": 16 * KIB,
    }
    defaults.update(overrides)
    file_bytes = defaults["target_file_bytes"]
    level1 = max(level1, file_bytes)
    return DBOptions(
        num_levels=num_levels,
        level_size_multiplier=level_size_multiplier,
        level1_target_bytes=level1,
        **defaults,
    )
