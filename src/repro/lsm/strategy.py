"""Compaction strategies: the shape and trigger axes of the design space.

Sarkar et al. ("Compactionary", arXiv:2202.04522) decompose LSM
compaction into orthogonal policy choices; this module implements the
two that the executor in :mod:`repro.lsm.compaction` does not already
expose as seams:

* **Shape** (eagerness): how runs are arranged per level and what one
  compaction job merges. :class:`LevelingStrategy` keeps one sorted run
  per level and merges one picked file down (the paper's configuration).
  :class:`TieringStrategy` stacks sorted runs per level and merges a
  whole level into one new run one level down. :class:`LazyLevelingStrategy`
  tiers the middle levels but levels the last one (Dostoevsky's hybrid —
  tiering's write cost for most data, leveling's read cost where most
  data lives).
* **Trigger**: when a level counts as over-full. :class:`SizeRatioTrigger`
  is RocksDB's bytes-vs-target rule, :class:`FileCountTrigger` fires on
  file counts alone, and :class:`StalenessTrigger` adds an age rule so
  old files are rewritten even without size pressure.

The third axis, *picking*, stays in :mod:`repro.lsm.compaction`
(:class:`~repro.lsm.compaction.CompactionPicker`) because only partial
— i.e. leveled — compactions pick files; tiered jobs always merge whole
levels. The §4.4 consistency rule forces this: on a run-stacked level a
partial merge could move a key's newest version below an older version
left behind in a sibling run, so tiered jobs take *every* run of the
level, which also makes the rule's "newest surviving version only"
contract trivially true for the router.

``make_strategy`` / ``make_trigger`` / ``make_picker`` build policies
from the names in :class:`~repro.lsm.options.DBOptions`; see
docs/COMPACTION.md for the handbook and a worked "add a policy"
example.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.errors import CompactionError, ConfigError
from repro.lsm.compaction import (
    CompactionJob,
    CompactionPicker,
    LargestFilePicker,
    OldestFilePicker,
    RoundRobinPicker,
)
from repro.lsm.options import DBOptions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lsm.compaction import CompactionExecutor


class TriggerPolicy(abc.ABC):
    """When is a level over-full? Scores >= 1.0 fire a compaction."""

    name: str = "?"

    @abc.abstractmethod
    def level_score(self, executor: CompactionExecutor, level: int) -> float:
        """Urgency of compacting a *leveled* level (or L0)."""

    def run_stack_score(self, executor: CompactionExecutor, level: int) -> float:
        """Urgency of compacting a *run-stacked* level.

        The default is the classic tiering rule: fire when the stack
        reaches ``tiering_run_trigger`` sorted runs.
        """
        return (
            executor.manifest.run_count(level)
            / executor.options.tiering_run_trigger
        )

    def prefers_oldest(self, executor: CompactionExecutor, level: int) -> bool:
        """Whether this firing should compact the oldest file first.

        Age-based triggers override this so a partial compaction is
        guaranteed to retire the file that caused the firing; otherwise
        a size-based picker could leave the stale file in place forever.
        """
        return False


class SizeRatioTrigger(TriggerPolicy):
    """RocksDB's rule: level bytes vs target; L0 by file count.

    Hot (positively-scored) bytes are discounted up to the pin reserve:
    retained popular data occupies the level without re-triggering
    compaction of it (§4.3's level-sizing accommodation).
    """

    name = "size-ratio"

    def level_score(self, executor: CompactionExecutor, level: int) -> float:
        manifest, options = executor.manifest, executor.options
        if level == 0:
            return manifest.file_count(0) / options.l0_compaction_trigger
        target = options.level_target_bytes(level)
        reserve = int(target * options.pin_reserve_fraction)
        discounted = min(executor.hot_bytes(level), reserve)
        return (manifest.level_bytes(level) - discounted) / target


class FileCountTrigger(TriggerPolicy):
    """Fire on file counts alone: L0 at ``l0_compaction_trigger`` files,
    deeper levels at ``file_count_trigger`` files.

    Size-blind, so a level full of tiny files (heavy pinning, small
    flushes) still gets consolidated; conversely a level holding few
    huge files never fires. On run-stacked levels it counts files, not
    runs, for the same reason.
    """

    name = "file-count"

    def level_score(self, executor: CompactionExecutor, level: int) -> float:
        manifest, options = executor.manifest, executor.options
        if level == 0:
            return manifest.file_count(0) / options.l0_compaction_trigger
        return manifest.file_count(level) / options.file_count_trigger

    def run_stack_score(self, executor: CompactionExecutor, level: int) -> float:
        return (
            executor.manifest.file_count(level)
            / executor.options.file_count_trigger
        )


class StalenessTrigger(SizeRatioTrigger):
    """Size-ratio plus an age rule.

    A level also fires when its oldest file's id lags the newest file id
    anywhere in the tree by at least ``staleness_file_window`` — a proxy
    for wall-clock age in a simulator where file ids are monotonic.
    Rewriting stale files bounds how long deleted/shadowed data can hide
    in a quiet level. Firings caused by age compact the *oldest* file
    (see :meth:`prefers_oldest`), so each job retires the offending file
    and the score converges.
    """

    name = "staleness"

    def _staleness(self, executor: CompactionExecutor, level: int) -> float:
        files = executor.manifest.files(level)
        if not files:
            return 0.0
        newest = max(t.file_id for _, t in executor.manifest.all_files())
        oldest = min(t.file_id for t in files)
        return (newest - oldest) / executor.options.staleness_file_window

    def level_score(self, executor: CompactionExecutor, level: int) -> float:
        return max(
            super().level_score(executor, level),
            self._staleness(executor, level),
        )

    def run_stack_score(self, executor: CompactionExecutor, level: int) -> float:
        return max(
            super().run_stack_score(executor, level),
            self._staleness(executor, level),
        )

    def prefers_oldest(self, executor: CompactionExecutor, level: int) -> bool:
        return self._staleness(executor, level) >= 1.0


class CompactionStrategy(abc.ABC):
    """The shape axis: run arrangement per level and job planning."""

    name: str = "?"

    def __init__(self, trigger: TriggerPolicy | None = None) -> None:
        self.trigger = trigger or SizeRatioTrigger()

    @abc.abstractmethod
    def run_stacked_levels(self, options: DBOptions) -> tuple[int, ...]:
        """Which levels hold run stacks (passed to :class:`LevelManifest`)."""

    @abc.abstractmethod
    def score(self, executor: CompactionExecutor, level: int) -> float:
        """Compaction urgency of ``level``; >= 1.0 means over-full."""

    @abc.abstractmethod
    def plan_job(self, executor: CompactionExecutor, level: int) -> CompactionJob | None:
        """Plan one compaction of ``level``, or None if there is nothing
        to do. Raises :class:`CompactionError` for levels the shape
        forbids compacting (the bottom, for leveled shapes)."""

    def pick_level(self, executor: CompactionExecutor) -> int | None:
        """The compactable level with the highest score >= 1.0, if any."""
        best_level, best_score = None, 1.0
        for level in self.compactable_levels(executor):
            score = self.score(executor, level)
            if score >= best_score:
                best_level, best_score = level, score
        return best_level

    def compactable_levels(self, executor: CompactionExecutor) -> range:
        """Levels :meth:`pick_level` considers (default: all but bottom)."""
        return range(executor.manifest.num_levels - 1)

    # ------------------------------------------------------------------
    # Shared planning helpers
    # ------------------------------------------------------------------
    def _leveled_job(
        self, executor: CompactionExecutor, level: int, upper_inputs: list
    ) -> CompactionJob | None:
        """A classic merge of ``upper_inputs`` into the overlap below."""
        if not upper_inputs:
            return None
        manifest, layout, router = executor.manifest, executor.layout, executor.router
        upper_lo = min(table.smallest_key for table in upper_inputs)
        upper_hi = max(table.largest_key for table in upper_inputs)
        lower_inputs = manifest.overlapping_files(level + 1, upper_lo, upper_hi)
        if (
            not lower_inputs
            and len(upper_inputs) == 1
            and router.allows_trivial_move(upper_inputs[0])
            and layout.tier_for_level(level) is layout.tier_for_level(level + 1)
        ):
            return CompactionJob(
                "trivial-move", level, level + 1, upper_inputs, [], upper_lo, upper_hi
            )
        return CompactionJob(
            "leveled", level, level + 1, upper_inputs, lower_inputs,
            upper_lo, upper_hi,
            drop_tombstones=level + 1 == manifest.num_levels - 1,
        )

    def _tiered_job(
        self,
        executor: CompactionExecutor,
        level: int,
        lower_level: int,
        *,
        drop_tombstones: bool,
    ) -> CompactionJob | None:
        """A whole-level merge appended as one new run at ``lower_level``."""
        upper_inputs = list(executor.manifest.files(level))
        if not upper_inputs:
            return None
        return CompactionJob(
            "tiered", level, lower_level, upper_inputs, [],
            min(table.smallest_key for table in upper_inputs),
            max(table.largest_key for table in upper_inputs),
            drop_tombstones=drop_tombstones,
        )


class LevelingStrategy(CompactionStrategy):
    """One sorted run per level; partial merges of picked files.

    This is the shape the paper (and RocksDB's leveled compaction) uses,
    and the executor's original hardcoded behaviour: the baselines'
    zero-tolerance determinism tests pin this strategy (with
    :class:`SizeRatioTrigger`) to its historical output bit for bit.
    """

    name = "leveling"

    def run_stacked_levels(self, options: DBOptions) -> tuple[int, ...]:
        return ()

    def score(self, executor: CompactionExecutor, level: int) -> float:
        if level >= executor.manifest.num_levels - 1:
            return 0.0  # the bottom level never compacts down
        return self.trigger.level_score(executor, level)

    def plan_job(self, executor: CompactionExecutor, level: int) -> CompactionJob | None:
        manifest = executor.manifest
        if level >= manifest.num_levels - 1:
            raise CompactionError(f"cannot compact bottom level L{level}")
        if level == 0:
            upper_inputs = list(manifest.files(0))
        elif self.trigger.prefers_oldest(executor, level):
            upper_inputs = OldestFilePicker().pick_files(manifest, level)
        else:
            upper_inputs = executor.picker.pick_files(manifest, level)
        return self._leveled_job(executor, level, upper_inputs)


class TieringStrategy(CompactionStrategy):
    """A stack of sorted runs per level; whole-level merges.

    Every level below L0 is run-stacked. A full level merges all of its
    runs into one new run pushed onto the level below — each record is
    rewritten once per level, the write-optimized end of the eagerness
    spectrum, paid for with one extra probe per run on reads. The bottom
    level consolidates in place (all runs -> one run) when its stack
    reaches the trigger; consolidation is the only job whose output can
    drop tombstones unconditionally, since nothing older survives it.
    """

    name = "tiering"

    def run_stacked_levels(self, options: DBOptions) -> tuple[int, ...]:
        return tuple(range(1, options.num_levels))

    def score(self, executor: CompactionExecutor, level: int) -> float:
        if level == 0:
            return self.trigger.level_score(executor, 0)
        if level == executor.manifest.num_levels - 1:
            # Bottom consolidation is purely run-count driven: it cannot
            # shrink the level, only its stack, so size/age triggers
            # would fire forever here.
            return (
                executor.manifest.run_count(level)
                / executor.options.tiering_run_trigger
            )
        return self.trigger.run_stack_score(executor, level)

    def compactable_levels(self, executor: CompactionExecutor) -> range:
        return range(executor.manifest.num_levels)  # bottom consolidates

    def plan_job(self, executor: CompactionExecutor, level: int) -> CompactionJob | None:
        manifest = executor.manifest
        bottom = manifest.num_levels - 1
        if not 0 <= level <= bottom:
            raise CompactionError(f"level out of range: L{level}")
        if level == bottom:
            if manifest.run_count(level) <= 1:
                return None  # already one run; nothing to consolidate
            return self._tiered_job(executor, level, level, drop_tombstones=True)
        # Tombstones can be dropped on the way down only when the output
        # run will be the sole run of the bottom level.
        into_empty_bottom = level + 1 == bottom and manifest.file_count(bottom) == 0
        return self._tiered_job(
            executor, level, level + 1, drop_tombstones=into_empty_bottom
        )


class LazyLevelingStrategy(CompactionStrategy):
    """Dostoevsky's hybrid: tier the middle levels, level the last.

    Middle levels are run-stacked and merge whole-level like tiering;
    the bottom level — where ~90 % of the data lives — stays one sorted
    run, so point reads pay tiering's extra probes only on the small
    upper levels. The last stacked level merges *leveled-style* into the
    bottom: all of its files as upper inputs plus the overlapping bottom
    files, with router-retained records re-stacked above.
    """

    name = "lazy-leveling"

    def run_stacked_levels(self, options: DBOptions) -> tuple[int, ...]:
        return tuple(range(1, options.num_levels - 1))

    def score(self, executor: CompactionExecutor, level: int) -> float:
        if level >= executor.manifest.num_levels - 1:
            return 0.0  # the bottom level never compacts down
        if level == 0 or not executor.manifest.is_run_stacked(level):
            return self.trigger.level_score(executor, level)
        return self.trigger.run_stack_score(executor, level)

    def plan_job(self, executor: CompactionExecutor, level: int) -> CompactionJob | None:
        manifest = executor.manifest
        bottom = manifest.num_levels - 1
        if level >= bottom:
            raise CompactionError(f"cannot compact bottom level L{level}")
        if level + 1 == bottom:
            # Into the leveled bottom: a whole-level leveled merge. All
            # files of this level participate, so the §4.4 "newest
            # version only" contract holds even though the level's runs
            # overlap.
            return self._leveled_job(executor, level, list(manifest.files(level)))
        return self._tiered_job(executor, level, level + 1, drop_tombstones=False)


# ----------------------------------------------------------------------
# Name -> policy factories (the DBOptions seam)
# ----------------------------------------------------------------------
_TRIGGERS = {
    "size-ratio": SizeRatioTrigger,
    "file-count": FileCountTrigger,
    "staleness": StalenessTrigger,
}
_SHAPES = {
    "leveling": LevelingStrategy,
    "tiering": TieringStrategy,
    "lazy-leveling": LazyLevelingStrategy,
}


def make_trigger(name: str) -> TriggerPolicy:
    """Build a trigger policy from its ``DBOptions.compaction_trigger`` name."""
    try:
        return _TRIGGERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown compaction_trigger {name!r}; choose from {sorted(_TRIGGERS)}"
        ) from None


def make_strategy(options: DBOptions) -> CompactionStrategy:
    """Build the shape+trigger composite selected by ``options``."""
    try:
        shape = _SHAPES[options.compaction_shape]
    except KeyError:
        raise ConfigError(
            f"unknown compaction_shape {options.compaction_shape!r}; "
            f"choose from {sorted(_SHAPES)}"
        ) from None
    return shape(make_trigger(options.compaction_trigger))


def make_picker(name: str) -> CompactionPicker | None:
    """Build a picker from its ``DBOptions.compaction_picker`` name.

    Returns None for ``"default"`` so the system keeps its own choice
    (LsmDB: largest-file; PrismDB: the §4.3 lowest-score picker).
    """
    if name == "default":
        return None
    if name == "largest":
        return LargestFilePicker()
    if name == "oldest":
        return OldestFilePicker()
    if name == "round-robin":
        return RoundRobinPicker()
    if name == "lowest-score":
        # Deferred: repro.core depends on repro.lsm, not the reverse;
        # resolving the name here at call time keeps imports acyclic.
        from repro.core.placer import LowestScorePicker

        return LowestScorePicker()
    raise ConfigError(f"unknown compaction_picker {name!r}")
