"""The in-memory write buffer.

Writes land in the memtable first; when it reaches its size budget the DB
flushes it to an L0 SSTable. The memtable keeps the *latest* version per
user key (the simulator exposes no snapshot reads, so shadowed in-memory
versions would never be observable; the flushed SSTable therefore carries
exactly one version per key, as a RocksDB flush with default settings
effectively does after its own dedup).

The container is a plain dict plus a memoized sorted-key array. The
simulator's access pattern makes this strictly better than the skiplist
it replaces: the write path needs hashed point access (O(1) vs the
skiplist's O(log n) pointer chase per insert), while sorted order is only
demanded in bulk — at flush, or by a scan — where one C-level ``sorted``
over the keys amortizes to far less than per-insert ordering. Updates to
an existing key never invalidate the memo; only a brand-new key does.
The ``seed`` parameter is retained for construction-site compatibility
(the skiplist needed it for tower heights; a dict draws nothing).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

from repro.lsm.record import Record, ValueKind


class Memtable:
    """Hash-backed buffer of the newest un-flushed writes."""

    __slots__ = ("_records", "_sorted_keys", "_approx_bytes")

    def __init__(self, seed: int = 0) -> None:
        self._records: dict[bytes, Record] = {}
        #: Ascending user keys, memoized; None when a new key was added
        #: since the last sort.
        self._sorted_keys: list[bytes] | None = []
        self._approx_bytes = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def approximate_bytes(self) -> int:
        """Serialized size estimate used for the flush trigger."""
        return self._approx_bytes

    def add(self, record: Record) -> None:
        """Insert a PUT or DELETE record, replacing any older version."""
        records = self._records
        key = record.user_key
        previous = records.get(key)
        if previous is not None:
            if previous.seqno >= record.seqno:
                raise ValueError(
                    f"non-monotonic write to {record.user_key!r}: "
                    f"seqno {record.seqno} after {previous.seqno}"
                )
            self._approx_bytes -= previous.encoded_size()
        else:
            self._sorted_keys = None
        records[key] = record
        self._approx_bytes += record.encoded_size()

    def _ordered_keys(self) -> list[bytes]:
        keys = self._sorted_keys
        if keys is None:
            keys = self._sorted_keys = sorted(self._records)
        return keys

    def get(self, user_key: bytes) -> Record | None:
        """Return the newest record for ``user_key`` (may be a tombstone)."""
        return self._records.get(user_key)

    def scan_from(self, user_key: bytes) -> Iterator[Record]:
        """Records with user key >= ``user_key`` in ascending order."""
        keys = self._ordered_keys()
        records = self._records
        for index in range(bisect_left(keys, user_key), len(keys)):
            yield records[keys[index]]

    def records(self) -> Iterator[Record]:
        """All records in ascending user-key order (flush order)."""
        records = self._records
        for key in self._ordered_keys():
            yield records[key]

    def smallest_key(self) -> bytes | None:
        keys = self._ordered_keys()
        return keys[0] if keys else None

    def largest_key(self) -> bytes | None:
        keys = self._ordered_keys()
        return keys[-1] if keys else None

    def live_entry_count(self) -> int:
        """Number of non-tombstone entries currently buffered."""
        put = ValueKind.PUT
        return sum(1 for record in self._records.values() if record.kind == put)
