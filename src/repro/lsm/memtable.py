"""The in-memory write buffer.

Writes land in the memtable first; when it reaches its size budget the DB
flushes it to an L0 SSTable. The memtable keeps the *latest* version per
user key (the simulator exposes no snapshot reads, so shadowed in-memory
versions would never be observable; the flushed SSTable therefore carries
exactly one version per key, as a RocksDB flush with default settings
effectively does after its own dedup).
"""

from __future__ import annotations

from typing import Iterator

from repro.lsm.record import Record, ValueKind
from repro.lsm.skiplist import SkipList


class Memtable:
    """Skiplist-backed buffer of the newest un-flushed writes."""

    def __init__(self, seed: int = 0) -> None:
        self._table = SkipList(seed=seed)
        self._approx_bytes = 0

    def __len__(self) -> int:
        return len(self._table)

    @property
    def approximate_bytes(self) -> int:
        """Serialized size estimate used for the flush trigger."""
        return self._approx_bytes

    def add(self, record: Record) -> None:
        """Insert a PUT or DELETE record, replacing any older version."""
        previous: Record | None = self._table.get(record.user_key)
        if previous is not None:
            if previous.seqno >= record.seqno:
                raise ValueError(
                    f"non-monotonic write to {record.user_key!r}: "
                    f"seqno {record.seqno} after {previous.seqno}"
                )
            self._approx_bytes -= previous.encoded_size()
        self._table.insert(record.user_key, record)
        self._approx_bytes += record.encoded_size()

    def get(self, user_key: bytes) -> Record | None:
        """Return the newest record for ``user_key`` (may be a tombstone)."""
        return self._table.get(user_key)

    def scan_from(self, user_key: bytes) -> Iterator[Record]:
        """Records with user key >= ``user_key`` in ascending order."""
        for _, record in self._table.seek_ceiling(user_key):
            yield record

    def records(self) -> Iterator[Record]:
        """All records in ascending user-key order (flush order)."""
        for _, record in self._table.items():
            yield record

    def smallest_key(self) -> bytes | None:
        return self._table.first_key()

    def largest_key(self) -> bytes | None:
        return self._table.last_key()

    def live_entry_count(self) -> int:
        """Number of non-tombstone entries currently buffered."""
        return sum(1 for record in self.records() if record.kind == ValueKind.PUT)
