"""Leveled compaction.

The executor is shared by every system in the reproduction; behaviour is
specialized through two seams, exactly the two knobs the paper turns:

* a :class:`CompactionPicker` chooses *which SST file* to compact from an
  over-full level (classic RocksDB: largest file; PrismDB §4.3: the file
  with the lowest popularity score), and
* a :class:`MergeRouter` decides *where each merged record goes* (classic:
  everything moves down; PrismDB §4.2-4.3: popular keys are pinned to the
  upper level or pulled up from the lower one).

The router contract keeps the LSM consistency guarantee (§4.4): the
executor feeds it only the *newest* surviving version of each key among
the compaction inputs, and up-routing is restricted to the upper input
key range so level disjointness is preserved.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import CompactionError
from repro.lsm.block_cache import BlockCache
from repro.lsm.iterators import merge_sorted_lists
from repro.lsm.layout import StorageLayout
from repro.lsm.options import DBOptions
from repro.lsm.record import Record
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.obs import NOOP_TRACER, MetricsRegistry, Tracer
from repro.storage.backend import StorageBackend


class CompactionPicker(abc.ABC):
    """Chooses the input file(s) from an over-full level."""

    @abc.abstractmethod
    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        """Select upper-level input files for a compaction of ``level``."""


class LargestFilePicker(CompactionPicker):
    """Classic heuristic: compact the biggest file (reclaims most space)."""

    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        files = manifest.files(level)
        if not files:
            return []
        return [max(files, key=lambda table: (table.size_bytes, -table.file_id))]


class OldestFilePicker(CompactionPicker):
    """Round-robin-ish alternative: compact the oldest file first."""

    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        files = manifest.files(level)
        if not files:
            return []
        return [min(files, key=lambda table: table.file_id)]


class MergeRouter(abc.ABC):
    """Decides, per merged record, whether it stays in the upper level."""

    #: Whether a single non-overlapping file may be moved down without a
    #: rewrite. Read-aware routers refine this per file via
    #: :meth:`allows_trivial_move`.
    supports_trivial_move: bool = True

    def allows_trivial_move(self, table: SSTable) -> bool:
        """Per-file trivial-move veto; defaults to the class-wide flag."""
        return self.supports_trivial_move

    def begin_job(
        self,
        upper_level: int,
        lower_level: int,
        upper_lo: bytes,
        upper_hi: bytes,
        upper_budget_bytes: int,
        pull_budget_bytes: int = 0,
    ) -> None:
        """Hook called once per compaction job before routing starts.

        ``upper_budget_bytes`` is how much data the upper level can
        retain after this job without exceeding its size target — the
        level-sizing constraint §4.3 says the placer must respect.
        ``pull_budget_bytes`` is the stricter allowance for records
        *rising* from the lower level: pulls add net-new bytes to the
        upper level, so they are only granted genuine headroom below the
        target (retentions merely keep bytes that were already there).
        """

    @abc.abstractmethod
    def route_up(self, record: Record, source_level: int) -> bool:
        """True to retain/pull the record in/to the upper level."""

    def clock_value_fn(self):
        """Optional key -> CLOCK value function for output file scoring."""
        return None


class CompactDownRouter(MergeRouter):
    """Classic LSM behaviour: every record moves to the lower level."""

    supports_trivial_move = True

    def route_up(self, record: Record, source_level: int) -> bool:
        return False


@dataclass
class CompactionStats:
    """Cumulative compaction accounting (feeds Fig. 12)."""

    compactions: int = 0
    trivial_moves: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    records_in: int = 0
    records_out: int = 0
    records_pinned: int = 0
    records_pulled_up: int = 0
    tombstones_dropped: int = 0
    shadowed_dropped: int = 0
    per_level_write_bytes: dict[int, int] = field(default_factory=dict)

    def note_level_write(self, level: int, n_bytes: int) -> None:
        self.per_level_write_bytes[level] = self.per_level_write_bytes.get(level, 0) + n_bytes


class CompactionExecutor:
    """Plans and runs compactions against one manifest."""

    #: Safety cap on jobs per maintenance call; prevents a pathological
    #: pinning threshold from spinning forever (the paper's Fig. 14
    #: "threshold too high" regime degrades throughput instead).
    MAX_JOBS_PER_CALL = 64

    def __init__(
        self,
        backend: StorageBackend,
        manifest: LevelManifest,
        layout: StorageLayout,
        options: DBOptions,
        cache: BlockCache,
        picker: CompactionPicker,
        router: MergeRouter,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._backend = backend
        self._manifest = manifest
        self._layout = layout
        self._options = options
        self._cache = cache
        self._picker = picker
        self._router = router
        self.stats = CompactionStats()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NOOP_TRACER

    def note_level_write(self, level: int, n_bytes: int) -> None:
        """Account output bytes landing at ``level`` (flush or compaction)."""
        self.stats.note_level_write(level, n_bytes)
        self.metrics.counter(
            "compaction.write_bytes",
            level=level,
            tier=self._layout.tier_for_level(level).name,
        ).inc(n_bytes)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def hot_bytes(self, level: int) -> int:
        """Bytes at ``level`` in files carrying a positive popularity score."""
        return sum(
            table.size_bytes
            for table in self._manifest.files(level)
            if table.popularity_score > 0
        )

    def compaction_score(self, level: int) -> float:
        """> 1.0 means the level needs compaction (RocksDB-style score).

        Hot (positively-scored) bytes are discounted up to the pin
        reserve: retained popular data occupies the level without
        re-triggering compaction of it.
        """
        if level >= self._manifest.num_levels - 1:
            return 0.0  # the bottom level never compacts down
        if level == 0:
            return self._manifest.file_count(0) / self._options.l0_compaction_trigger
        target = self._options.level_target_bytes(level)
        reserve = int(target * self._options.pin_reserve_fraction)
        discounted = min(self.hot_bytes(level), reserve)
        return (self._manifest.level_bytes(level) - discounted) / target

    def pick_compaction_level(self) -> int | None:
        """The level with the highest score >= 1.0, if any."""
        best_level, best_score = None, 1.0
        for level in range(self._manifest.num_levels - 1):
            score = self.compaction_score(level)
            if score >= best_score:
                best_level, best_score = level, score
        return best_level

    def maybe_compact(self) -> int:
        """Run compactions until all levels are within target; job count."""
        jobs = 0
        while jobs < self.MAX_JOBS_PER_CALL:
            level = self.pick_compaction_level()
            if level is None:
                break
            self.run_job(level)
            jobs += 1
        return jobs

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_job(self, level: int) -> None:
        """Compact ``level`` into ``level + 1``."""
        if level >= self._manifest.num_levels - 1:
            raise CompactionError(f"cannot compact bottom level L{level}")
        if level == 0:
            upper_inputs = list(self._manifest.files(0))
        else:
            upper_inputs = self._picker.pick_files(self._manifest, level)
        if not upper_inputs:
            return
        upper_lo = min(table.smallest_key for table in upper_inputs)
        upper_hi = max(table.largest_key for table in upper_inputs)
        lower_inputs = self._manifest.overlapping_files(level + 1, upper_lo, upper_hi)

        if (
            not lower_inputs
            and len(upper_inputs) == 1
            and self._router.allows_trivial_move(upper_inputs[0])
            and self._layout.tier_for_level(level) is self._layout.tier_for_level(level + 1)
        ):
            # Same tier, nothing to merge: re-parent the file without I/O.
            table = upper_inputs[0]
            self._manifest.remove_file(level, table)
            self._manifest.add_file(level + 1, table)
            self.stats.trivial_moves += 1
            self.metrics.counter("compaction.trivial_moves", level=level).inc()
            self.tracer.instant(
                "trivial_move", level=level, file_id=table.file_id,
                bytes=table.size_bytes,
            )
            return

        self._merge(level, upper_inputs, lower_inputs, upper_lo, upper_hi)

    def _read_inputs(self, tables: list[SSTable], level: int) -> list[list[Record]]:
        sources = []
        read_counter = self.metrics.counter("compaction.read_bytes", level=level)
        for table in tables:
            records, _ = table.read_all_records(foreground=False)
            self.stats.bytes_read += table.size_bytes
            self.stats.records_in += len(records)
            read_counter.inc(table.size_bytes)
            sources.append(records)
        return sources

    def _merge(
        self,
        level: int,
        upper_inputs: list[SSTable],
        lower_inputs: list[SSTable],
        upper_lo: bytes,
        upper_hi: bytes,
    ) -> None:
        lower_level = level + 1
        upper_tier = self._layout.tier_for_level(level)
        lower_tier = self._layout.tier_for_level(lower_level)
        devices = {id(t.device): t.device for t in (upper_tier, lower_tier)}.values()
        busy_before = sum(device.stats.busy_usec for device in devices)
        span = self.tracer.span(
            "compaction",
            level=level,
            tier=upper_tier.name,
            lower_tier=lower_tier.name,
            inputs=len(upper_inputs) + len(lower_inputs),
        )
        with span:
            self._merge_inner(level, upper_inputs, lower_inputs, upper_lo, upper_hi)
            # Background I/O returns zero foreground latency, so the
            # simulated clock does not move during a compaction; the
            # span's duration is instead the device service time the job
            # consumed — the quantity Fig. 10/12 attribute.
            span.set_duration(
                sum(device.stats.busy_usec for device in devices) - busy_before
            )

    def _merge_inner(
        self,
        level: int,
        upper_inputs: list[SSTable],
        lower_inputs: list[SSTable],
        upper_lo: bytes,
        upper_hi: bytes,
    ) -> None:
        lower_level = level + 1
        bottom = lower_level == self._manifest.num_levels - 1
        input_bytes = sum(table.size_bytes for table in upper_inputs)
        remaining = self._manifest.level_bytes(level) - input_bytes
        # The upper level may hold its target plus the pin reserve; the
        # job's pinning budget is whatever of that allowance remains once
        # the inputs are gone. Levels beyond the allowance pin nothing
        # until cold data drains, so compaction always converges.
        target = self._options.level_target_bytes(level)
        allowance = int(target * (1.0 + self._options.pin_reserve_fraction))
        upper_budget = max(0, allowance - remaining)
        self._router.begin_job(
            level, lower_level, upper_lo, upper_hi, upper_budget, upper_budget
        )

        upper_sources = self._read_inputs(upper_inputs, level)
        lower_sources = self._read_inputs(lower_inputs, lower_level)

        # Merge plain record lists (the sort-based fast path) and recover
        # each survivor's origin with an id-set membership test instead
        # of decorating every record with its source level: shadowed
        # records never need an origin, and ``id(record) in upper_ids``
        # is a C-level probe. The merged list keeps every record alive
        # for the loop's duration, so ids cannot be recycled.
        upper_ids: set[int] = set()
        for records in upper_sources:
            upper_ids.update(map(id, records))

        upper_writer = _OutputWriter(self, level)
        lower_writer = _OutputWriter(self, lower_level)
        pinned_counter = self.metrics.counter("compaction.records", kind="pinned")
        pulled_counter = self.metrics.counter("compaction.records", kind="pulled_up")
        dropped_counter = self.metrics.counter("compaction.records", kind="tombstone_dropped")
        last_key: bytes | None = None
        for record in merge_sorted_lists(upper_sources + lower_sources):
            # Shadowing: the first record per user key (internal order)
            # is the newest version; older ones are dropped here.
            user_key = record.user_key
            if user_key == last_key:
                self.stats.shadowed_dropped += 1
                continue
            last_key = user_key
            source_level = level if id(record) in upper_ids else lower_level

            route_up = False
            if self._router.route_up(record, source_level):
                # Up-routing outside the upper input range would violate
                # L-level disjointness (except into L0, which overlaps).
                if level == 0 or upper_lo <= user_key <= upper_hi:
                    route_up = True
            if route_up:
                if source_level == level:
                    self.stats.records_pinned += 1
                    pinned_counter.inc()
                else:
                    self.stats.records_pulled_up += 1
                    pulled_counter.inc()
                upper_writer.add(record)
                continue
            if record.is_tombstone and bottom:
                self.stats.tombstones_dropped += 1
                dropped_counter.inc()
                continue
            lower_writer.add(record)

        new_upper = upper_writer.finish()
        new_lower = lower_writer.finish()

        for table in upper_inputs:
            self._manifest.remove_file(level, table)
        for table in lower_inputs:
            self._manifest.remove_file(lower_level, table)
        for table in new_upper:
            self._manifest.add_file(level, table)
        for table in new_lower:
            self._manifest.add_file(lower_level, table)
        for table in upper_inputs + lower_inputs:
            self._cache.invalidate_file(table.file_id)
            self._backend.delete_file(table.file)

        self.stats.compactions += 1
        self.metrics.counter("compaction.count", level=level).inc()

    def make_builder(self, level: int) -> SSTableBuilder:
        """A builder writing to ``level``'s tier with router-driven scoring."""
        return SSTableBuilder(
            self._backend,
            self._layout.tier_for_level(level),
            block_bytes=self._options.block_bytes,
            target_file_bytes=self._options.target_file_bytes,
            bits_per_key=self._options.bits_per_key,
            clock_value_fn=self._router.clock_value_fn(),
            score_exponent=self._options.score_exponent,
        )


class _OutputWriter:
    """Rotates SSTable builders at the target file size for one level."""

    def __init__(self, executor: CompactionExecutor, level: int) -> None:
        self._executor = executor
        self._level = level
        self._builder: SSTableBuilder | None = None
        self._tables: list[SSTable] = []

    def add(self, record: Record) -> None:
        if self._builder is None:
            self._builder = self._executor.make_builder(self._level)
        self._builder.add(record)
        self._executor.stats.records_out += 1
        if self._builder.should_finish():
            self._finish_current()

    def _finish_current(self) -> None:
        assert self._builder is not None
        table, _ = self._builder.finish(foreground=False)
        self._executor.stats.bytes_written += table.size_bytes
        self._executor.note_level_write(self._level, table.size_bytes)
        self._tables.append(table)
        self._builder = None

    def finish(self) -> list[SSTable]:
        if self._builder is not None and self._builder.entry_count > 0:
            self._finish_current()
        return self._tables
