"""Compaction: pluggable policies over one shared executor.

The executor is shared by every system in the reproduction; behaviour is
specialized through three orthogonal policy axes (the design space of
Sarkar et al., arXiv:2202.04522 — see docs/COMPACTION.md) plus the
record-routing seam the paper turns:

* a :class:`~repro.lsm.strategy.CompactionStrategy` — the *shape* axis —
  decides how runs are arranged per level (leveling, tiering with run
  stacks, lazy-leveling) and plans whole compaction jobs, consulting a
  :class:`~repro.lsm.strategy.TriggerPolicy` (*trigger* axis: size
  ratio, file count, staleness) for when a level is over-full;
* a :class:`CompactionPicker` — the *picking* axis — chooses *which SST
  file* a partial (leveled) compaction takes from an over-full level
  (classic RocksDB: largest file; PrismDB §4.3: the file with the lowest
  popularity score; also oldest and round-robin); and
* a :class:`MergeRouter` decides *where each merged record goes*
  (classic: everything moves down; PrismDB §4.2-4.3: popular keys are
  pinned to the upper level or pulled up from the lower one). The router
  composes with every shape.

The router contract keeps the LSM consistency guarantee (§4.4): the
executor feeds it only the *newest* surviving version of each key among
the compaction inputs, and up-routing is restricted to the upper input
key range so level disjointness is preserved where the shape requires
it. Shapes that merge whole levels (tiering, lazy-leveling) satisfy the
rule trivially: every version of a key at the upper level participates
in the job.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import CompactionError
from repro.lsm.block_cache import BlockCache
from repro.lsm.iterators import merge_sorted_lists
from repro.lsm.layout import StorageLayout
from repro.lsm.options import DBOptions
from repro.lsm.record import MAX_SEQNO, Record, ValueKind
from repro.lsm.sstable import SSTable, SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.obs import NOOP_TRACER, MetricsRegistry, Tracer
from repro.storage.backend import StorageBackend

#: Hoisted enum member for the merge loops' tombstone checks; an ``is``
#: test against it avoids the ``is_tombstone`` property call per record.
_DELETE = ValueKind.DELETE


class CompactionPicker(abc.ABC):
    """Chooses the input file(s) from an over-full level."""

    @abc.abstractmethod
    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        """Select upper-level input files for a compaction of ``level``."""


class LargestFilePicker(CompactionPicker):
    """Classic heuristic: compact the biggest file (reclaims most space)."""

    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        files = manifest.files(level)
        if not files:
            return []
        return [max(files, key=lambda table: (table.size_bytes, -table.file_id))]


class OldestFilePicker(CompactionPicker):
    """Round-robin-ish alternative: compact the oldest file first."""

    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        files = manifest.files(level)
        if not files:
            return []
        return [min(files, key=lambda table: table.file_id)]


class RoundRobinPicker(CompactionPicker):
    """Cycle through a level's files in file-id order.

    A per-level cursor remembers the last picked file id; each pick takes
    the live file with the smallest id strictly above the cursor,
    wrapping to the smallest id when the cursor passes the end. Every
    file gets compacted eventually regardless of size or popularity —
    the fairness baseline of the picking axis.
    """

    def __init__(self) -> None:
        self._cursor: dict[int, int] = {}

    def pick_files(self, manifest: LevelManifest, level: int) -> list[SSTable]:
        files = manifest.files(level)
        if not files:
            return []
        cursor = self._cursor.get(level, -1)
        above = [table for table in files if table.file_id > cursor]
        victim = min(above or files, key=lambda table: table.file_id)
        self._cursor[level] = victim.file_id
        return [victim]


class MergeRouter(abc.ABC):
    """Decides, per merged record, whether it stays in the upper level."""

    #: Whether a single non-overlapping file may be moved down without a
    #: rewrite. Read-aware routers refine this per file via
    #: :meth:`allows_trivial_move`.
    supports_trivial_move: bool = True

    #: Whether :meth:`route_up_key` may replace :meth:`route_up` on the
    #: encoded-domain merge path. Routers that need the full Record
    #: (e.g. value-inspecting subclasses) leave this False and the
    #: executor falls back to the record-based merge for them, so
    #: ``DBOptions.encoded_compaction`` can never change their decisions.
    supports_encoded_routing: bool = False

    #: True when :meth:`route_up_key` returns False unconditionally and
    #: without side effects (classic compact-down behaviour). The
    #: encoded merges skip the per-record routing call entirely for such
    #: routers — one method invocation per record is measurable against
    #: the little work the merge loop does.
    never_routes_up: bool = False

    def allows_trivial_move(self, table: SSTable) -> bool:
        """Per-file trivial-move veto; defaults to the class-wide flag."""
        return self.supports_trivial_move

    def begin_job(
        self,
        upper_level: int,
        lower_level: int,
        upper_lo: bytes,
        upper_hi: bytes,
        upper_budget_bytes: int,
        pull_budget_bytes: int = 0,
    ) -> None:
        """Hook called once per compaction job before routing starts.

        ``upper_budget_bytes`` is how much data the upper level can
        retain after this job without exceeding its size target — the
        level-sizing constraint §4.3 says the placer must respect.
        ``pull_budget_bytes`` is the stricter allowance for records
        *rising* from the lower level: pulls add net-new bytes to the
        upper level, so they are only granted genuine headroom below the
        target (retentions merely keep bytes that were already there).
        """

    @abc.abstractmethod
    def route_up(self, record: Record, source_level: int) -> bool:
        """True to retain/pull the record in/to the upper level."""

    def route_up_key(
        self, user_key: bytes, kind_code: int, encoded_size: int, source_level: int
    ) -> bool:
        """Record-free routing decision for the encoded merge path.

        ``kind_code`` is the wire code (0 = DELETE, 1 = PUT) and
        ``encoded_size`` the record's full on-disk size — together the
        only Record fields :meth:`route_up` implementations may consult
        besides the key. Must be behaviourally identical to
        :meth:`route_up` on routers that set
        :attr:`supports_encoded_routing`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support encoded routing"
        )

    def clock_value_fn(self):
        """Optional key -> CLOCK value function for output file scoring."""
        return None


class CompactDownRouter(MergeRouter):
    """Classic LSM behaviour: every record moves to the lower level."""

    supports_trivial_move = True
    supports_encoded_routing = True
    never_routes_up = True

    def route_up(self, record: Record, source_level: int) -> bool:
        return False

    def route_up_key(
        self, user_key: bytes, kind_code: int, encoded_size: int, source_level: int
    ) -> bool:
        return False


@dataclass
class CompactionStats:
    """Cumulative compaction accounting (feeds Fig. 12)."""

    compactions: int = 0
    trivial_moves: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    records_in: int = 0
    records_out: int = 0
    records_pinned: int = 0
    records_pulled_up: int = 0
    tombstones_dropped: int = 0
    shadowed_dropped: int = 0
    per_level_write_bytes: dict[int, int] = field(default_factory=dict)

    def note_level_write(self, level: int, n_bytes: int) -> None:
        self.per_level_write_bytes[level] = self.per_level_write_bytes.get(level, 0) + n_bytes


@dataclass
class CompactionJob:
    """One planned compaction, shape-agnostic.

    ``style`` selects the execution path:

    * ``"trivial-move"`` — re-parent ``upper_inputs[0]`` one level down
      without I/O (leveled shapes only);
    * ``"leveled"`` — merge upper inputs with the overlapping lower
      files into disjoint output files at both levels;
    * ``"tiered"`` — merge the upper inputs among themselves (no lower
      inputs) and append the output as one new sorted run at the lower
      level; ``upper_level == lower_level`` marks an in-place run
      consolidation (tiering's bottom level).
    """

    style: str
    upper_level: int
    lower_level: int
    upper_inputs: list[SSTable]
    lower_inputs: list[SSTable]
    upper_lo: bytes
    upper_hi: bytes
    #: Whether tombstones may be dropped from the job's output (true only
    #: when nothing older than the output can exist below it).
    drop_tombstones: bool = False


class CompactionExecutor:
    """Plans (via its strategy) and runs compactions against one manifest."""

    #: Safety cap on jobs per maintenance call; prevents a pathological
    #: pinning threshold from spinning forever (the paper's Fig. 14
    #: "threshold too high" regime degrades throughput instead).
    MAX_JOBS_PER_CALL = 64

    def __init__(
        self,
        backend: StorageBackend,
        manifest: LevelManifest,
        layout: StorageLayout,
        options: DBOptions,
        cache: BlockCache,
        picker: CompactionPicker,
        router: MergeRouter,
        *,
        strategy=None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._backend = backend
        self._manifest = manifest
        self._layout = layout
        self._options = options
        self._cache = cache
        self._picker = picker
        self._router = router
        if strategy is None:
            from repro.lsm.strategy import make_strategy

            strategy = make_strategy(options)
        self.strategy = strategy
        self.stats = CompactionStats()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NOOP_TRACER

    # Public read-only views for strategy objects (which receive the
    # executor and must not reach into name-mangled internals).
    @property
    def manifest(self) -> LevelManifest:
        return self._manifest

    @property
    def options(self) -> DBOptions:
        return self._options

    @property
    def layout(self) -> StorageLayout:
        return self._layout

    @property
    def picker(self) -> CompactionPicker:
        return self._picker

    @property
    def router(self) -> MergeRouter:
        return self._router

    def note_level_write(self, level: int, n_bytes: int) -> None:
        """Account output bytes landing at ``level`` (flush or compaction)."""
        self.stats.note_level_write(level, n_bytes)
        self.metrics.counter(
            "compaction.write_bytes",
            level=level,
            tier=self._layout.tier_for_level(level).name,
        ).inc(n_bytes)

    # ------------------------------------------------------------------
    # Scheduling (delegated to the strategy)
    # ------------------------------------------------------------------
    def hot_bytes(self, level: int) -> int:
        """Bytes at ``level`` in files carrying a positive popularity score."""
        return sum(
            table.size_bytes
            for table in self._manifest.files(level)
            if table.popularity_score > 0
        )

    def compaction_score(self, level: int) -> float:
        """> 1.0 means the level needs compaction (strategy-defined)."""
        return self.strategy.score(self, level)

    def pick_compaction_level(self) -> int | None:
        """The level with the highest score >= 1.0, if any."""
        return self.strategy.pick_level(self)

    def maybe_compact(self) -> int:
        """Run compactions until all levels are within target; job count."""
        jobs = 0
        while jobs < self.MAX_JOBS_PER_CALL:
            level = self.pick_compaction_level()
            if level is None:
                break
            self.run_job(level)
            jobs += 1
        return jobs

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_job(self, level: int) -> None:
        """Plan (strategy) and execute one compaction of ``level``."""
        job = self.strategy.plan_job(self, level)
        if job is None:
            return
        self.execute(job)

    def execute(self, job: CompactionJob) -> None:
        """Run a planned :class:`CompactionJob`."""
        if job.style == "trivial-move":
            # Same tier, nothing to merge: re-parent the file without I/O.
            table = job.upper_inputs[0]
            self._manifest.remove_file(job.upper_level, table)
            self._manifest.add_file(job.lower_level, table)
            self.stats.trivial_moves += 1
            self.metrics.counter("compaction.trivial_moves", level=job.upper_level).inc()
            self.tracer.instant(
                "trivial_move", level=job.upper_level, file_id=table.file_id,
                bytes=table.size_bytes,
            )
            return
        if job.style == "leveled":
            self._merge(
                job.upper_level, job.upper_inputs, job.lower_inputs,
                job.upper_lo, job.upper_hi,
            )
            return
        if job.style == "tiered":
            self._merge_tiered(job)
            return
        raise CompactionError(f"unknown compaction job style {job.style!r}")

    def _read_inputs(self, tables: list[SSTable], level: int) -> list[list[Record]]:
        sources = []
        read_counter = self.metrics.counter("compaction.read_bytes", level=level)
        for table in tables:
            records, _ = table.read_all_records(foreground=False)
            self.stats.bytes_read += table.size_bytes
            self.stats.records_in += len(records)
            read_counter.inc(table.size_bytes)
            sources.append(records)
        return sources

    def _read_encoded_inputs(
        self,
        tables: list[SSTable],
        level: int,
        keys: list[bytes],
        seqnos: list[int],
        kinds: list[int],
        starts: list[int],
        ends: list[int],
        bufs: list,
    ) -> int:
        """Scan ``tables`` into the parallel span arrays; records appended.

        Accounting is identical to :meth:`_read_inputs` — same device
        reads, same stats and counters — but no Record objects exist:
        each table contributes its key/seqno/kind/span columns plus one
        buffer reference per record (``bufs`` is per-record so the merge
        can slice without tracking run boundaries).
        """
        total = 0
        read_counter = self.metrics.counter("compaction.read_bytes", level=level)
        for table in tables:
            buf, count, _ = table.read_all_spans(
                keys, seqnos, kinds, starts, ends, foreground=False
            )
            self.stats.bytes_read += table.size_bytes
            self.stats.records_in += count
            read_counter.inc(table.size_bytes)
            bufs.extend([buf] * count)
            total += count
        return total

    def _job_span(self, name: str, upper_level: int, lower_level: int, inputs: int):
        """A tracer span plus the device set whose busy time it attributes."""
        upper_tier = self._layout.tier_for_level(upper_level)
        lower_tier = self._layout.tier_for_level(lower_level)
        devices = {id(t.device): t.device for t in (upper_tier, lower_tier)}.values()
        span = self.tracer.span(
            name,
            level=upper_level,
            tier=upper_tier.name,
            lower_tier=lower_tier.name,
            inputs=inputs,
        )
        return span, devices

    def _merge(
        self,
        level: int,
        upper_inputs: list[SSTable],
        lower_inputs: list[SSTable],
        upper_lo: bytes,
        upper_hi: bytes,
    ) -> None:
        span, devices = self._job_span(
            "compaction", level, level + 1, len(upper_inputs) + len(lower_inputs)
        )
        busy_before = sum(device.stats.busy_usec for device in devices)
        with span:
            self._merge_inner(level, upper_inputs, lower_inputs, upper_lo, upper_hi)
            # Background I/O returns zero foreground latency, so the
            # simulated clock does not move during a compaction; the
            # span's duration is instead the device service time the job
            # consumed — the quantity Fig. 10/12 attribute.
            span.set_duration(
                sum(device.stats.busy_usec for device in devices) - busy_before
            )

    def _merge_inner(
        self,
        level: int,
        upper_inputs: list[SSTable],
        lower_inputs: list[SSTable],
        upper_lo: bytes,
        upper_hi: bytes,
    ) -> None:
        lower_level = level + 1
        bottom = lower_level == self._manifest.num_levels - 1
        input_bytes = sum(table.size_bytes for table in upper_inputs)
        remaining = self._manifest.level_bytes(level) - input_bytes
        # The upper level may hold its target plus the pin reserve; the
        # job's pinning budget is whatever of that allowance remains once
        # the inputs are gone. Levels beyond the allowance pin nothing
        # until cold data drains, so compaction always converges.
        target = self._options.level_target_bytes(level)
        allowance = int(target * (1.0 + self._options.pin_reserve_fraction))
        upper_budget = max(0, allowance - remaining)
        self._router.begin_job(
            level, lower_level, upper_lo, upper_hi, upper_budget, upper_budget
        )

        if self._options.encoded_compaction and self._router.supports_encoded_routing:
            new_upper, new_lower = self._merge_leveled_encoded(
                level, upper_inputs, lower_inputs, upper_lo, upper_hi, bottom
            )
        else:
            new_upper, new_lower = self._merge_leveled_records(
                level, upper_inputs, lower_inputs, upper_lo, upper_hi, bottom
            )

        for table in upper_inputs:
            self._manifest.remove_file(level, table)
        for table in lower_inputs:
            self._manifest.remove_file(lower_level, table)
        for table in new_upper:
            self._add_output(level, table)
        for table in new_lower:
            self._add_output(lower_level, table)
        for table in upper_inputs + lower_inputs:
            self._cache.invalidate_file(table.file_id)
            self._backend.delete_file(table.file)

        self.stats.compactions += 1
        self.metrics.counter("compaction.count", level=level).inc()

    def _merge_leveled_records(
        self,
        level: int,
        upper_inputs: list[SSTable],
        lower_inputs: list[SSTable],
        upper_lo: bytes,
        upper_hi: bytes,
        bottom: bool,
    ) -> tuple[list[SSTable], list[SSTable]]:
        """The record-based leveled merge loop (executable specification).

        Kept verbatim as the reference the encoded path is proven
        against (tests/lsm/test_encoded_merge.py); also the fallback for
        routers without encoded-routing support.
        """
        lower_level = level + 1
        upper_sources = self._read_inputs(upper_inputs, level)
        lower_sources = self._read_inputs(lower_inputs, lower_level)

        # Merge plain record lists (the sort-based fast path) and recover
        # each survivor's origin with an id-set membership test instead
        # of decorating every record with its source level: shadowed
        # records never need an origin, and ``id(record) in upper_ids``
        # is a C-level probe. The merged list keeps every record alive
        # for the loop's duration, so ids cannot be recycled.
        upper_ids: set[int] = set()
        for records in upper_sources:
            upper_ids.update(map(id, records))

        upper_writer = _OutputWriter(self, level)
        lower_writer = _OutputWriter(self, lower_level)
        pinned_counter = self.metrics.counter("compaction.records", kind="pinned")
        pulled_counter = self.metrics.counter("compaction.records", kind="pulled_up")
        dropped_counter = self.metrics.counter("compaction.records", kind="tombstone_dropped")
        last_key: bytes | None = None
        for record in merge_sorted_lists(upper_sources + lower_sources):
            # Shadowing: the first record per user key (internal order)
            # is the newest version; older ones are dropped here.
            user_key = record.user_key
            if user_key == last_key:
                self.stats.shadowed_dropped += 1
                continue
            last_key = user_key
            source_level = level if id(record) in upper_ids else lower_level

            route_up = False
            if self._router.route_up(record, source_level):
                # Up-routing outside the upper input range would violate
                # L-level disjointness (except into L0, which overlaps).
                if level == 0 or upper_lo <= user_key <= upper_hi:
                    route_up = True
            if route_up:
                if source_level == level:
                    self.stats.records_pinned += 1
                    pinned_counter.inc()
                else:
                    self.stats.records_pulled_up += 1
                    pulled_counter.inc()
                upper_writer.add(record)
                continue
            if bottom and record.kind is _DELETE:
                self.stats.tombstones_dropped += 1
                dropped_counter.inc()
                continue
            lower_writer.add(record)

        return upper_writer.finish(), lower_writer.finish()

    def _merge_leveled_encoded(
        self,
        level: int,
        upper_inputs: list[SSTable],
        lower_inputs: list[SSTable],
        upper_lo: bytes,
        upper_hi: bytes,
        bottom: bool,
    ) -> tuple[list[SSTable], list[SSTable]]:
        """The encoded-domain leveled merge: no Record objects anywhere.

        Inputs are scanned as parallel span arrays; ordering is an index
        argsort (two stable C sorts reproducing merge_sorted_lists'
        order exactly — seqnos are globally unique, so the order is the
        unique internal-key order); origin recovery is a positional
        comparison (upper-table records occupy the array prefix); and
        survivors are re-emitted as byte slices of the input files.
        """
        lower_level = level + 1
        keys: list[bytes] = []
        seqnos: list[int] = []
        kinds: list[int] = []
        starts: list[int] = []
        ends: list[int] = []
        bufs: list = []
        n_upper = self._read_encoded_inputs(
            upper_inputs, level, keys, seqnos, kinds, starts, ends, bufs
        )
        self._read_encoded_inputs(
            lower_inputs, lower_level, keys, seqnos, kinds, starts, ends, bufs
        )

        order = list(range(len(keys)))
        order.sort(key=seqnos.__getitem__, reverse=True)
        order.sort(key=keys.__getitem__)

        upper_writer = _OutputWriter(self, level)
        lower_writer = _OutputWriter(self, lower_level)
        pinned_counter = self.metrics.counter("compaction.records", kind="pinned")
        pulled_counter = self.metrics.counter("compaction.records", kind="pulled_up")
        dropped_counter = self.metrics.counter("compaction.records", kind="tombstone_dropped")
        stats = self.stats
        route_up_key = (
            None if self._router.never_routes_up else self._router.route_up_key
        )
        add_upper = upper_writer.add_encoded
        add_lower = lower_writer.add_encoded
        last_key: bytes | None = None
        for idx in order:
            user_key = keys[idx]
            if user_key == last_key:
                stats.shadowed_dropped += 1
                continue
            last_key = user_key
            start = starts[idx]
            end = ends[idx]
            kind_code = kinds[idx]
            source_level = level if idx < n_upper else lower_level

            route_up = False
            if route_up_key is not None and route_up_key(
                user_key, kind_code, end - start, source_level
            ):
                if level == 0 or upper_lo <= user_key <= upper_hi:
                    route_up = True
            if route_up:
                if source_level == level:
                    stats.records_pinned += 1
                    pinned_counter.inc()
                else:
                    stats.records_pulled_up += 1
                    pulled_counter.inc()
                add_upper(user_key, seqnos[idx], kind_code, bufs[idx], start, end)
                continue
            if bottom and kind_code == 0:
                stats.tombstones_dropped += 1
                dropped_counter.inc()
                continue
            add_lower(user_key, seqnos[idx], kind_code, bufs[idx], start, end)

        return upper_writer.finish(), lower_writer.finish()

    def _add_output(self, level: int, table: SSTable) -> None:
        """Install one leveled-merge output file at ``level``.

        On a leveled level the outputs are disjoint with the survivors by
        construction. On a run-stacked level (lazy-leveling's upper input
        level, when the router retains records there) each output file
        becomes its own newest run — the outputs of one merge are
        mutually disjoint, so probe cost stays one file per run.
        """
        self._manifest.add_file(level, table)

    def _merge_tiered(self, job: CompactionJob) -> None:
        span, devices = self._job_span(
            "compaction", job.upper_level, job.lower_level, len(job.upper_inputs)
        )
        busy_before = sum(device.stats.busy_usec for device in devices)
        with span:
            self._merge_tiered_inner(job)
            span.set_duration(
                sum(device.stats.busy_usec for device in devices) - busy_before
            )

    def _merge_tiered_inner(self, job: CompactionJob) -> None:
        upper_level, lower_level = job.upper_level, job.lower_level
        consolidation = upper_level == lower_level
        if not consolidation:
            # All of the upper level's runs are inputs, so the retention
            # budget is the full allowance (target + pin reserve). Pulls
            # are impossible in a tiered job — there are no lower inputs
            # — so the pull budget is zero.
            target = self._options.level_target_bytes(upper_level)
            allowance = int(target * (1.0 + self._options.pin_reserve_fraction))
            input_bytes = sum(table.size_bytes for table in job.upper_inputs)
            remaining = self._manifest.level_bytes(upper_level) - input_bytes
            upper_budget = max(0, allowance - remaining)
            self._router.begin_job(
                upper_level, lower_level, job.upper_lo, job.upper_hi,
                upper_budget, 0,
            )

        if self._options.encoded_compaction and self._router.supports_encoded_routing:
            new_upper, new_lower = self._merge_tiered_encoded(job, consolidation)
        else:
            new_upper, new_lower = self._merge_tiered_records(job, consolidation)

        for table in job.upper_inputs:
            self._manifest.remove_file(upper_level, table)
        if new_upper:
            self._install_run(upper_level, new_upper)
        if new_lower:
            self._install_run(lower_level, new_lower)
        for table in job.upper_inputs:
            self._cache.invalidate_file(table.file_id)
            self._backend.delete_file(table.file)

        self.stats.compactions += 1
        self.metrics.counter("compaction.count", level=upper_level).inc()

    def _merge_tiered_records(
        self, job: CompactionJob, consolidation: bool
    ) -> tuple[list[SSTable], list[SSTable]]:
        """The record-based tiered merge loop (executable specification)."""
        upper_level, lower_level = job.upper_level, job.lower_level
        sources = self._read_inputs(job.upper_inputs, upper_level)
        upper_writer = _OutputWriter(self, upper_level)
        lower_writer = _OutputWriter(self, lower_level)
        pinned_counter = self.metrics.counter("compaction.records", kind="pinned")
        dropped_counter = self.metrics.counter("compaction.records", kind="tombstone_dropped")
        last_key: bytes | None = None
        drop_tombstones = job.drop_tombstones
        for record in merge_sorted_lists(sources):
            user_key = record.user_key
            if user_key == last_key:
                self.stats.shadowed_dropped += 1
                continue
            last_key = user_key
            # Every record comes from the upper level and the job spans
            # the whole level, so the §4.4 range restriction is trivially
            # satisfied; routing is a pure retain-or-sink choice.
            if not consolidation and self._router.route_up(record, upper_level):
                self.stats.records_pinned += 1
                pinned_counter.inc()
                upper_writer.add(record)
                continue
            if drop_tombstones and record.kind is _DELETE:
                self.stats.tombstones_dropped += 1
                dropped_counter.inc()
                continue
            lower_writer.add(record)

        return upper_writer.finish(), lower_writer.finish()

    def _merge_tiered_encoded(
        self, job: CompactionJob, consolidation: bool
    ) -> tuple[list[SSTable], list[SSTable]]:
        """Encoded-domain tiered merge; see :meth:`_merge_leveled_encoded`."""
        upper_level, lower_level = job.upper_level, job.lower_level
        keys: list[bytes] = []
        seqnos: list[int] = []
        kinds: list[int] = []
        starts: list[int] = []
        ends: list[int] = []
        bufs: list = []
        self._read_encoded_inputs(
            job.upper_inputs, upper_level, keys, seqnos, kinds, starts, ends, bufs
        )

        order = list(range(len(keys)))
        order.sort(key=seqnos.__getitem__, reverse=True)
        order.sort(key=keys.__getitem__)

        upper_writer = _OutputWriter(self, upper_level)
        lower_writer = _OutputWriter(self, lower_level)
        pinned_counter = self.metrics.counter("compaction.records", kind="pinned")
        dropped_counter = self.metrics.counter("compaction.records", kind="tombstone_dropped")
        stats = self.stats
        route_up_key = (
            None if self._router.never_routes_up else self._router.route_up_key
        )
        add_upper = upper_writer.add_encoded
        add_lower = lower_writer.add_encoded
        last_key: bytes | None = None
        drop_tombstones = job.drop_tombstones
        if consolidation:
            route_up_key = None
        for idx in order:
            user_key = keys[idx]
            if user_key == last_key:
                stats.shadowed_dropped += 1
                continue
            last_key = user_key
            start = starts[idx]
            end = ends[idx]
            kind_code = kinds[idx]
            if route_up_key is not None and route_up_key(
                user_key, kind_code, end - start, upper_level
            ):
                stats.records_pinned += 1
                pinned_counter.inc()
                add_upper(user_key, seqnos[idx], kind_code, bufs[idx], start, end)
                continue
            if drop_tombstones and kind_code == 0:
                stats.tombstones_dropped += 1
                dropped_counter.inc()
                continue
            add_lower(user_key, seqnos[idx], kind_code, bufs[idx], start, end)

        return upper_writer.finish(), lower_writer.finish()

    def _install_run(self, level: int, tables: list[SSTable]) -> None:
        """Install a merge output as one new sorted run at ``level``."""
        if self._manifest.is_run_stacked(level):
            self._manifest.add_run(level, tables)
            return
        # L0 (retained records of an L0->L1 tiered job) or a leveled
        # level: fall back to per-file adds.
        for table in tables:
            self._manifest.add_file(level, table)

    def make_builder(self, level: int) -> SSTableBuilder:
        """A builder writing to ``level``'s tier with router-driven scoring."""
        return SSTableBuilder(
            self._backend,
            self._layout.tier_for_level(level),
            block_bytes=self._options.block_bytes,
            target_file_bytes=self._options.target_file_bytes,
            bits_per_key=self._options.bits_per_key,
            clock_value_fn=self._router.clock_value_fn(),
            score_exponent=self._options.score_exponent,
        )


class _OutputWriter:
    """Rotates SSTable builders at the target file size for one level."""

    def __init__(self, executor: CompactionExecutor, level: int) -> None:
        self._executor = executor
        self._level = level
        self._builder: SSTableBuilder | None = None
        self._tables: list[SSTable] = []

    def add(self, record: Record) -> None:
        if self._builder is None:
            self._builder = self._executor.make_builder(self._level)
        self._builder.add(record)
        self._executor.stats.records_out += 1
        if self._builder.should_finish():
            self._finish_current()

    def add_encoded(
        self, key: bytes, seqno: int, kind_code: int, buf, start: int, end: int
    ) -> None:
        """Emit one record given as an encoded span of an input file.

        This is the per-record body of the encoded merge — the hottest
        loop in compaction — so :meth:`SSTableBuilder.add_encoded` and
        :meth:`DataBlockBuilder.add_span` are inlined here: one call
        frame per record instead of three. Every side effect and its
        order match the layered path exactly (the encoded-merge
        equivalence tests pin the output files byte for byte).
        """
        builder = self._builder
        if builder is None:
            builder = self._builder = self._executor.make_builder(self._level)
        if builder._smallest is None:
            builder._smallest = key
        builder._largest = key
        # DataBlockBuilder.add_span, inlined (span coalescing included).
        block = builder._block
        if block._first_key is None:
            block._first_key = key
        block._last_key = key
        block._last_inv = MAX_SEQNO - seqno
        block._offsets.append(block._position)
        parts = block._parts
        if parts:
            tail = parts[-1]
            if type(tail) is list and tail[0] is buf and tail[2] == start:
                tail[2] = end
            else:
                parts.append([buf, start, end])
        else:
            parts.append([buf, start, end])
        size = end - start
        block._position += size
        # 4 = the per-record u32 restart-offset cost (block._OFFSET.size).
        block._estimated = block_estimated = block._estimated + 4 + size
        # SSTableBuilder.add_encoded bookkeeping, inlined.
        builder._keys.append(key)
        builder._entry_count += 1
        if kind_code == 0:
            builder._tombstones += 1
        if seqno > builder._max_seqno:
            builder._max_seqno = seqno
        clock_value_fn = builder._clock_value_fn
        if clock_value_fn is not None:
            clock = float(clock_value_fn(key))
            if builder._score_exponent == 3:
                builder._score += clock * clock * clock
            else:
                builder._score += clock ** builder._score_exponent
        if block_estimated >= block.target_bytes:
            builder._flush_block()
        self._executor.stats.records_out += 1
        if builder._data_bytes + builder._block._estimated >= builder.target_file_bytes:
            self._finish_current()

    def _finish_current(self) -> None:
        assert self._builder is not None
        table, _ = self._builder.finish(foreground=False)
        self._executor.stats.bytes_written += table.size_bytes
        self._executor.note_level_write(self._level, table.size_bytes)
        self._tables.append(table)
        self._builder = None

    def finish(self) -> list[SSTable]:
        if self._builder is not None and self._builder.entry_count > 0:
            self._finish_current()
        return self._tables
