"""Row cache: object-granularity DRAM caching.

§3.3 of the paper analyzes the mismatch between block-granular caching
(4 KB blocks) and object sizes (tens to hundreds of bytes): a cached
block mostly holds cold neighbours of the hot object that earned it the
cache slot. RocksDB's answer to this is the *row cache* — an optional
LRU of individual key-value entries in front of the SST read path. This
module implements it so the granularity trade-off can be measured
directly (see ``benchmarks/test_ext_row_cache.py``).

A row-cache entry is invalidated by any newer write to its key; reads
served by the row cache cost one DRAM access and skip the tree walk
entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.device import DRAM_SPEC


@dataclass
class RowCacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Approximate per-entry bookkeeping overhead (hash-table slot, LRU
#: links), charged against the cache budget like RocksDB does.
ENTRY_OVERHEAD_BYTES = 32


class RowCache:
    """Byte-budgeted LRU over individual key-value entries.

    Capacity 0 disables the cache entirely (every probe is a miss and
    nothing is stored), mirroring :class:`~repro.lsm.block_cache.BlockCache`.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be non-negative: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.stats = RowCacheStats()
        # key -> (value-or-None, seqno of the version cached)
        self._entries: OrderedDict[bytes, tuple[bytes | None, int]] = OrderedDict()
        self._used_bytes = 0
        self._obs_hits = None
        self._obs_misses = None

    def bind_observability(self, registry) -> None:
        """Mirror hit/miss accounting into ``registry`` (rowcache.* series)."""
        self._obs_hits = registry.counter("rowcache.hits")
        self._obs_misses = registry.counter("rowcache.misses")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @staticmethod
    def _entry_size(key: bytes, value: bytes | None) -> int:
        return len(key) + (len(value) if value is not None else 0) + ENTRY_OVERHEAD_BYTES

    def lookup(self, key: bytes, ctx=None) -> tuple[bool, bytes | None, int, float]:
        """Probe for ``key``.

        Returns (hit, value, seqno, latency). ``value`` may be None on a
        hit: the cache also remembers confirmed-absent keys (a read that
        missed everywhere), which spares repeated full-tree misses.
        ``ctx`` attributes hit latency to ``(rowcache, dram)``.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            value, seqno = entry
            self.stats.hits += 1
            if self._obs_hits is not None:
                self._obs_hits.inc()
            size = self._entry_size(key, value)
            latency = DRAM_SPEC.read_time_usec(size)
            if ctx is not None:
                ctx.add("rowcache", "dram", latency)
            return True, value, seqno, latency
        self.stats.misses += 1
        if self._obs_misses is not None:
            self._obs_misses.inc()
        return False, None, 0, 0.0

    def insert(self, key: bytes, value: bytes | None, seqno: int) -> None:
        """Remember the outcome of a completed read."""
        if self.capacity_bytes == 0:
            return
        size = self._entry_size(key, value)
        if size > self.capacity_bytes:
            return
        existing = self._entries.get(key)
        if existing is not None:
            self._used_bytes -= self._entry_size(key, existing[0])
            self._entries.move_to_end(key)
        self._entries[key] = (value, seqno)
        self._used_bytes += size
        self.stats.insertions += 1
        while self._used_bytes > self.capacity_bytes:
            evicted_key, (evicted_value, _) = self._entries.popitem(last=False)
            self._used_bytes -= self._entry_size(evicted_key, evicted_value)
            self.stats.evictions += 1

    def invalidate(self, key: bytes) -> None:
        """Drop ``key`` (a newer write supersedes the cached version)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used_bytes -= self._entry_size(key, entry[0])
            self.stats.invalidations += 1

    def clear(self) -> None:
        self._entries.clear()
        self._used_bytes = 0
