"""Bloom filters for SSTables.

One filter per SSTable (as in the paper's description of RocksDB's read
path): before paying device I/O for an index or data block, the read path
consults the filter and skips files that definitely do not contain the
key. The implementation uses double hashing (Kirsch-Mitzenmacher) over a
64-bit FNV-1a base hash, the standard trick LevelDB/RocksDB use to derive
k probe positions from one hash computation.
"""

from __future__ import annotations

import math
import struct

from repro.common.rng import fnv1a_64
from repro.errors import CorruptionError

_HEADER = struct.Struct("<IB")  # bit count, probe count

#: key -> fnv1a_64(key), shared by every filter. The same (interned) key
#: bytes are hashed by every flush, compaction build, and read-path probe
#: that touches them; the base hash is a pure function of the key, so one
#: computation serves them all. Capped so an unbounded keyspace cannot
#: pin memory; past the cap, misses simply recompute.
_HASH_CACHE: dict[bytes, int] = {}
_HASH_CACHE_MAX = 1 << 20


def _base_hash(key: bytes) -> int:
    """Memoized FNV-1a base hash (see :data:`_HASH_CACHE`)."""
    base = _HASH_CACHE.get(key)
    if base is None:
        base = fnv1a_64(key)
        if len(_HASH_CACHE) < _HASH_CACHE_MAX:
            _HASH_CACHE[key] = base
    return base


class BloomFilter:
    """A serializable bloom filter over byte-string keys."""

    def __init__(self, n_bits: int, n_probes: int, bits: bytearray | None = None) -> None:
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive: {n_bits}")
        if not 1 <= n_probes <= 30:
            raise ValueError(f"n_probes out of range: {n_probes}")
        self._n_bits = n_bits
        self._n_probes = n_probes
        n_bytes = (n_bits + 7) // 8
        if bits is None:
            self._bits = bytearray(n_bytes)
        else:
            if len(bits) != n_bytes:
                raise ValueError(f"bit array size mismatch: {len(bits)} != {n_bytes}")
            self._bits = bits

    @staticmethod
    def for_capacity(n_keys: int, bits_per_key: int = 10) -> "BloomFilter":
        """Size a filter for ``n_keys`` at ``bits_per_key`` (RocksDB default 10)."""
        n_bits = max(64, n_keys * bits_per_key)
        # Optimal probe count is ln(2) * bits/key, clamped like LevelDB.
        n_probes = max(1, min(30, int(round(bits_per_key * math.log(2)))))
        return BloomFilter(n_bits, n_probes)

    @property
    def n_bits(self) -> int:
        """Filter size in bits (introspection / attribution annotations)."""
        return self._n_bits

    @property
    def n_probes(self) -> int:
        """Hash probes per membership test; per-request attribution
        annotates bloom consultations with this cost in its slow-op log."""
        return self._n_probes

    def _positions(self, key: bytes):
        """The k probe positions for ``key`` (kept for tests/debugging).

        The hot paths (:meth:`add`, :meth:`add_many`, :meth:`may_contain`)
        inline this double-hashing loop instead of consuming a generator:
        a Python generator frame per probe costs more than the probes.
        """
        base = _base_hash(key)
        h1 = base & 0xFFFFFFFF
        h2 = (base >> 32) | 1  # odd delta => full-period probing
        for i in range(self._n_probes):
            yield (h1 + i * h2) % self._n_bits

    def add(self, key: bytes) -> None:
        base = _base_hash(key)
        h2 = (base >> 32) | 1
        n_bits = self._n_bits
        bits = self._bits
        h = base & 0xFFFFFFFF
        for _ in range(self._n_probes):
            pos = h % n_bits
            bits[pos >> 3] |= 1 << (pos & 7)
            h += h2

    def add_many(self, keys) -> None:
        """Bulk-insert ``keys``; equivalent to repeated :meth:`add`.

        SSTable builds insert every key of a file at once, so the hash
        and bit positions are computed in one tight loop with the filter
        state held in locals (no per-key attribute traffic).
        """
        n_bits = self._n_bits
        n_probes = self._n_probes
        bits = self._bits
        hash_fn = fnv1a_64
        cache = _HASH_CACHE
        cache_get = cache.get
        cache_max = _HASH_CACHE_MAX
        if n_probes == 7:
            # The default geometry (bits_per_key=10 -> round(10*ln2)=7
            # probes) covers every build in the reproduction; unrolling
            # the probe loop drops the per-probe loop machinery, which
            # measurably speeds up every flush and compaction finish.
            # Bit-for-bit identical to the generic loop below.
            for key in keys:
                base = cache_get(key)
                if base is None:
                    base = hash_fn(key)
                    if len(cache) < cache_max:
                        cache[key] = base
                h2 = (base >> 32) | 1
                h = base & 0xFFFFFFFF
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
                h += h2
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
                h += h2
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
                h += h2
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
                h += h2
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
                h += h2
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
                h += h2
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
            return
        for key in keys:
            base = cache_get(key)
            if base is None:
                base = hash_fn(key)
                if len(cache) < cache_max:
                    cache[key] = base
            h2 = (base >> 32) | 1
            h = base & 0xFFFFFFFF
            for _ in range(n_probes):
                pos = h % n_bits
                bits[pos >> 3] |= 1 << (pos & 7)
                h += h2

    def may_contain(self, key: bytes) -> bool:
        """False means *definitely absent*; True means possibly present."""
        base = _base_hash(key)
        h2 = (base >> 32) | 1
        n_bits = self._n_bits
        bits = self._bits
        h = base & 0xFFFFFFFF
        if self._n_probes == 7:
            # Unrolled for the default geometry, mirroring add_many.
            pos = h % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h += h2
            pos = h % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h += h2
            pos = h % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h += h2
            pos = h % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h += h2
            pos = h % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h += h2
            pos = h % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h += h2
            pos = h % n_bits
            return bool(bits[pos >> 3] & (1 << (pos & 7)))
        for _ in range(self._n_probes):
            pos = h % n_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h += h2
        return True

    @property
    def size_bytes(self) -> int:
        return _HEADER.size + len(self._bits)

    def encode(self) -> bytes:
        return _HEADER.pack(self._n_bits, self._n_probes) + bytes(self._bits)

    @staticmethod
    def decode(buf: bytes) -> "BloomFilter":
        if len(buf) < _HEADER.size:
            raise CorruptionError("truncated bloom filter header")
        n_bits, n_probes = _HEADER.unpack_from(buf, 0)
        body = bytearray(buf[_HEADER.size :])
        try:
            return BloomFilter(n_bits, n_probes, bits=body)
        except ValueError as exc:
            raise CorruptionError(f"corrupt bloom filter: {exc}") from exc

    def false_positive_rate(self, n_keys: int) -> float:
        """Theoretical FP rate after inserting ``n_keys`` keys."""
        if n_keys == 0:
            return 0.0
        fill = 1.0 - math.exp(-self._n_probes * n_keys / self._n_bits)
        return fill**self._n_probes
