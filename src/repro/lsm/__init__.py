"""The leveled LSM engine: memtable, SSTables, caching, compaction, DB."""

from repro.lsm.block_cache import BlockCache, BlockType, CacheStats
from repro.lsm.bloom import BloomFilter
from repro.lsm.compaction import (
    CompactDownRouter,
    CompactionExecutor,
    CompactionPicker,
    CompactionStats,
    LargestFilePicker,
    MergeRouter,
    OldestFilePicker,
)
from repro.lsm.db import DBStats, LsmDB, ReadResult, ScanResult, WriteResult
from repro.lsm.manifest_log import EditOp, ManifestLog, VersionEdit, decode_manifest, replay_manifest
from repro.lsm.layout import StorageLayout, build_layout, homogeneous_layout, nnntq_layout
from repro.lsm.memtable import Memtable
from repro.lsm.options import DBOptions, options_for_db_size
from repro.lsm.record import MAX_SEQNO, Record, ValueKind
from repro.lsm.skiplist import SkipList
from repro.lsm.sstable import UNTRACKED_CLOCK_VALUE, SSTable, SSTableBuilder
from repro.lsm.version import LevelManifest
from repro.lsm.wal import WriteAheadLog

__all__ = [
    "BlockCache",
    "BlockType",
    "CacheStats",
    "BloomFilter",
    "CompactDownRouter",
    "CompactionExecutor",
    "CompactionPicker",
    "CompactionStats",
    "LargestFilePicker",
    "MergeRouter",
    "OldestFilePicker",
    "DBStats",
    "LsmDB",
    "ReadResult",
    "ScanResult",
    "WriteResult",
    "EditOp",
    "ManifestLog",
    "VersionEdit",
    "decode_manifest",
    "replay_manifest",
    "StorageLayout",
    "build_layout",
    "homogeneous_layout",
    "nnntq_layout",
    "Memtable",
    "DBOptions",
    "options_for_db_size",
    "MAX_SEQNO",
    "Record",
    "ValueKind",
    "SkipList",
    "UNTRACKED_CLOCK_VALUE",
    "SSTable",
    "SSTableBuilder",
    "LevelManifest",
    "WriteAheadLog",
]
