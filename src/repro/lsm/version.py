"""The level manifest: which SSTables live at which level.

L0 files may overlap each other and are ordered newest-first (a point
read must consult them in that order). L1 and deeper hold
pairwise-disjoint files kept sorted by smallest key, so a point read
touches at most one file per level. ``check_invariants`` verifies both
structural rules plus the LSM consistency guarantee the paper's pinned
compaction must preserve: for any user key, versions are ordered
newest-at-the-top across levels.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.errors import CompactionError
from repro.lsm.sstable import SSTable


class LevelManifest:
    """Mutable mapping of levels to SSTable lists."""

    def __init__(self, num_levels: int) -> None:
        if num_levels < 2:
            raise ValueError(f"need at least two levels: {num_levels}")
        self._levels: list[list[SSTable]] = [[] for _ in range(num_levels)]
        #: Optional observer with record_add/record_remove(level, file_id),
        #: used to persist version edits to the MANIFEST log.
        self.observer = None

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def files(self, level: int) -> list[SSTable]:
        """The file list of a level (L0 newest-first; L1+ key-sorted)."""
        return self._levels[level]

    def all_files(self) -> Iterator[tuple[int, SSTable]]:
        for level, files in enumerate(self._levels):
            for table in files:
                yield level, table

    def file_count(self, level: int | None = None) -> int:
        if level is not None:
            return len(self._levels[level])
        return sum(len(files) for files in self._levels)

    def level_bytes(self, level: int) -> int:
        return sum(table.size_bytes for table in self._levels[level])

    def total_bytes(self) -> int:
        return sum(self.level_bytes(level) for level in range(self.num_levels))

    def level_of(self, table: SSTable) -> int | None:
        for level, files in enumerate(self._levels):
            if table in files:
                return level
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_file(self, level: int, table: SSTable) -> None:
        files = self._levels[level]
        if level == 0:
            files.insert(0, table)  # newest first
            if self.observer is not None:
                self.observer.record_add(level, table.file_id)
            return
        keys = [existing.smallest_key for existing in files]
        pos = bisect.bisect_left(keys, table.smallest_key)
        # Reject overlap with sorted neighbours: the level invariant.
        if pos > 0 and files[pos - 1].largest_key >= table.smallest_key:
            raise CompactionError(
                f"L{level}: new file [{table.smallest_key!r}..{table.largest_key!r}] "
                f"overlaps [{files[pos - 1].smallest_key!r}..{files[pos - 1].largest_key!r}]"
            )
        if pos < len(files) and files[pos].smallest_key <= table.largest_key:
            raise CompactionError(
                f"L{level}: new file [{table.smallest_key!r}..{table.largest_key!r}] "
                f"overlaps [{files[pos].smallest_key!r}..{files[pos].largest_key!r}]"
            )
        files.insert(pos, table)
        if self.observer is not None:
            self.observer.record_add(level, table.file_id)

    def remove_file(self, level: int, table: SSTable) -> None:
        try:
            self._levels[level].remove(table)
        except ValueError as exc:
            raise CompactionError(
                f"file {table.file_id} not present at L{level}"
            ) from exc
        if self.observer is not None:
            self.observer.record_remove(level, table.file_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates_for_key(self, level: int, user_key: bytes) -> list[SSTable]:
        """Files at ``level`` that may contain ``user_key``, probe order."""
        files = self._levels[level]
        if level == 0:
            return [table for table in files if table.contains_key_range(user_key)]
        keys = [table.largest_key for table in files]
        pos = bisect.bisect_left(keys, user_key)
        if pos < len(files) and files[pos].contains_key_range(user_key):
            return [files[pos]]
        return []

    def overlapping_files(self, level: int, lo: bytes, hi: bytes) -> list[SSTable]:
        """All files at ``level`` intersecting [lo, hi]."""
        return [table for table in self._levels[level] if table.overlaps(lo, hi)]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`CompactionError` on any structural violation."""
        for level in range(1, self.num_levels):
            files = self._levels[level]
            for table in files:
                if table.smallest_key > table.largest_key:
                    raise CompactionError(
                        f"L{level} file {table.file_id} has inverted key range"
                    )
            for left, right in zip(files, files[1:]):
                if left.smallest_key > right.smallest_key:
                    raise CompactionError(f"L{level} files out of order")
                if left.largest_key >= right.smallest_key:
                    raise CompactionError(
                        f"L{level} files {left.file_id} and {right.file_id} overlap"
                    )
